"""Serve discovery queries over HTTP: build a tiny index, start the service,
query it like a client.

This walks the full online path of the pipeline (see the subsystem tour in
README.md):

1. sketch a handful of candidate tables into a `SketchIndex` and persist it
   to a directory (the offline half),
2. start a `DiscoveryService` over that directory — the index is loaded
   lazily with a memory-mapped sketch store — behind the stdlib HTTP front
   end (`repro serve` does the same from the command line),
3. POST the same augmentation query twice and watch the second answer come
   from the result cache, byte-identical to the first,
4. read the `/metrics` endpoint the way a scraper would.

Run with:  python examples/serving_quickstart.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

import numpy as np

from repro import EngineConfig, SketchIndex, Table
from repro.discovery import save_index
from repro.serving import DiscoveryService, ServiceConfig, serve


def build_index(directory: Path) -> None:
    """Offline half: sketch five candidate tables and persist the index."""
    rng = np.random.default_rng(11)
    keys = [f"zip{i:04d}" for i in range(400)]
    signal = rng.normal(size=400)
    index = SketchIndex(EngineConfig(method="TUPSK", capacity=256, seed=0))
    for position in range(5):
        noise = 0.2 + 0.5 * position
        table = Table.from_dict(
            {
                "zip": keys,
                "reading": (signal + noise * rng.normal(size=400)).tolist(),
                "unrelated": rng.normal(size=400).tolist(),
            },
            name=f"sensor_feed_{position}",
        )
        index.add_table(table, ["zip"])
    save_index(index, directory)
    print(f"Indexed {len(index)} candidates into {directory}")


def main() -> None:
    rng = np.random.default_rng(11)
    keys = [f"zip{i:04d}" for i in range(400)]
    signal = rng.normal(size=400)
    base_columns = {
        "zip": keys,
        "demand": (signal + 0.3 * rng.normal(size=400)).tolist(),
    }

    with tempfile.TemporaryDirectory() as tmp:
        index_dir = Path(tmp) / "sensors.index"
        build_index(index_dir)

        service = DiscoveryService(index_dir, ServiceConfig(workers=4))
        server = serve(service, port=0)  # ephemeral port
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        print(f"Serving on {server.url} (POST /query, GET /healthz, GET /metrics)")

        body = json.dumps(
            {
                "table": {"name": "city_demand", "columns": base_columns},
                "key_column": "zip",
                "target_column": "demand",
                "top_k": 3,
                "min_join_size": 32,
            }
        ).encode("utf-8")

        for attempt in ("cold", "cached"):
            request = urllib.request.Request(
                server.url + "/query",
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                answer = json.load(response)
            print(
                f"\n[{attempt}] cache_hit={answer['cache_hit']} "
                f"elapsed={answer['elapsed_seconds'] * 1000:.1f}ms"
            )
            print("Top candidates by sketch-estimated MI:")
            for result in answer["results"]:
                print(
                    f"  {result['table_name']}.{result['value_column']} "
                    f"MI~{result['mi_estimate']:.3f} "
                    f"(join={result['sketch_join_size']}, "
                    f"containment={result['containment']:.2f})"
                )

        with urllib.request.urlopen(server.url + "/metrics", timeout=30) as response:
            metrics = json.load(response)
        counters = metrics["service"]["counters"]
        print(
            f"\nService metrics: {counters.get('queries', 0)} queries, "
            f"{counters.get('cache_hits', 0)} cache hits, "
            f"{counters.get('computed', 0)} computed"
        )

        server.shutdown()
        server.server_close()
        service.close()


if __name__ == "__main__":
    main()
