"""MI-based dataset discovery over a (simulated) open-data repository.

This example mirrors the paper's Section V-C setting: a repository of many
two-column tables harvested from an open-data portal, a base table with a
target attribute, and the question *"which of these thousands of candidate
tables is worth joining?"*.

The script:

1. generates a simulated NYC-style repository,
2. indexes every candidate table with TUPSK sketches + KMV key sketches,
3. runs an augmentation query for a chosen base table,
4. prints the top candidates per estimator (the paper recommends keeping
   per-estimator rankings separate), and
5. validates the top pick by materializing its join.

This is the *in-process* query path; the top-level README.md tours every
subsystem, and examples/serving_quickstart.py serves the same queries over
HTTP (with planning, caching and request coalescing) via `repro.serving`.

Run with:  python examples/dataset_discovery.py
"""

from __future__ import annotations

from repro import EngineConfig, SketchIndex, estimate_mi
from repro.discovery import top_k_per_estimator
from repro.discovery.query import AugmentationQuery
from repro.opendata import generate_repository
from repro.relational.featurize import augment


def main() -> None:
    repository = generate_repository("nyc", random_state=7, num_tables=60)
    print(f"Simulated repository '{repository.name}' with {len(repository)} tables "
          f"over domains: {', '.join(repository.domains)}")

    # Pick a numeric table as the "user's" base table; everything else is a
    # candidate augmentation.
    base_entry = next(
        entry for entry in repository.tables
        if entry.value_kind == "numeric" and entry.dependence > 0.7
    )
    base_table = base_entry.table.rename_columns({"value": "target"})
    print(f"\nBase table: {base_entry.name} (keyed on {base_entry.domain_name})")

    index = SketchIndex(EngineConfig(method="TUPSK", capacity=1024, seed=0))
    for entry in repository.tables:
        if entry.name == base_entry.name:
            continue
        index.add_candidate(
            entry.table, entry.key_column, entry.value_column,
            metadata={"domain": entry.domain_name, "planted_dependence": entry.dependence},
        )
    print(f"Indexed {len(index)} candidate augmentations.")

    query = AugmentationQuery(
        table=base_table,
        key_column="key",
        target_column="target",
        top_k=0,                # keep everything; we will group per estimator
        min_containment=0.05,
        min_join_size=100,      # the paper's filter for meaningless estimates
    )
    results = index.query(query, max_workers=4)
    print(f"\n{len(results)} candidates survive the joinability and join-size filters.")

    print("\nTop-3 candidates per estimator (sketch-estimated MI):")
    for estimator, group in sorted(top_k_per_estimator(results, k=3).items()):
        print(f"  [{estimator}]")
        for result in group:
            dependence = result.metadata.get("planted_dependence", float("nan"))
            print(f"    {result.describe()}  planted_dependence={dependence:.2f}")

    if results:
        best = results[0]
        candidate_entry = next(
            entry for entry in repository.tables if entry.name == best.table_name
        )
        feature_name = f"{best.aggregate}_{best.value_column}"
        augmented = augment(
            base_table,
            candidate_entry.table,
            base_key="key",
            candidate_key=best.key_column,
            candidate_value=best.value_column,
            agg=best.aggregate,
            feature_name=feature_name,
        ).drop_nulls([feature_name, "target"])
        full_mi = estimate_mi(
            augmented.column(feature_name).values, augmented.column("target").values
        )
        print(
            f"\nValidating the overall top candidate ({best.table_name}): "
            f"sketch MI {best.mi_estimate:.3f} vs full-join MI {full_mi:.3f} "
            f"on {augmented.num_rows} joined rows."
        )


if __name__ == "__main__":
    main()
