"""Relational data augmentation for taxi-demand prediction (paper Example 1).

A data scientist wants to explain the variability of daily taxi demand.  Two
external tables are available: hourly weather readings (joinable on the date)
and demographic statistics per ZIP code (joinable on the ZIP code).  A third
"distractor" table (lottery numbers by date) is joinable but carries no
information.

The script shows the full augmentation workflow:

1. featurize the candidate tables (``AVG(temp)`` per date, ``population`` per
   ZIP code, ...),
2. rank candidate features by *sketch-estimated* MI with the target without
   materializing any join,
3. materialize only the winning augmentations and verify the ranking against
   full-join MI estimates.

Run with:  python examples/taxi_demand_augmentation.py
"""

from __future__ import annotations

import numpy as np

from repro import EngineConfig, SketchEngine, SketchIndex, Table, augment, estimate_mi


def build_world(num_days: int = 360, num_zips: int = 40, seed: int = 3):
    """Simulate the tables of the paper's Figure 1."""
    rng = np.random.default_rng(seed)
    dates = [f"2017-{1 + d // 30:02d}-{1 + d % 30:02d}" for d in range(num_days)]
    zips = [f"{10001 + z}" for z in range(num_zips)]

    daily_temp = {date: float(rng.normal(14.0, 9.0)) for date in dates}
    daily_rain = {date: max(0.0, float(rng.gamma(1.2, 0.4) - 0.3)) for date in dates}
    population = {zip_code: float(rng.uniform(8_000, 90_000)) for zip_code in zips}

    # Demand per (date, zip): depends on rainfall, temperature and (non-
    # monotonically) on population -- big and tiny neighbourhoods both see
    # fewer pick-ups, as the paper's intro argues.
    rows = []
    for date in dates:
        for zip_code in zips:
            pop_factor = np.exp(-((population[zip_code] - 50_000) / 30_000) ** 2)
            trips = (
                40.0
                + 140.0 * pop_factor
                + 90.0 * daily_rain[date]
                - 1.5 * daily_temp[date]
                + float(rng.normal(0, 10))
            )
            rows.append((date, zip_code, max(0.0, trips)))

    taxi = Table.from_dict(
        {
            "date": [row[0] for row in rows],
            "zipcode": [row[1] for row in rows],
            "num_trips": [row[2] for row in rows],
        },
        name="taxi_trips",
    )

    weather = Table.from_dict(
        {
            "date": [date for date in dates for _ in range(4)],
            "temp": [daily_temp[date] + float(rng.normal(0, 1)) for date in dates for _ in range(4)],
            "rainfall": [
                max(0.0, daily_rain[date] + float(rng.normal(0, 0.05)))
                for date in dates
                for _ in range(4)
            ],
        },
        name="hourly_weather",
    )

    demographics = Table.from_dict(
        {
            "zipcode": zips,
            "population": [population[zip_code] for zip_code in zips],
            "median_income": [float(rng.uniform(30_000, 150_000)) for _ in zips],
        },
        name="demographics",
    )

    lottery = Table.from_dict(
        {
            "date": dates,
            "winning_number": [float(rng.integers(0, 10_000)) for _ in dates],
        },
        name="daily_lottery",
    )
    return taxi, weather, demographics, lottery


def main() -> None:
    taxi, weather, demographics, lottery = build_world()
    print("Base table:", taxi)
    print()

    # ---------------------------------------------------------------- #
    # Offline: index every candidate (table, key, value) combination.
    # One engine session owns the sketching configuration; the index is a
    # discovery shell around it.
    # ---------------------------------------------------------------- #
    engine = SketchEngine(EngineConfig(method="TUPSK", capacity=512, seed=0))
    index = SketchIndex(engine)
    index.add_table(weather, key_columns=["date"])
    index.add_table(demographics, key_columns=["zipcode"])
    index.add_table(lottery, key_columns=["date"])
    print(f"Indexed {len(index)} candidate augmentations "
          f"from {len({c.profile.table_name for c in index.candidates})} tables.")

    # ---------------------------------------------------------------- #
    # Online: rank candidates for each join key of the base table.
    # ---------------------------------------------------------------- #
    print("\nTop candidates by sketch-estimated MI with num_trips:")
    results = []
    for key_column in ("date", "zipcode"):
        results.extend(
            index.query_columns(
                taxi, key_column, "num_trips", top_k=5, min_join_size=32,
                max_workers=4,  # per-candidate estimates run on a thread pool
            )
        )
    results.sort(key=lambda result: result.mi_estimate, reverse=True)
    for result in results:
        print("  ", result.describe())

    # ---------------------------------------------------------------- #
    # Verification: materialize the joins and compare with full-join MI.
    # ---------------------------------------------------------------- #
    print("\nFull-join verification (only for the discovered candidates):")
    for result in results:
        candidate_table = {
            "hourly_weather": weather,
            "demographics": demographics,
            "daily_lottery": lottery,
        }[result.table_name]
        feature_name = f"{result.aggregate}_{result.value_column}"
        augmented = augment(
            taxi,
            candidate_table,
            base_key=result.key_column,
            candidate_key=result.key_column,
            candidate_value=result.value_column,
            agg=result.aggregate,
            feature_name=feature_name,
        ).drop_nulls([feature_name, "num_trips"])
        full_mi = estimate_mi(
            augmented.column(feature_name).values,
            augmented.column("num_trips").values,
        )
        print(
            f"  {result.table_name}.{result.value_column:<15} sketch={result.mi_estimate:6.3f}  "
            f"full-join={full_mi:6.3f}  ({result.estimator})"
        )

    print(
        "\nWeather and demographics features rank highest; the joinable-but-"
        "irrelevant lottery table ranks last, which is exactly the pruning the "
        "paper's MI-based discovery is designed to provide."
    )


if __name__ == "__main__":
    main()
