"""Comparing MI estimators on data with known ground truth.

Section V of the paper stresses that different estimators have different
biases and that comparing their raw estimates across data types is not
meaningful.  This example makes that concrete: it draws Trinomial and CDUnif
datasets with analytically known MI and reports, for several sample sizes,
the estimates of every applicable estimator (MLE, Miller-Madow-corrected MLE,
Laplace-smoothed MLE, Mixed-KSG, DC-KSG).

Run with:  python examples/estimator_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DCKSGEstimator,
    MixedKSGEstimator,
    MLEEstimator,
    SmoothedMLEEstimator,
)
from repro.evaluation.reporting import format_table
from repro.synthetic import generate_cdunif_dataset, generate_trinomial_dataset


def compare_on_trinomial(sample_sizes, rng) -> list[dict]:
    estimators = {
        "MLE": MLEEstimator(),
        "MLE+MM": MLEEstimator(miller_madow=True),
        "Smoothed": SmoothedMLEEstimator(alpha=0.5),
        "Mixed-KSG": MixedKSGEstimator(),
        "DC-KSG": DCKSGEstimator(),
    }
    rows = []
    for size in sample_sizes:
        dataset = generate_trinomial_dataset(64, size, target_mi=1.5, random_state=rng)
        row = {"distribution": "Trinomial(m=64)", "samples": size, "true_mi": dataset.true_mi}
        for label, estimator in estimators.items():
            row[label] = estimator.estimate(dataset.x.tolist(), dataset.y.tolist())
        rows.append(row)
    return rows


def compare_on_cdunif(sample_sizes, rng) -> list[dict]:
    estimators = {
        "Mixed-KSG": MixedKSGEstimator(),
        "DC-KSG": DCKSGEstimator(),
    }
    rows = []
    for size in sample_sizes:
        dataset = generate_cdunif_dataset(50, size, random_state=rng)
        row = {"distribution": "CDUnif(m=50)", "samples": size, "true_mi": dataset.true_mi}
        for label, estimator in estimators.items():
            row[label] = estimator.estimate(dataset.x, dataset.y)
        rows.append(row)
    return rows


def main() -> None:
    rng = np.random.default_rng(0)
    sample_sizes = (128, 512, 2048, 8192)

    trinomial_rows = compare_on_trinomial(sample_sizes, rng)
    cdunif_rows = compare_on_cdunif(sample_sizes, rng)

    print(format_table(trinomial_rows, title="Discrete data (all estimators applicable):"))
    print()
    print(format_table(cdunif_rows, title="Discrete/continuous data (KSG family only):"))
    print(
        "\nObservations (mirroring the paper): the plug-in MLE over-estimates at "
        "small sample sizes and converges from above; the Miller-Madow and "
        "Laplace-smoothed variants reduce that bias; the KSG-family estimators "
        "converge from below and are the only option once a variable is "
        "continuous.  Raw estimates from different estimators should therefore "
        "not be compared against each other when ranking candidate features."
    )


if __name__ == "__main__":
    main()
