"""Mini synthetic benchmark: sketching methods head to head.

A reduced-scale version of the paper's Table I / Figure 2: for Trinomial and
CDUnif datasets with known MI, every sketching method (TUPSK, LV2SK, PRISK,
INDSK, CSK) estimates the MI from a 256-tuple sketch and the script reports
the average sketch-join size and the error against the analytic ground truth,
split by the join-key generation process (KeyInd vs KeyDep).

Run with:  python examples/synthetic_benchmark.py
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.metrics import mean_squared_error
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import sketch_estimate_for_dataset, trinomial_estimator_specs
from repro.synthetic import KeyGeneration, generate_trinomial_dataset
from repro.synthetic.benchmark import redecompose

METHODS = ("TUPSK", "LV2SK", "PRISK", "INDSK", "CSK")


def main() -> None:
    rng = np.random.default_rng(1)
    mle_spec = trinomial_estimator_specs()[0]
    records = []
    for target_mi in (0.5, 1.0, 1.5, 2.0, 2.5, 3.0):
        keyind_dataset = generate_trinomial_dataset(
            64, 10_000, target_mi=target_mi, random_state=rng
        )
        datasets = {
            "KeyInd": keyind_dataset,
            "KeyDep": redecompose(keyind_dataset, KeyGeneration.KEY_DEP),
        }
        for key_generation, dataset in datasets.items():
            for method in METHODS:
                record = sketch_estimate_for_dataset(
                    dataset, method, capacity=256, estimator_spec=mle_spec, random_state=rng
                )
                records.append(record)

    rows = []
    for key_generation in ("KeyInd", "KeyDep"):
        for method in METHODS:
            subset = [
                record
                for record in records
                if record.method == method and record.key_generation == key_generation
            ]
            rows.append(
                {
                    "key_generation": key_generation,
                    "method": method,
                    "avg_join_size": float(np.mean([r.join_size for r in subset])),
                    "mse_vs_true_mi": mean_squared_error(
                        [r.estimate for r in subset], [r.true_mi for r in subset]
                    ),
                }
            )

    print(format_table(rows, title="Trinomial(m=64), n=256, MLE estimator:"))
    print(
        "\nTUPSK keeps the full join size and the lowest error under both key "
        "distributions; the two-level baselines degrade when the join key is "
        "correlated with the feature (KeyDep); independent sampling (INDSK) "
        "recovers too few join samples when keys are unique (KeyInd)."
    )


if __name__ == "__main__":
    main()
