"""Quickstart: estimate mutual information across two tables without joining them.

The scenario is the paper's running example in miniature: a base table of
daily taxi demand and an external table of hourly weather readings.  One
:class:`~repro.SketchEngine` session, configured once, builds one sketch per
table (independently -- in a real deployment the candidate sketch would have
been built offline by a data-discovery system) and estimates the MI between
the derived ``avg(temp)`` feature and the ``num_trips`` target from the
sketch join.  The full-join estimate is computed as a reference.

Migration note: pre-engine code called the free functions directly --
``build_sketch(t, k, v, side=SketchSide.BASE, capacity=n, seed=s)`` is now
``engine.sketch_base(t, k, v)``, the candidate side is
``engine.sketch_candidate(t, k, v, agg="avg")``, and
``estimate_mi_from_sketches(s1, s2)`` is ``engine.estimate(s1, s2)``; the
old functions keep working as wrappers over a default engine.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    EngineConfig,
    MixedKSGEstimator,
    SketchEngine,
    Table,
    augment,
)


def make_tables(num_days: int = 400, seed: int = 7) -> tuple[Table, Table]:
    """Generate a taxi-demand base table and an hourly-weather candidate table."""
    rng = np.random.default_rng(seed)
    dates = [f"2017-{1 + d // 28:02d}-{1 + d % 28:02d}" for d in range(num_days)]
    daily_temp = {date: float(rng.normal(15.0, 8.0)) for date in dates}

    taxi = Table.from_dict(
        {
            "date": dates,
            "num_trips": [
                max(0.0, 250.0 - 4.0 * daily_temp[date] + float(rng.normal(0, 10)))
                for date in dates
            ],
        },
        name="taxi_daily_trips",
    )

    weather_dates, weather_temps = [], []
    for date in dates:
        for _hour in range(6):  # six readings per day -> repeated join keys
            weather_dates.append(date)
            weather_temps.append(daily_temp[date] + float(rng.normal(0, 1.5)))
    weather = Table.from_dict(
        {"date": weather_dates, "temp": weather_temps},
        name="hourly_weather",
    )
    return taxi, weather


def main() -> None:
    taxi, weather = make_tables()
    print(f"base table:      {taxi}")
    print(f"candidate table: {weather}")

    # --- One engine session: both sides share its method/capacity/seed -----
    engine = SketchEngine(EngineConfig(method="TUPSK", capacity=256, seed=0))

    # --- Sketch both sides (normally done independently / offline) ---------
    base_sketch = engine.sketch_base(taxi, "date", "num_trips")
    candidate_sketch = engine.sketch_candidate(weather, "date", "temp", agg="avg")
    print(f"\nbase sketch:      {len(base_sketch)} tuples")
    print(f"candidate sketch: {len(candidate_sketch)} tuples (AVG-aggregated per date)")

    # --- Estimate MI from the sketch join, never materializing the join ----
    estimate = engine.estimate(base_sketch, candidate_sketch)
    print(
        f"\nsketch-based estimate: I(avg_temp; num_trips) ~ {estimate.mi:.3f} nats "
        f"({estimate.estimator}, {estimate.join_size} join samples)"
    )

    # --- Reference: the same estimate on the fully materialized join -------
    augmented = augment(
        taxi, weather,
        base_key="date", candidate_key="date", candidate_value="temp", agg="avg",
    ).drop_nulls(["avg_temp", "num_trips"])
    full_mi = MixedKSGEstimator().estimate(
        augmented.column("avg_temp").values, augmented.column("num_trips").values
    )
    print(f"full-join estimate:    I(avg_temp; num_trips) ~ {full_mi:.3f} nats "
          f"({augmented.num_rows} join rows)")
    print(
        "\nThe sketch estimate approximates the full-join estimate using "
        f"{estimate.join_size}/{augmented.num_rows} rows and no join."
    )


if __name__ == "__main__":
    main()
