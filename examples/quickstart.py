"""Quickstart: estimate mutual information across two tables without joining them.

The scenario is the paper's running example in miniature: a base table of
daily taxi demand and an external table of hourly weather readings.  We build
one sketch per table (independently -- in a real deployment the candidate
sketch would have been built offline by a data-discovery system), join the
sketches, and estimate the MI between the derived ``avg(temp)`` feature and
the ``num_trips`` target.  The full-join estimate is computed as a reference.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    MixedKSGEstimator,
    SketchSide,
    Table,
    augment,
    build_sketch,
    estimate_mi_from_sketches,
)


def make_tables(num_days: int = 400, seed: int = 7) -> tuple[Table, Table]:
    """Generate a taxi-demand base table and an hourly-weather candidate table."""
    rng = np.random.default_rng(seed)
    dates = [f"2017-{1 + d // 28:02d}-{1 + d % 28:02d}" for d in range(num_days)]
    daily_temp = {date: float(rng.normal(15.0, 8.0)) for date in dates}

    taxi = Table.from_dict(
        {
            "date": dates,
            "num_trips": [
                max(0.0, 250.0 - 4.0 * daily_temp[date] + float(rng.normal(0, 10)))
                for date in dates
            ],
        },
        name="taxi_daily_trips",
    )

    weather_dates, weather_temps = [], []
    for date in dates:
        for _hour in range(6):  # six readings per day -> repeated join keys
            weather_dates.append(date)
            weather_temps.append(daily_temp[date] + float(rng.normal(0, 1.5)))
    weather = Table.from_dict(
        {"date": weather_dates, "temp": weather_temps},
        name="hourly_weather",
    )
    return taxi, weather


def main() -> None:
    taxi, weather = make_tables()
    print(f"base table:      {taxi}")
    print(f"candidate table: {weather}")

    # --- Sketch both sides (normally done independently / offline) ---------
    sketch_size = 256
    base_sketch = build_sketch(
        taxi, "date", "num_trips", method="TUPSK", side=SketchSide.BASE,
        capacity=sketch_size, seed=0,
    )
    candidate_sketch = build_sketch(
        weather, "date", "temp", method="TUPSK", side=SketchSide.CANDIDATE,
        capacity=sketch_size, seed=0, agg="avg",
    )
    print(f"\nbase sketch:      {len(base_sketch)} tuples")
    print(f"candidate sketch: {len(candidate_sketch)} tuples (AVG-aggregated per date)")

    # --- Estimate MI from the sketch join, never materializing the join ----
    estimate = estimate_mi_from_sketches(base_sketch, candidate_sketch)
    print(
        f"\nsketch-based estimate: I(avg_temp; num_trips) ~ {estimate.mi:.3f} nats "
        f"({estimate.estimator}, {estimate.join_size} join samples)"
    )

    # --- Reference: the same estimate on the fully materialized join -------
    augmented = augment(
        taxi, weather,
        base_key="date", candidate_key="date", candidate_value="temp", agg="avg",
    ).drop_nulls(["avg_temp", "num_trips"])
    full_mi = MixedKSGEstimator().estimate(
        augmented.column("avg_temp").values, augmented.column("num_trips").values
    )
    print(f"full-join estimate:    I(avg_temp; num_trips) ~ {full_mi:.3f} nats "
          f"({augmented.num_rows} join rows)")
    print(
        "\nThe sketch estimate approximates the full-join estimate using "
        f"{estimate.join_size}/{augmented.num_rows} rows and no join."
    )


if __name__ == "__main__":
    main()
