"""Hashing substrate used by the coordinated-sampling sketches.

The paper (Section IV, "Approach Overview") assumes two hash functions:

* ``h`` — a collision-resistant hash that maps arbitrary objects (join-key
  values, or ``(key, occurrence)`` tuples) to 32-bit integers; the original
  implementation uses MurmurHash3.
* ``h_u`` — a hash mapping integers uniformly to the unit interval ``[0, 1)``;
  the original implementation uses Fibonacci hashing.

Both are implemented here from scratch so the sketching layer has no external
dependencies and so that two sketches built independently (possibly on
different machines) agree on every hash value given the same seed.
"""

from repro.hashing.murmur3 import murmur3_32, murmur3_32_many
from repro.hashing.fibonacci import fibonacci_hash_unit, fibonacci_hash_unit_many
from repro.hashing.unit import (
    KeyHasher,
    canonical_bytes,
    canonical_bytes_many,
    hash_key,
    hash_key_unit,
)

__all__ = [
    "murmur3_32",
    "murmur3_32_many",
    "fibonacci_hash_unit",
    "fibonacci_hash_unit_many",
    "KeyHasher",
    "canonical_bytes",
    "canonical_bytes_many",
    "hash_key",
    "hash_key_unit",
]
