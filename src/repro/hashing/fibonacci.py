"""Fibonacci hashing of integers to the unit interval.

Fibonacci hashing (Knuth, TAOCP vol. 3) multiplies the input by
``2**w / phi`` (the golden ratio) modulo ``2**w``; the resulting values are
very evenly spread over ``[0, 2**w)`` even for structured inputs, which is
exactly what the sketches need when they rank join keys by hash value.
The paper uses this as the uniform hash ``h_u``.
"""

from __future__ import annotations

__all__ = ["fibonacci_hash_unit", "fibonacci_hash_64"]

#: 2**64 / golden ratio, rounded to the nearest odd integer.
_FIB_MULTIPLIER_64 = 0x9E3779B97F4A7C15
_MASK64 = 0xFFFFFFFFFFFFFFFF
_TWO_POW_64 = float(2**64)


def fibonacci_hash_64(value: int) -> int:
    """Map an integer to a 64-bit integer via Fibonacci (multiplicative) hashing."""
    return (int(value) * _FIB_MULTIPLIER_64) & _MASK64


def fibonacci_hash_unit(value: int) -> float:
    """Map an integer uniformly to the unit interval ``[0, 1)``.

    This is the ``h_u`` function of the paper: sketches select the keys (or
    key-occurrence tuples) whose ``h_u(h(k))`` values are smallest.
    """
    return fibonacci_hash_64(value) / _TWO_POW_64
