"""Fibonacci hashing of integers to the unit interval.

Fibonacci hashing (Knuth, TAOCP vol. 3) multiplies the input by
``2**w / phi`` (the golden ratio) modulo ``2**w``; the resulting values are
very evenly spread over ``[0, 2**w)`` even for structured inputs, which is
exactly what the sketches need when they rank join keys by hash value.
The paper uses this as the uniform hash ``h_u``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fibonacci_hash_unit", "fibonacci_hash_64", "fibonacci_hash_unit_many"]

#: 2**64 / golden ratio, rounded to the nearest odd integer.
_FIB_MULTIPLIER_64 = 0x9E3779B97F4A7C15
_MASK64 = 0xFFFFFFFFFFFFFFFF
_TWO_POW_64 = float(2**64)


def fibonacci_hash_64(value: int) -> int:
    """Map an integer to a 64-bit integer via Fibonacci (multiplicative) hashing."""
    return (int(value) * _FIB_MULTIPLIER_64) & _MASK64


def fibonacci_hash_unit(value: int) -> float:
    """Map an integer uniformly to the unit interval ``[0, 1)``.

    This is the ``h_u`` function of the paper: sketches select the keys (or
    key-occurrence tuples) whose ``h_u(h(k))`` values are smallest.
    """
    return fibonacci_hash_64(value) / _TWO_POW_64


def fibonacci_hash_unit_many(values: "np.ndarray | list[int]") -> np.ndarray:
    """Vectorized :func:`fibonacci_hash_unit` over an array of integers.

    ``result[i]`` is bit-identical to ``fibonacci_hash_unit(values[i])``:
    the multiplication wraps modulo ``2**64`` exactly as the scalar path's
    mask does, and dividing by ``2**64`` (an exact power of two) rounds the
    64-bit integer to ``float64`` under the same IEEE-754 semantics as
    Python's ``int / float``.
    """
    try:
        ids = np.asarray(values, dtype=np.uint64)
    except (OverflowError, TypeError):
        # Negative or > 64-bit integers: apply the scalar path's mask.
        ids = np.array([int(value) & _MASK64 for value in values], dtype=np.uint64)
    return (ids * np.uint64(_FIB_MULTIPLIER_64)) / _TWO_POW_64
