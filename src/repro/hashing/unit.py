"""Canonical hashing of join-key values and key-occurrence tuples.

The sketching layer needs two operations:

* ``hash_key(value)`` — a deterministic 32-bit integer identifier for a
  join-key value (shared between the two tables being joined), computed with
  MurmurHash3 on a canonical byte encoding of the value;
* ``hash_key_unit(value)`` or ``hash_key_unit((value, occurrence))`` — the
  position of a key (or of the *j*-th occurrence of a key, for TUPSK) on the
  unit interval, computed by composing Fibonacci hashing with the integer
  identifier.

:class:`KeyHasher` bundles both with a seed so different experiments can use
independent hash functions while two sketches meant to be joined share one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.hashing.fibonacci import fibonacci_hash_unit
from repro.hashing.murmur3 import murmur3_32

__all__ = ["KeyHasher", "hash_key", "hash_key_unit", "canonical_bytes"]


def canonical_bytes(value: Any) -> bytes:
    """Encode a join-key value (or tuple of values) as canonical bytes.

    The encoding is type-tagged so that, e.g., the integer ``1`` and the
    string ``"1"`` do not collide, and tuples (used for TUPSK's
    ``(key, occurrence)`` sampling frame) encode their parts recursively.
    """
    if value is None:
        return b"n:"
    if isinstance(value, bool):
        return b"b:1" if value else b"b:0"
    if isinstance(value, int):
        return b"i:" + str(value).encode("ascii")
    if isinstance(value, float):
        if value.is_integer():
            # Make 3.0 and 3 hash identically: real data frequently mixes the
            # two representations of the same key value.
            return b"i:" + str(int(value)).encode("ascii")
        return b"f:" + repr(value).encode("ascii")
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8")
    if isinstance(value, (tuple, list)):
        parts = b"|".join(canonical_bytes(part) for part in value)
        return b"t:" + parts
    return b"o:" + repr(value).encode("utf-8")


def hash_key(value: Any, seed: int = 0) -> int:
    """32-bit integer identifier of a join-key value (the paper's ``h``)."""
    return murmur3_32(canonical_bytes(value), seed=seed)


def hash_key_unit(value: Any, seed: int = 0) -> float:
    """Position of a join-key value on the unit interval (``h_u(h(value))``)."""
    return fibonacci_hash_unit(hash_key(value, seed=seed))


@dataclass(frozen=True)
class KeyHasher:
    """A seeded pair of hash functions shared by coordinated sketches.

    Two sketches can only be joined if they were built with the same seed;
    the sketch data model stores the seed so this is checked at join time.
    """

    seed: int = 0

    def key_id(self, value: Hashable) -> int:
        """Integer identifier ``h(value)`` stored inside sketches."""
        return hash_key(value, seed=self.seed)

    def unit(self, value: Hashable) -> float:
        """Uniform position ``h_u(h(value))`` used to rank keys."""
        return hash_key_unit(value, seed=self.seed)

    def tuple_unit(self, value: Hashable, occurrence: int) -> float:
        """Uniform position of the ``(value, occurrence)`` tuple (TUPSK frame)."""
        return hash_key_unit((value, occurrence), seed=self.seed)
