"""Canonical hashing of join-key values and key-occurrence tuples.

The sketching layer needs two operations:

* ``hash_key(value)`` — a deterministic 32-bit integer identifier for a
  join-key value (shared between the two tables being joined), computed with
  MurmurHash3 on a canonical byte encoding of the value;
* ``hash_key_unit(value)`` or ``hash_key_unit((value, occurrence))`` — the
  position of a key (or of the *j*-th occurrence of a key, for TUPSK) on the
  unit interval, computed by composing Fibonacci hashing with the integer
  identifier.

:class:`KeyHasher` bundles both with a seed so different experiments can use
independent hash functions while two sketches meant to be joined share one.

Every operation also has a batched variant (``canonical_bytes_many``,
``KeyHasher.key_id_many`` / ``unit_many`` / ``tuple_unit_many``) that hashes
a whole column in NumPy array passes.  The batched variants are
**bit-identical** to mapping the scalar functions over the column — the only
difference is speed — so sketches built through either path are
interchangeable.  Homogeneous ``int`` / ``str`` / ``float`` columns take the
vectorized encoding fast paths; anything else (mixed types, ``None``-bearing
columns, exotic objects) silently falls back to the scalar encoder per value
before the still-batched hashing passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Sequence

import numpy as np

from repro.hashing.fibonacci import fibonacci_hash_unit, fibonacci_hash_unit_many
from repro.hashing.murmur3 import _hash_bytes_many, murmur3_32

__all__ = [
    "KeyHasher",
    "hash_key",
    "hash_key_unit",
    "canonical_bytes",
    "canonical_bytes_many",
]


def _length_prefixed(part: bytes) -> bytes:
    """Unambiguous framing of one tuple part: 4-byte length, then payload."""
    return len(part).to_bytes(4, "little") + part


def canonical_bytes(value: Any) -> bytes:
    """Encode a join-key value (or tuple of values) as canonical bytes.

    The encoding is type-tagged so that, e.g., the integer ``1`` and the
    string ``"1"`` do not collide, and tuples (used for TUPSK's
    ``(key, occurrence)`` sampling frame) encode their parts recursively
    with a length prefix per part, so part boundaries are unambiguous:
    ``("a|b",)`` and ``("a", "b")`` encode differently.  (Encoding version
    2; see ``repro.sketches.serialization.HASH_ENCODING_VERSION`` — earlier
    releases joined tuple parts with a ``b"|"`` separator, which could
    collide, so sketches persisted under that scheme hash differently and
    must be rebuilt.)
    """
    if value is None:
        return b"n:"
    if isinstance(value, bool):
        return b"b:1" if value else b"b:0"
    if isinstance(value, int):
        return b"i:" + str(value).encode("ascii")
    if isinstance(value, float):
        if value.is_integer():
            # Make 3.0 and 3 hash identically: real data frequently mixes the
            # two representations of the same key value.
            return b"i:" + str(int(value)).encode("ascii")
        return b"f:" + repr(value).encode("ascii")
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8")
    if isinstance(value, (tuple, list)):
        return b"t:" + b"".join(
            _length_prefixed(canonical_bytes(part)) for part in value
        )
    return b"o:" + repr(value).encode("utf-8")


def canonical_bytes_many(values: Sequence[Any]) -> list[bytes]:
    """Canonical byte encodings of a whole column of values.

    ``result[i] == canonical_bytes(values[i])`` for every position.
    Homogeneous ``int`` / ``str`` / ``float`` columns take batched fast
    paths that skip the per-value type dispatch; everything else falls back
    to the scalar encoder element by element.
    """
    kinds = {type(value) for value in values}
    if kinds == {int}:
        # bytes %-formatting is the fastest exact decimal encoder available
        # (including for bigints), beating NumPy's string casts.
        return [b"i:%d" % value for value in values]
    if kinds == {str}:
        return [b"s:" + value.encode("utf-8") for value in values]
    if kinds == {float}:
        return [
            b"i:%d" % int(value)
            if value.is_integer()
            else b"f:" + repr(value).encode("ascii")
            for value in values
        ]
    return [canonical_bytes(value) for value in values]


def hash_key(value: Any, seed: int = 0) -> int:
    """32-bit integer identifier of a join-key value (the paper's ``h``)."""
    return murmur3_32(canonical_bytes(value), seed=seed)


def hash_key_unit(value: Any, seed: int = 0) -> float:
    """Position of a join-key value on the unit interval (``h_u(h(value))``)."""
    return fibonacci_hash_unit(hash_key(value, seed=seed))


@dataclass(frozen=True)
class KeyHasher:
    """A seeded pair of hash functions shared by coordinated sketches.

    Two sketches can only be joined if they were built with the same seed
    (and the same canonical-encoding version; see
    ``repro.sketches.serialization.HASH_ENCODING_VERSION``); the sketch data
    model stores the seed so this is checked at join time.
    """

    seed: int = 0

    def key_id(self, value: Hashable) -> int:
        """Integer identifier ``h(value)`` stored inside sketches."""
        return hash_key(value, seed=self.seed)

    def unit(self, value: Hashable) -> float:
        """Uniform position ``h_u(h(value))`` used to rank keys."""
        return hash_key_unit(value, seed=self.seed)

    def tuple_unit(self, value: Hashable, occurrence: int) -> float:
        """Uniform position of the ``(value, occurrence)`` tuple (TUPSK frame)."""
        return hash_key_unit((value, occurrence), seed=self.seed)

    # ------------------------------------------------------------------ #
    # Batched variants — bit-identical to mapping the scalar methods
    # ------------------------------------------------------------------ #
    def key_id_many(self, values: Sequence[Hashable]) -> np.ndarray:
        """``uint32`` array of ``key_id`` over a column, one array pass."""
        return _hash_bytes_many(canonical_bytes_many(values), self.seed)

    def unit_many(self, values: Sequence[Hashable]) -> np.ndarray:
        """``float64`` array of ``unit`` over a column, one array pass."""
        return fibonacci_hash_unit_many(self.key_id_many(values))

    def tuple_unit_many(
        self, values: Sequence[Hashable], occurrences: Sequence[int]
    ) -> np.ndarray:
        """``float64`` array of ``tuple_unit`` over aligned value/occurrence rows.

        Composes each row's canonical tuple encoding from the (batch-encoded)
        value part and a memoized occurrence part, then hashes all rows in
        one batched pass.
        """
        value_parts = canonical_bytes_many(values)
        # Memoize the two per-row building blocks: occurrence encodings
        # (typically a handful of small ints) and length prefixes (value
        # encodings of one column cluster around a few lengths).
        occurrence_parts: dict[int, bytes] = {}
        length_prefixes: dict[int, bytes] = {}
        encodings = []
        append = encodings.append
        for value_part, occurrence in zip(value_parts, occurrences):
            prefix = length_prefixes.get(len(value_part))
            if prefix is None:
                prefix = len(value_part).to_bytes(4, "little")
                length_prefixes[len(value_part)] = prefix
            occurrence_part = occurrence_parts.get(occurrence)
            if occurrence_part is None:
                occurrence_part = _length_prefixed(canonical_bytes(int(occurrence)))
                occurrence_parts[occurrence] = occurrence_part
            append(b"t:" + prefix + value_part + occurrence_part)
        return fibonacci_hash_unit_many(_hash_bytes_many(encodings, self.seed))
