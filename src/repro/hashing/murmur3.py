"""Pure-Python implementation of 32-bit MurmurHash3 (x86 variant).

MurmurHash3 is the collision-free-in-practice hash the paper uses to map
join-key values to integers before applying Fibonacci hashing.  This
implementation follows Austin Appleby's reference ``MurmurHash3_x86_32`` and
matches its output bit-for-bit for byte-string inputs, which keeps sketches
comparable with implementations in other languages.
"""

from __future__ import annotations

__all__ = ["murmur3_32"]

_C1 = 0xCC9E2D51
_C2 = 0x1B873593
_MASK32 = 0xFFFFFFFF


def _rotl32(value: int, shift: int) -> int:
    return ((value << shift) | (value >> (32 - shift))) & _MASK32


def _fmix32(value: int) -> int:
    value ^= value >> 16
    value = (value * 0x85EBCA6B) & _MASK32
    value ^= value >> 13
    value = (value * 0xC2B2AE35) & _MASK32
    value ^= value >> 16
    return value


def murmur3_32(data: "bytes | str | int", seed: int = 0) -> int:
    """Compute the 32-bit MurmurHash3 of ``data`` with the given ``seed``.

    ``str`` inputs are UTF-8 encoded; ``int`` inputs are encoded as their
    8-byte little-endian two's-complement representation so that positive and
    negative integers hash consistently.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    elif isinstance(data, int):
        data = (data & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
    elif not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"murmur3_32 expects bytes, str or int, got {type(data).__name__}")

    length = len(data)
    num_blocks = length // 4
    h1 = seed & _MASK32

    # Body: process 4-byte blocks.
    for block_index in range(num_blocks):
        offset = block_index * 4
        k1 = int.from_bytes(data[offset : offset + 4], "little")
        k1 = (k1 * _C1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * _C2) & _MASK32
        h1 ^= k1
        h1 = _rotl32(h1, 13)
        h1 = (h1 * 5 + 0xE6546B64) & _MASK32

    # Tail: up to 3 remaining bytes.
    tail = data[num_blocks * 4 :]
    k1 = 0
    if len(tail) >= 3:
        k1 ^= tail[2] << 16
    if len(tail) >= 2:
        k1 ^= tail[1] << 8
    if len(tail) >= 1:
        k1 ^= tail[0]
        k1 = (k1 * _C1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * _C2) & _MASK32
        h1 ^= k1

    # Finalization.
    h1 ^= length
    return _fmix32(h1)
