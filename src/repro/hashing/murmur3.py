"""Pure-Python implementation of 32-bit MurmurHash3 (x86 variant).

MurmurHash3 is the collision-free-in-practice hash the paper uses to map
join-key values to integers before applying Fibonacci hashing.  This
implementation follows Austin Appleby's reference ``MurmurHash3_x86_32`` and
matches its output bit-for-bit for byte-string inputs, which keeps sketches
comparable with implementations in other languages.

Two entry points share the algorithm:

* :func:`murmur3_32` — the scalar reference, pure Python;
* :func:`murmur3_32_many` — the batched fast path: inputs are bucketed by
  byte length, packed into a ``uint8`` matrix, and the 4-byte body rounds,
  tail and final avalanche run as NumPy ``uint32`` arithmetic (carried in
  ``uint64`` lanes with explicit masking, so overflow semantics are exact).
  Output is bit-identical to mapping :func:`murmur3_32` over the inputs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["murmur3_32", "murmur3_32_many"]

_C1 = 0xCC9E2D51
_C2 = 0x1B873593
_MASK32 = 0xFFFFFFFF


def _rotl32(value: int, shift: int) -> int:
    return ((value << shift) | (value >> (32 - shift))) & _MASK32


def _fmix32(value: int) -> int:
    value ^= value >> 16
    value = (value * 0x85EBCA6B) & _MASK32
    value ^= value >> 13
    value = (value * 0xC2B2AE35) & _MASK32
    value ^= value >> 16
    return value


def murmur3_32(data: "bytes | str | int", seed: int = 0) -> int:
    """Compute the 32-bit MurmurHash3 of ``data`` with the given ``seed``.

    ``str`` inputs are UTF-8 encoded; ``int`` inputs are encoded as their
    8-byte little-endian two's-complement representation so that positive and
    negative integers hash consistently.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    elif isinstance(data, int):
        data = (data & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
    elif not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"murmur3_32 expects bytes, str or int, got {type(data).__name__}")

    length = len(data)
    num_blocks = length // 4
    h1 = seed & _MASK32

    # Body: process 4-byte blocks.
    for block_index in range(num_blocks):
        offset = block_index * 4
        k1 = int.from_bytes(data[offset : offset + 4], "little")
        k1 = (k1 * _C1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * _C2) & _MASK32
        h1 ^= k1
        h1 = _rotl32(h1, 13)
        h1 = (h1 * 5 + 0xE6546B64) & _MASK32

    # Tail: up to 3 remaining bytes.
    tail = data[num_blocks * 4 :]
    k1 = 0
    if len(tail) >= 3:
        k1 ^= tail[2] << 16
    if len(tail) >= 2:
        k1 ^= tail[1] << 8
    if len(tail) >= 1:
        k1 ^= tail[0]
        k1 = (k1 * _C1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * _C2) & _MASK32
        h1 ^= k1

    # Finalization.
    h1 ^= length
    return _fmix32(h1)


def _coerce_input(data: "bytes | str | int") -> bytes:
    """Apply :func:`murmur3_32`'s input coercion without hashing."""
    if isinstance(data, str):
        return data.encode("utf-8")
    if isinstance(data, int):
        return (data & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
    if isinstance(data, (bytes, bytearray)):
        return bytes(data)
    raise TypeError(f"murmur3_32 expects bytes, str or int, got {type(data).__name__}")


def _hash_rows(rows: np.ndarray, length: int, seed: int) -> np.ndarray:
    """Hash a ``(count, length)`` uint8 matrix of equal-length inputs.

    All arithmetic runs in ``uint64`` lanes masked back to 32 bits after
    every multiply/rotate, which reproduces the scalar implementation's
    modular arithmetic exactly (a 32-bit by 32-bit product never overflows
    a ``uint64``).
    """
    count = rows.shape[0]
    h1 = np.full(count, seed & _MASK32, dtype=np.uint64)
    num_blocks = length // 4

    if num_blocks:
        blocks = (
            np.ascontiguousarray(rows[:, : num_blocks * 4])
            .view("<u4")
            .reshape(count, num_blocks)
            .astype(np.uint64)
        )
        for block_index in range(num_blocks):
            k1 = blocks[:, block_index]
            k1 = (k1 * _C1) & _MASK32
            k1 = ((k1 << 15) | (k1 >> 17)) & _MASK32
            k1 = (k1 * _C2) & _MASK32
            h1 ^= k1
            h1 = ((h1 << 13) | (h1 >> 19)) & _MASK32
            h1 = (h1 * 5 + 0xE6546B64) & _MASK32

    tail_length = length - num_blocks * 4
    if tail_length:
        tail = rows[:, num_blocks * 4 :].astype(np.uint64)
        k1 = np.zeros(count, dtype=np.uint64)
        if tail_length >= 3:
            k1 ^= tail[:, 2] << 16
        if tail_length >= 2:
            k1 ^= tail[:, 1] << 8
        k1 ^= tail[:, 0]
        k1 = (k1 * _C1) & _MASK32
        k1 = ((k1 << 15) | (k1 >> 17)) & _MASK32
        k1 = (k1 * _C2) & _MASK32
        h1 ^= k1

    h1 ^= length
    h1 ^= h1 >> 16
    h1 = (h1 * 0x85EBCA6B) & _MASK32
    h1 ^= h1 >> 13
    h1 = (h1 * 0xC2B2AE35) & _MASK32
    h1 ^= h1 >> 16
    return h1.astype(np.uint32)


def _hash_bytes_many(encodings: "list[bytes]", seed: int) -> np.ndarray:
    """Batched hash of ready-made byte strings (no input coercion)."""
    count = len(encodings)
    if count == 0:
        return np.empty(0, dtype=np.uint32)
    lengths = list(map(len, encodings))
    length = lengths[0]
    if lengths.count(length) == count:
        # Uniform length — the common case for fixed-format keys and for
        # 8-byte integer encodings: one packed matrix, no index shuffling.
        if length == 0:
            rows = np.empty((count, 0), dtype=np.uint8)
        else:
            rows = np.frombuffer(b"".join(encodings), dtype=np.uint8).reshape(
                count, length
            )
        return _hash_rows(rows, length, seed)
    out = np.empty(count, dtype=np.uint32)
    by_length: dict[int, list[int]] = {}
    for index, item_length in enumerate(lengths):
        by_length.setdefault(item_length, []).append(index)
    for length, indices in by_length.items():
        if length == 0:
            rows = np.empty((len(indices), 0), dtype=np.uint8)
        else:
            packed = b"".join([encodings[i] for i in indices])
            rows = np.frombuffer(packed, dtype=np.uint8).reshape(len(indices), length)
        out[np.asarray(indices)] = _hash_rows(rows, length, seed)
    return out


def murmur3_32_many(
    items: Sequence["bytes | str | int"], seed: int = 0
) -> np.ndarray:
    """Vectorized :func:`murmur3_32` over a sequence of inputs.

    Accepts the same per-item types as the scalar function (``bytes``,
    ``str``, ``int``) and returns a ``uint32`` array with
    ``result[i] == murmur3_32(items[i], seed)`` for every position.

    The MurmurHash3 control flow depends only on the input *length*
    (number of 4-byte body rounds, tail size, and the final length XOR), so
    inputs are grouped into equal-length buckets; each bucket is packed
    into a contiguous ``uint8`` matrix and hashed in one array pass.
    """
    return _hash_bytes_many([_coerce_input(item) for item in items], seed)
