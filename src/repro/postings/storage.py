"""Persistence of a :class:`~repro.postings.index.PostingsIndex`.

A posting index is stored as one uncompressed ``.npz`` sidecar
(``postings.npz``) next to an index directory's ``index.json`` /
``sketches.npz``:

* ``keys`` — sorted ``float64`` retained unit hashes (the bucket keys);
* ``offsets`` — ``int64`` CSR offsets, ``len(keys) + 1`` entries;
* ``lists`` — ``int64`` posting lists: positions into the candidate-id
  table, concatenated in key order;
* ``ids_utf8`` / ``ids_offsets`` — the candidate identifiers as one UTF-8
  byte pool with per-id offsets;
* ``manifest`` — UTF-8 JSON with the format magic, the postings format
  version (:data:`POSTINGS_FORMAT_VERSION`) and summary counts.

The numeric members are written uncompressed so :func:`load_postings` can
memory-map them (the same member-mapping machinery as the columnar sketch
store), keeping index open time O(1) in the posting data.  The sidecar is
*derived* data: everything in it can be rebuilt from the persisted KMV key
pools (``repro index postings build``), so an unsupported or corrupt file
is reported with rebuild instructions rather than guessed at.
"""

from __future__ import annotations

import json
import os
from typing import Union

import numpy as np

from repro.exceptions import PostingsError, StoreError
from repro.postings.index import PostingsIndex
from repro.store.columnar import _read_store_arrays

__all__ = ["POSTINGS_FORMAT_VERSION", "POSTINGS_MAGIC", "save_postings", "load_postings"]

#: Format version of the ``postings.npz`` sidecar.  Bumped whenever the
#: array layout or manifest schema changes incompatibly.
POSTINGS_FORMAT_VERSION = 1

#: Identifies a ``.npz`` file as a posting index.
POSTINGS_MAGIC = "repro-postings"

PathLike = Union[str, os.PathLike]


def save_postings(postings: PostingsIndex, path: PathLike) -> PathLike:
    """Write a posting index as one uncompressed ``.npz`` file.

    Live mutations are folded into the frozen arrays first (via a compacted
    copy; ``postings`` itself is not modified), so the persisted form is
    always purely frozen.  Returns ``path`` for chaining.
    """
    if postings.dirty:
        frozen = PostingsIndex.from_entries(postings.entries())
    else:
        frozen = postings
    ids = frozen._frozen_ids
    encoded = [candidate_id.encode("utf-8") for candidate_id in ids]
    ids_offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        ids_offsets[1:] = np.cumsum([len(chunk) for chunk in encoded])
    ids_utf8 = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
    manifest = {
        "magic": POSTINGS_MAGIC,
        "version": POSTINGS_FORMAT_VERSION,
        "candidates": len(ids),
        "key_buckets": int(frozen._keys.size),
        "postings": int(frozen._lists.size),
    }
    arrays = {
        "keys": np.asarray(frozen._keys, dtype=np.float64),
        "offsets": np.asarray(frozen._offsets, dtype=np.int64),
        "lists": np.asarray(frozen._lists, dtype=np.int64),
        "ids_utf8": ids_utf8,
        "ids_offsets": ids_offsets,
        "manifest": np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        ).copy(),
    }
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)
    return path


def _rebuild_hint(path: PathLike) -> str:
    return (
        f"the posting index {path} can be rebuilt from the index's KMV key "
        f"pools with `repro index postings build`"
    )


def load_postings(path: PathLike, *, mmap: bool = False) -> PostingsIndex:
    """Open a posting index written by :func:`save_postings`.

    ``mmap=True`` memory-maps the numeric members instead of reading them
    eagerly.  Raises :class:`~repro.exceptions.PostingsError` for missing,
    corrupted, wrong-magic or unsupported-version files.
    """
    if not os.path.exists(path):
        raise PostingsError(f"no posting index at {path}")
    try:
        arrays = _read_store_arrays(path, mmap)
    except StoreError as exc:
        raise PostingsError(f"not a posting index: {path} ({exc})") from exc
    if "manifest" not in arrays:
        raise PostingsError(f"not a posting index (no manifest): {path}")
    try:
        manifest = json.loads(bytes(np.asarray(arrays["manifest"])).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise PostingsError(f"corrupted posting-index manifest: {path}") from exc
    if not isinstance(manifest, dict) or manifest.get("magic") != POSTINGS_MAGIC:
        raise PostingsError(f"not a posting index (bad magic): {path}")
    version = manifest.get("version")
    if version != POSTINGS_FORMAT_VERSION:
        raise PostingsError(
            f"unsupported posting-index version {version!r} (expected "
            f"{POSTINGS_FORMAT_VERSION}): {_rebuild_hint(path)}"
        )
    try:
        keys = np.asarray(arrays["keys"], dtype=np.float64)
        offsets = np.asarray(arrays["offsets"], dtype=np.int64)
        lists = arrays["lists"] if mmap else np.asarray(arrays["lists"], dtype=np.int64)
        ids_utf8 = bytes(np.asarray(arrays["ids_utf8"], dtype=np.uint8))
        ids_offsets = np.asarray(arrays["ids_offsets"], dtype=np.int64)
    except KeyError as exc:
        raise PostingsError(
            f"posting index is missing array {exc.args[0]!r}: {path}"
        ) from exc
    if ids_offsets.size < 1 or int(manifest.get("candidates", -1)) != ids_offsets.size - 1:
        raise PostingsError(f"corrupted posting index (candidate count): {path}")
    try:
        candidate_ids = [
            ids_utf8[int(start):int(end)].decode("utf-8")
            for start, end in zip(ids_offsets[:-1], ids_offsets[1:])
        ]
    except UnicodeDecodeError as exc:
        raise PostingsError(f"corrupted posting index (candidate ids): {path}") from exc
    try:
        return PostingsIndex._from_frozen_arrays(
            keys, offsets, np.asarray(lists), candidate_ids
        )
    except PostingsError as exc:
        raise PostingsError(f"corrupted posting index {path}: {exc}") from exc
