"""Sublinear candidate generation via an inverted key index.

The planner's containment pre-filter touches every indexed candidate per
query.  This subsystem inverts the containment test's raw material — the
retained KMV min-hash keys — into LSH-style posting lists (retained unit
hash → candidate ids), so candidate generation probes the base sketch's
retained hashes instead of scanning the lake:

* :class:`PostingsIndex` — sorted-array posting lists probed with one
  vectorized ``searchsorted`` pass, plus a mutation delta so live indexes
  keep accepting candidates without array rebuilds;
* :func:`save_postings` / :func:`load_postings` — the versioned,
  mmap-able ``postings.npz`` sidecar persisted alongside the index format.

The probe result is a *provable superset* of the containment survivors for
any ``min_containment > 0`` (a candidate sharing no retained key has
containment exactly 0), so planned answers are byte-identical with or
without the index — it only changes how many candidates are looked at.
See ``docs/planning.md``.
"""

from repro.postings.index import PostingsIndex
from repro.postings.storage import (
    POSTINGS_FORMAT_VERSION,
    POSTINGS_MAGIC,
    load_postings,
    save_postings,
)

__all__ = [
    "PostingsIndex",
    "POSTINGS_FORMAT_VERSION",
    "POSTINGS_MAGIC",
    "load_postings",
    "save_postings",
]
