"""LSH-style inverted key index over retained KMV min-hash keys.

The discovery layer's containment pre-filter (see
:mod:`repro.serving.planner`) estimates joinability between the query's KMV
key sketch and *every* indexed candidate's KMV key sketch, so query cost
grows linearly with lake size even when almost nothing is joinable.  This
module inverts the relationship the containment estimate actually tests:

:meth:`~repro.sketches.kmv.KMVSketch.containment_estimate` is built on the
shared *retained* unit hashes of the two sketches (the ``k`` smallest
``h_u(h(key))`` values each side kept).  A candidate whose retained key set
is disjoint from the base sketch's retained key set has a containment
estimate of exactly ``0.0`` — so for any threshold ``min_containment > 0``
it is *provably* prunable without ever being looked at.

A :class:`PostingsIndex` therefore maps each retained unit hash to the
candidates that retained it (classic inverted / LSH posting lists, with the
KMV bottom-``k`` hashes playing the role of the min-hash signature).
Candidate generation becomes: probe the posting lists with the *base*
sketch's retained hashes and keep the union of the matching lists — a
superset of every candidate with non-zero containment, so handing only that
set to the containment filter cannot change any answer.

Two representations coexist inside one index:

* a **frozen** sorted-array representation (``keys`` / CSR ``offsets`` /
  posting ``lists``), probed with one vectorized :func:`numpy.searchsorted`
  pass — this is what :mod:`repro.postings.storage` persists and
  memory-maps; and
* a **delta** of live mutations (added candidates as hash→ids buckets,
  removed frozen candidates as tombstones), so a loaded index keeps
  accepting :meth:`add` / :meth:`discard` without rebuilding the arrays.

Probes always see the union of both, and mutation ordering guarantees a
concurrent probe can only *over*-approximate (see :meth:`add`), which is
the safe direction for a pre-filter.  :meth:`compact` folds the delta back
into fresh frozen arrays.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import PostingsError

__all__ = ["PostingsIndex"]


def _as_units(units: Sequence[float]) -> np.ndarray:
    """Validate and normalize one candidate's retained unit hashes."""
    array = np.asarray(list(units), dtype=np.float64)
    if array.ndim != 1:
        raise PostingsError("retained key hashes must be a flat sequence")
    if array.size and (np.any(array < 0.0) or np.any(array >= 1.0) or np.any(np.isnan(array))):
        raise PostingsError("retained key hashes must lie on the unit interval")
    return np.unique(array)


class PostingsIndex:
    """Inverted index: retained KMV unit hash -> candidate identifiers.

    Entries are ``(candidate_id, units)`` pairs where ``units`` are the
    candidate's retained KMV unit hashes
    (:attr:`~repro.sketches.kmv.KMVSketch.hashes`).  Re-adding an existing
    ``candidate_id`` replaces its previous entry, mirroring how
    :meth:`~repro.discovery.index.SketchIndex.add_prebuilt` overwrites
    candidates.
    """

    def __init__(self) -> None:
        self._keys = np.empty(0, dtype=np.float64)
        self._offsets = np.zeros(1, dtype=np.int64)
        self._lists = np.empty(0, dtype=np.int64)
        self._frozen_ids: list[str] = []
        #: live frozen candidates: id -> position into _frozen_ids
        self._frozen_position: dict[str, int] = {}
        #: tombstoned frozen positions (removed or overwritten candidates)
        self._dead: set[int] = set()
        #: live delta candidates: id -> retained unit hashes
        self._delta_units: dict[str, np.ndarray] = {}
        #: delta posting buckets: unit hash -> candidate ids
        self._delta_buckets: dict[float, set[str]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_entries(
        cls, entries: Iterable[tuple[str, Sequence[float]]]
    ) -> "PostingsIndex":
        """Bulk-build frozen posting lists from ``(candidate_id, units)`` pairs.

        One vectorized pass (concatenate, stable argsort, unique) instead of
        per-candidate insertion; duplicate candidate identifiers are
        rejected because bulk construction has no meaningful "previous
        entry" to replace.
        """
        index = cls()
        ids: list[str] = []
        unit_arrays: list[np.ndarray] = []
        for candidate_id, units in entries:
            ids.append(str(candidate_id))
            unit_arrays.append(_as_units(units))
        if len(set(ids)) != len(ids):
            raise PostingsError(
                "duplicate candidate identifiers in bulk postings build"
            )
        index._frozen_ids = ids
        index._frozen_position = {cid: position for position, cid in enumerate(ids)}
        if not ids:
            return index
        lengths = np.array([array.size for array in unit_arrays], dtype=np.int64)
        all_units = (
            np.concatenate(unit_arrays) if lengths.sum() else np.empty(0, np.float64)
        )
        owners = np.repeat(np.arange(len(ids), dtype=np.int64), lengths)
        order = np.argsort(all_units, kind="stable")
        sorted_units = all_units[order]
        keys, counts = np.unique(sorted_units, return_counts=True)
        index._keys = keys
        index._offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64))
        )
        index._lists = owners[order]
        return index

    @classmethod
    def _from_frozen_arrays(
        cls,
        keys: np.ndarray,
        offsets: np.ndarray,
        lists: np.ndarray,
        candidate_ids: list[str],
    ) -> "PostingsIndex":
        """Adopt persisted frozen arrays verbatim (see :mod:`.storage`)."""
        index = cls()
        if offsets.size != keys.size + 1 or offsets[-1] != lists.size:
            raise PostingsError("posting arrays are inconsistent")
        if keys.size and np.any(np.diff(keys) <= 0):
            raise PostingsError("posting keys must be strictly increasing")
        if lists.size and (lists.min() < 0 or lists.max() >= len(candidate_ids)):
            raise PostingsError("posting lists reference unknown candidates")
        index._keys = keys
        index._offsets = offsets
        index._lists = lists
        index._frozen_ids = list(candidate_ids)
        if len(set(index._frozen_ids)) != len(index._frozen_ids):
            raise PostingsError("duplicate candidate identifiers in posting index")
        index._frozen_position = {
            cid: position for position, cid in enumerate(index._frozen_ids)
        }
        return index

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Number of live candidates."""
        return len(self._frozen_position) + len(self._delta_units)

    def __contains__(self, candidate_id: str) -> bool:
        return candidate_id in self._frozen_position or candidate_id in self._delta_units

    @property
    def dirty(self) -> bool:
        """Whether live mutations exist outside the frozen arrays."""
        return bool(self._delta_units) or bool(self._dead)

    def ids(self) -> set[str]:
        """Identifiers of every live candidate."""
        return set(self._frozen_position) | set(self._delta_units)

    def entries(self) -> Iterator[tuple[str, np.ndarray]]:
        """Yield every live ``(candidate_id, sorted units)`` pair."""
        if self._frozen_position:
            counts = np.diff(self._offsets)
            unit_per_posting = np.repeat(self._keys, counts)
            order = np.argsort(self._lists, kind="stable")
            owners = self._lists[order]
            units = unit_per_posting[order]
            boundaries = np.flatnonzero(np.diff(owners)) + 1
            for owner_group, unit_group in zip(
                np.split(owners, boundaries), np.split(units, boundaries)
            ):
                if owner_group.size == 0:
                    continue
                position = int(owner_group[0])
                if position in self._dead:
                    continue
                yield self._frozen_ids[position], np.sort(unit_group)
            # Frozen candidates with an empty posting list never appear in
            # _lists; surface them with empty unit arrays.
            seen = set(np.unique(self._lists).tolist()) if self._lists.size else set()
            for candidate_id, position in self._frozen_position.items():
                if position not in seen:
                    yield candidate_id, np.empty(0, dtype=np.float64)
        for candidate_id, units in self._delta_units.items():
            yield candidate_id, units.copy()

    def stats(self) -> dict[str, float]:
        """Posting-list statistics: candidates, key buckets, list lengths.

        Computed directly from the frozen arrays when no live mutations
        exist (the common, just-loaded case); otherwise over a compacted
        view of the live entries.
        """
        if not self.dirty:
            keys = int(self._keys.size)
            postings = int(self._lists.size)
        else:
            buckets: dict[float, int] = {}
            for _, units in self.entries():
                for unit in units.tolist():
                    buckets[unit] = buckets.get(unit, 0) + 1
            keys = len(buckets)
            postings = sum(buckets.values())
        return {
            "candidates": len(self),
            "key_buckets": keys,
            "postings": postings,
            "avg_postings_per_key": (postings / keys) if keys else 0.0,
        }

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, candidate_id: str, units: Sequence[float]) -> None:
        """Insert (or replace) one candidate's retained key hashes.

        Ordering is chosen so that a concurrent probe observes a *superset*
        at every instant: the new entry's buckets are published before the
        old entry is retired, and a pre-filter that returns extra candidates
        never changes an answer (they fail the containment test instead).
        """
        candidate_id = str(candidate_id)
        new_units = _as_units(units)
        old_delta = self._delta_units.get(candidate_id)
        new_set = set(new_units.tolist())
        for unit in new_set:
            self._delta_buckets.setdefault(unit, set()).add(candidate_id)
        self._delta_units[candidate_id] = new_units
        # Retire the previous entry, if any.
        position = self._frozen_position.pop(candidate_id, None)
        if position is not None:
            self._dead.add(position)
        if old_delta is not None:
            for unit in old_delta.tolist():
                if unit in new_set:
                    continue
                bucket = self._delta_buckets.get(unit)
                if bucket is not None:
                    bucket.discard(candidate_id)
                    if not bucket:
                        del self._delta_buckets[unit]

    def discard(self, candidate_id: str) -> bool:
        """Remove one candidate entirely; returns whether it was present."""
        present = False
        position = self._frozen_position.pop(candidate_id, None)
        if position is not None:
            self._dead.add(position)
            present = True
        units = self._delta_units.pop(candidate_id, None)
        if units is not None:
            present = True
            for unit in units.tolist():
                bucket = self._delta_buckets.get(unit)
                if bucket is not None:
                    bucket.discard(candidate_id)
                    if not bucket:
                        del self._delta_buckets[unit]
        return present

    def compact(self) -> "PostingsIndex":
        """Fold the delta and tombstones into fresh frozen arrays (in place)."""
        if self.dirty:
            rebuilt = PostingsIndex.from_entries(self.entries())
            self.__dict__.update(rebuilt.__dict__)
        return self

    # ------------------------------------------------------------------ #
    # Probing
    # ------------------------------------------------------------------ #
    def probe(self, units: Sequence[float]) -> set[str]:
        """Candidates sharing at least one retained key hash with ``units``.

        The frozen half is probed with one vectorized ``searchsorted`` pass
        over the sorted key array plus a gather of the matching posting
        list slices; the delta half with per-unit bucket lookups.  ``units``
        is typically the *base* sketch's retained KMV hashes, so its length
        is bounded by the sketch capacity, not by the lake.
        """
        matched: set[str] = set()
        probe_units = np.asarray(list(units), dtype=np.float64)
        if self._keys.size and probe_units.size:
            positions = np.searchsorted(self._keys, probe_units)
            in_range = positions < self._keys.size
            hits = positions[in_range]
            hits = hits[self._keys[hits] == probe_units[in_range]]
            if hits.size:
                starts = self._offsets[hits]
                lengths = self._offsets[hits + 1] - starts
                total = int(lengths.sum())
                if total:
                    # Gather all matched slices in one vectorized pass:
                    # index i of the output maps into slice j at offset
                    # (i - cumulative_length[j]) + start[j].
                    cumulative = np.concatenate(
                        (np.zeros(1, dtype=np.int64), np.cumsum(lengths))
                    )
                    flat = (
                        np.arange(total, dtype=np.int64)
                        - np.repeat(cumulative[:-1], lengths)
                        + np.repeat(starts, lengths)
                    )
                    for position in np.unique(self._lists[flat]).tolist():
                        if position not in self._dead:
                            matched.add(self._frozen_ids[position])
        if self._delta_buckets:
            for unit in probe_units.tolist():
                bucket = self._delta_buckets.get(unit)
                if bucket:
                    matched.update(bucket)
        return matched
