"""Process-worker query execution over the shared mmap sketch store.

The serving layer's query computation is CPU-bound (hashing the request
table, KSG nearest-neighbour MI estimation per candidate), so a GIL-bound
thread pool cannot use more than roughly one core no matter how many
threads it runs — ``benchmarks/results/baselines/engine_batch.json``
records concurrent in-process estimation at **0.85x** sequential.  The
columnar ``.npz`` sketch store and the ``postings.npz`` sidecar were
designed for zero-copy memory-mapped reads precisely so multiple processes
could share one index: this module cashes that in.

A :class:`WorkerPool` spawns N worker processes.  Each worker mmap-loads
the served index directory **once** (the OS page cache shares the mapped
pool bytes across all workers — N workers cost one index's worth of
physical memory, not N) and then executes planned queries end-to-end:
base-table sketching, planning, MI estimation, ranking.  The parent
process keeps doing what :class:`~repro.serving.service.DiscoveryService`
always did — fingerprinting, L1 result caching, in-flight coalescing —
and routes cache-miss computations to the pool instead of a thread.

Reliability model
-----------------
* **Routing** — requests go to the live worker with the fewest outstanding
  requests (least-loaded; round-robin when tied by dict order).
* **Health + restart-on-crash** — a monitor thread polls worker liveness.
  A dead worker is replaced with a fresh process, and every request that
  was outstanding on it is *re-dispatched* to the pool (bounded by
  ``max_dispatch_attempts``, so a query that reliably kills workers fails
  with :class:`~repro.exceptions.WorkerCrashError` instead of crash-looping
  forever).  A worker crash therefore degrades the service to the
  surviving pool; it never turns a healthy request into a 5xx.
* **Shared result cache** — a :class:`SharedResultCache` (manager-backed,
  fingerprint-keyed, TTL + oldest-first eviction) fronts every worker's
  in-process :class:`~repro.serving.cache.ResultCache` L1, so a result
  computed by any worker serves all of them — and the parent, which probes
  it before dispatching.

Results computed by a worker travel back as pickles of the exact
:class:`~repro.discovery.query.AugmentationResult` dataclasses the thread
path produces, so process execution is byte-identical to thread execution
(asserted by ``benchmarks/test_bench_mp_serving.py``).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Any, Callable, Optional

from repro.discovery.query import AugmentationQuery, AugmentationResult
from repro.exceptions import ServingError, WorkerCrashError
from repro.serving.cache import ResultCache

__all__ = ["WorkerPool", "SharedResultCache"]

#: How often the monitor thread checks worker liveness, in seconds.
_MONITOR_INTERVAL = 0.05

#: Request kinds understood by the worker loop.
_KIND_QUERY = "query"
_KIND_CRASH = "crash"  # fault injection: the worker dies mid-request


# --------------------------------------------------------------------- #
# Shared (cross-process) result cache
# --------------------------------------------------------------------- #
class SharedResultCache:
    """Fingerprint-keyed result cache shared by every process of a pool.

    A thin LRU-ish layer over a :class:`multiprocessing.Manager` dict:
    entries carry their insertion time, expire after ``ttl_seconds`` (lazy,
    like :class:`~repro.serving.cache.ResultCache`) and the oldest entries
    are evicted once ``max_entries`` is exceeded.  Hit/miss counters live
    in a second manager dict so every process sees one consistent total.

    The proxies (``store``, ``counters``, ``lock``) are picklable, so a
    handle to one cache can be shipped to spawned worker processes; each
    process wraps the same shared state.  Values are stored via the
    manager's own pickling — callers get back equal (not identical)
    result lists, which matches the caller-owned-copies contract of the
    serving layer.
    """

    def __init__(
        self,
        store: Any,
        counters: Any,
        lock: Any,
        *,
        max_entries: int,
        ttl_seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_entries < 0:
            raise ServingError(f"max_entries must be non-negative, got {max_entries}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ServingError(f"ttl_seconds must be positive, got {ttl_seconds}")
        self._store = store
        self._counters = counters
        self._lock = lock
        self._max_entries = int(max_entries)
        self._ttl = ttl_seconds
        self._clock = clock

    @classmethod
    def create(
        cls,
        manager: "multiprocessing.managers.SyncManager",
        *,
        max_entries: int,
        ttl_seconds: Optional[float],
    ) -> "SharedResultCache":
        """Allocate the shared state on ``manager`` and wrap it."""
        counters = manager.dict()
        counters["hits"] = 0
        counters["misses"] = 0
        return cls(
            manager.dict(),
            counters,
            manager.Lock(),
            max_entries=max_entries,
            ttl_seconds=ttl_seconds,
        )

    def handle(self) -> tuple:
        """A picklable handle reconstructable via :meth:`from_handle`."""
        return (self._store, self._counters, self._lock, self._max_entries, self._ttl)

    @classmethod
    def from_handle(cls, handle: tuple) -> "SharedResultCache":
        store, counters, lock, max_entries, ttl = handle
        return cls(
            store, counters, lock, max_entries=max_entries, ttl_seconds=ttl
        )

    def _count(self, name: str) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + 1

    def get(self, key: str) -> Optional[list[AugmentationResult]]:
        """The cached results for ``key``, or ``None`` on miss/expiry."""
        entry = self._store.get(key)
        if entry is not None and self._ttl is not None:
            inserted_at, _ = entry
            if self._clock() - inserted_at >= self._ttl:
                with self._lock:
                    self._store.pop(key, None)
                entry = None
        if entry is None:
            self._count("misses")
            return None
        self._count("hits")
        return entry[1]

    def put(self, key: str, value: list[AugmentationResult]) -> None:
        """Insert an entry, evicting the oldest entries when over capacity."""
        if self._max_entries == 0:
            return
        with self._lock:
            self._store[key] = (self._clock(), value)
            excess = len(self._store) - self._max_entries
            if excess > 0:
                oldest = sorted(
                    self._store.items(), key=lambda item: item[1][0]
                )[:excess]
                for stale_key, _ in oldest:
                    self._store.pop(stale_key, None)

    def stats(self) -> dict[str, Any]:
        """Hit/miss counters and sizing, for ``/metrics``."""
        with self._lock:
            hits = self._counters.get("hits", 0)
            misses = self._counters.get("misses", 0)
            entries = len(self._store)
        return {
            "hits": hits,
            "misses": misses,
            "entries": entries,
            "max_entries": self._max_entries,
            "ttl_seconds": self._ttl,
        }


class _WorkerCacheStack:
    """A worker's view of the result caches: in-process L1, shared L2."""

    def __init__(self, l1: ResultCache, shared: Optional[SharedResultCache]):
        self._l1 = l1
        self._shared = shared

    def get(self, fingerprint: str) -> tuple[Optional[list], Optional[str]]:
        cached = self._l1.get(fingerprint)
        if cached is not None:
            return cached, "l1"
        if self._shared is not None:
            cached = self._shared.get(fingerprint)
            if cached is not None:
                self._l1.put(fingerprint, cached)
                return cached, "shared"
        return None, None

    def put(self, fingerprint: str, results: list) -> None:
        self._l1.put(fingerprint, results)
        if self._shared is not None:
            self._shared.put(fingerprint, results)


# --------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------- #
def _picklable_error(exc: BaseException) -> BaseException:
    """``exc`` if it survives pickling, else a ``ServingError`` stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ServingError(f"worker error: {type(exc).__name__}: {exc}")


def _worker_main(
    worker_id: int,
    index_dir: str,
    options: dict[str, Any],
    cache_handle: Optional[tuple],
    request_queue: "multiprocessing.Queue",
    response_queue: "multiprocessing.Queue",
) -> None:
    """Worker-process entry point: load the index once, answer forever.

    Runs in a spawned child.  Mirrors the thread path's ``_compute``
    exactly — same planner, same ``use_cache=False`` memo bypass, same
    empty-index contract — so answers are byte-identical across execution
    modes.  Every response is tagged ``(kind, worker_id, request_id,
    payload)``; a ``None`` request is the shutdown sentinel.
    """
    try:
        from repro.discovery.persistence import load_index, publication_token
        from repro.serving.planner import QueryPlanner

        index = load_index(index_dir, mmap=options.get("mmap", True))
        planner = QueryPlanner(index.engine)
        served_token = publication_token(index_dir)
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        response_queue.put(("fatal", worker_id, None, _picklable_error(exc)))
        return

    def fresh_caches() -> _WorkerCacheStack:
        return _WorkerCacheStack(
            ResultCache(
                max_entries=options.get("l1_entries", 256),
                ttl_seconds=options.get("ttl_seconds"),
            ),
            SharedResultCache.from_handle(cache_handle) if cache_handle else None,
        )

    caches = fresh_caches()
    use_postings = options.get("use_postings", True)
    estimate_workers = options.get("estimate_workers")
    response_queue.put(("ready", worker_id, None, os.getpid()))
    while True:
        message = request_queue.get()
        if message is None:
            break
        request_id, kind, fingerprint, query = message
        if kind == _KIND_CRASH:
            # Fault injection for tests/benchmarks: die like a segfault,
            # with a request on the wire, skipping all cleanup.
            os._exit(3)
        # Maintained directories (repro.maintenance) publish new index
        # generations by atomically swapping a small pointer file; checking
        # it per request is one tiny read, and a change re-mmaps the new
        # generation in place — the request below already sees it.  The L1
        # cache is replaced wholesale: its entries were keyed against the
        # superseded generation's fingerprints.
        try:
            current_token = publication_token(index_dir)
            if current_token != served_token and current_token is not None:
                index = load_index(index_dir, mmap=options.get("mmap", True))
                planner = QueryPlanner(index.engine)
                caches = fresh_caches()
                served_token = current_token
                response_queue.put(("reloaded", worker_id, None, current_token))
        except BaseException:  # noqa: BLE001 - a torn swap: retry next request
            pass
        try:
            cached, source = caches.get(fingerprint)
            if cached is not None:
                response_queue.put(("ok", worker_id, request_id, (cached, {}, source)))
                continue
            if len(index) == 0:
                # Match SketchIndex.query's contract for empty indexes.
                index.query(query)
            plan = planner.plan(
                index.candidates,
                query,
                use_cache=False,
                postings=index.postings if use_postings else None,
            )
            results = planner.execute(plan, query, max_workers=estimate_workers)
            caches.put(fingerprint, results)
            response_queue.put(
                ("ok", worker_id, request_id, (results, plan.stats(), "computed"))
            )
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            response_queue.put(("error", worker_id, request_id, _picklable_error(exc)))


# --------------------------------------------------------------------- #
# Parent-side pool
# --------------------------------------------------------------------- #
class _PoolRequest:
    """One in-flight query: its future plus re-dispatch bookkeeping."""

    __slots__ = ("request_id", "fingerprint", "query", "future", "attempts")

    def __init__(self, request_id: str, fingerprint: str, query: AugmentationQuery):
        self.request_id = request_id
        self.fingerprint = fingerprint
        self.query = query
        self.future: "Future[tuple]" = Future()
        self.attempts = 0


class _WorkerHandle:
    """Parent-side state of one worker process."""

    __slots__ = (
        "worker_id", "process", "request_queue", "outstanding",
        "ready", "dispatched", "completed", "errors", "reloads",
    )

    def __init__(self, worker_id: int, process, request_queue):
        self.worker_id = worker_id
        self.process = process
        self.request_queue = request_queue
        self.outstanding: dict[str, _PoolRequest] = {}
        self.ready = False
        self.dispatched = 0
        self.completed = 0
        self.errors = 0
        self.reloads = 0


class WorkerPool:
    """N query-executing processes over one memory-mapped index directory.

    Parameters
    ----------
    index_dir:
        Index directory written by :func:`~repro.discovery.persistence.
        save_index`; every worker loads it independently (memory-mapped, so
        the sketch pools are shared physical pages).
    workers:
        Number of worker processes.
    options:
        Worker-side knobs, mirroring :class:`~repro.serving.service.
        ServiceConfig`: ``mmap``, ``use_postings``, ``estimate_workers``,
        ``l1_entries``, ``ttl_seconds``.
    shared_cache_entries:
        Capacity of the cross-worker :class:`SharedResultCache`; ``0``
        disables it (workers keep their private L1s).
    max_dispatch_attempts:
        How many workers one request may be dispatched to before it fails
        with :class:`WorkerCrashError` (i.e. it survives
        ``max_dispatch_attempts - 1`` worker crashes).
    """

    def __init__(
        self,
        index_dir: "str | Path",
        *,
        workers: int = 2,
        options: Optional[dict[str, Any]] = None,
        shared_cache_entries: int = 1024,
        ttl_seconds: Optional[float] = 300.0,
        max_dispatch_attempts: int = 3,
    ):
        if workers < 1:
            raise ServingError(f"workers must be at least 1, got {workers}")
        self._index_dir = os.fspath(index_dir)
        self._num_workers = int(workers)
        self._options = dict(options or {})
        self._options.setdefault("ttl_seconds", ttl_seconds)
        self._shared_cache_entries = int(shared_cache_entries)
        self._ttl_seconds = ttl_seconds
        self._max_dispatch_attempts = int(max_dispatch_attempts)
        # Spawned children import a fresh interpreter instead of forking the
        # (multi-threaded) serving process — fork from under the HTTP
        # server's threads could inherit held locks mid-operation.
        self._ctx = multiprocessing.get_context("spawn")
        self._manager: Optional[Any] = None
        self._response_queue: Optional[Any] = None
        self.shared_cache: Optional[SharedResultCache] = None
        self._handles: dict[int, _WorkerHandle] = {}
        self._lock = threading.Lock()
        self._worker_available = threading.Condition(self._lock)
        self._request_ids = itertools.count()
        self._collector: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None
        self._started = False
        self._closed = False
        self._restarts = 0
        self._redispatched = 0
        self._reloads = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "WorkerPool":
        """Spawn the workers and the collector/monitor threads (idempotent)."""
        with self._lock:
            if self._started:
                return self
            if self._closed:
                raise ServingError("the worker pool is closed")
            self._started = True
            self._manager = self._ctx.Manager()
            self._response_queue = self._ctx.Queue()
            if self._shared_cache_entries > 0:
                self.shared_cache = SharedResultCache.create(
                    self._manager,
                    max_entries=self._shared_cache_entries,
                    ttl_seconds=self._ttl_seconds,
                )
            for worker_id in range(self._num_workers):
                self._handles[worker_id] = self._spawn(worker_id)
        self._collector = threading.Thread(
            target=self._collect_responses, name="pool-collector", daemon=True
        )
        self._collector.start()
        self._monitor = threading.Thread(
            target=self._monitor_workers, name="pool-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def _spawn(self, worker_id: int) -> _WorkerHandle:
        """Start one worker process with a fresh request queue (lock held)."""
        request_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                self._index_dir,
                self._options,
                self.shared_cache.handle() if self.shared_cache else None,
                request_queue,
                self._response_queue,
            ),
            name=f"discovery-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        return _WorkerHandle(worker_id, process, request_queue)

    def close(self, timeout: float = 10.0) -> None:
        """Stop every worker and background thread; fail pending requests."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles.values())
            pending = [
                request
                for handle in handles
                for request in handle.outstanding.values()
            ]
            for handle in handles:
                handle.outstanding.clear()
            self._worker_available.notify_all()
        if not self._started:
            return
        for request in pending:
            if not request.future.done():
                request.future.set_exception(ServingError("the worker pool is closed"))
        for handle in handles:
            try:
                handle.request_queue.put(None)
            except Exception:  # pragma: no cover - queue already torn down
                pass
        deadline = time.monotonic() + timeout
        for handle in handles:
            handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        if self._response_queue is not None:
            self._response_queue.put(None)  # stops the collector
        for thread in (self._collector, self._monitor):
            if thread is not None:
                thread.join(timeout=5.0)
        if self._manager is not None:
            self._manager.shutdown()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def execute(
        self,
        fingerprint: str,
        query: AugmentationQuery,
        *,
        timeout: Optional[float] = None,
    ) -> tuple[list[AugmentationResult], dict[str, int], str]:
        """Run one query on the pool; returns ``(results, plan_stats, source)``.

        ``source`` records how the answering worker produced the result:
        ``"computed"``, ``"l1"`` (its in-process cache) or ``"shared"``
        (the cross-worker cache).  Raises :class:`WorkerCrashError` when
        the request could not survive repeated worker crashes, and
        re-raises any library error the worker's computation raised.
        """
        if not self._started:
            self.start()
        request = _PoolRequest(str(next(self._request_ids)), fingerprint, query)
        self._dispatch(request)
        return request.future.result(timeout=timeout)

    def _dispatch(self, request: _PoolRequest) -> None:
        """Queue a request on the least-loaded live worker (or fail it)."""
        request.attempts += 1
        if request.attempts > self._max_dispatch_attempts:
            request.future.set_exception(
                WorkerCrashError(
                    f"query abandoned after {self._max_dispatch_attempts} "
                    f"dispatch attempts ({request.attempts - 1} worker crashes)"
                )
            )
            return
        with self._lock:
            if self._closed:
                request.future.set_exception(
                    ServingError("the worker pool is closed")
                )
                return
            # The monitor replaces dead workers asynchronously, so a live
            # worker (re)appears shortly even right after a crash; waiting
            # here covers the window instead of failing the request.
            handle = self._least_loaded_alive()
            while handle is None:
                if not self._worker_available.wait(timeout=30.0) or self._closed:
                    request.future.set_exception(
                        WorkerCrashError("no live workers in the pool")
                    )
                    return
                handle = self._least_loaded_alive()
            handle.outstanding[request.request_id] = request
            handle.dispatched += 1
            handle.request_queue.put(
                (request.request_id, _KIND_QUERY, request.fingerprint, request.query)
            )

    def _least_loaded_alive(self) -> Optional[_WorkerHandle]:
        alive = [
            handle
            for handle in self._handles.values()
            if handle.process.is_alive()
        ]
        if not alive:
            return None
        return min(alive, key=lambda handle: len(handle.outstanding))

    def inject_crash(self, worker_id: Optional[int] = None) -> int:
        """Fault injection: make one worker die mid-request (``os._exit``).

        Used by the crash-handling tests and benchmarks; the doomed request
        is fire-and-forget (never re-dispatched), while real requests
        queued behind it are re-dispatched by the monitor like any other
        crash casualty.  Returns the targeted worker id.
        """
        with self._lock:
            if worker_id is None:
                worker_id = next(iter(self._handles))
            self._handles[worker_id].request_queue.put(
                ("crash", _KIND_CRASH, None, None)
            )
        return worker_id

    # ------------------------------------------------------------------ #
    # Background threads
    # ------------------------------------------------------------------ #
    def _collect_responses(self) -> None:
        """Resolve futures from the shared response queue (daemon thread)."""
        while True:
            message = self._response_queue.get()
            if message is None:
                return
            kind, worker_id, request_id, payload = message
            if kind == "ready":
                with self._lock:
                    handle = self._handles.get(worker_id)
                    if handle is not None:
                        handle.ready = True
                continue
            if kind == "reloaded":
                # A worker re-mmapped a newly published index generation.
                with self._lock:
                    self._reloads += 1
                    handle = self._handles.get(worker_id)
                    if handle is not None:
                        handle.reloads += 1
                continue
            if kind == "fatal":
                # The worker could not even load the index; it already
                # exited and the monitor will replace it.  Nothing was
                # outstanding on it yet beyond what re-dispatch covers.
                continue
            with self._lock:
                handle = self._handles.get(worker_id)
                request = (
                    handle.outstanding.pop(request_id, None) if handle else None
                )
                if request is None:
                    # A re-dispatched duplicate resolved elsewhere, or the
                    # response of a worker already declared dead.
                    continue
                if kind == "ok":
                    handle.completed += 1
                else:
                    handle.errors += 1
            if kind == "ok":
                if not request.future.done():
                    request.future.set_result(payload)
            elif not request.future.done():
                request.future.set_exception(payload)

    def _monitor_workers(self) -> None:
        """Replace dead workers and re-dispatch their in-flight requests."""
        while True:
            time.sleep(_MONITOR_INTERVAL)
            orphaned: list[_PoolRequest] = []
            with self._lock:
                if self._closed:
                    return
                for worker_id, handle in list(self._handles.items()):
                    if handle.process.is_alive():
                        continue
                    orphaned.extend(handle.outstanding.values())
                    handle.outstanding.clear()
                    self._restarts += 1
                    self._handles[worker_id] = self._spawn(worker_id)
                if orphaned or self._restarts:
                    self._worker_available.notify_all()
            for request in orphaned:
                self._redispatched += 1
                self._dispatch(request)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """Pool counters for ``/metrics``: per-worker, restarts, shared cache."""
        with self._lock:
            per_worker = {
                str(worker_id): {
                    "pid": handle.process.pid,
                    "alive": handle.process.is_alive(),
                    "ready": handle.ready,
                    "dispatched": handle.dispatched,
                    "completed": handle.completed,
                    "errors": handle.errors,
                    "outstanding": len(handle.outstanding),
                    "reloads": handle.reloads,
                }
                for worker_id, handle in sorted(self._handles.items())
            }
            restarts = self._restarts
            redispatched = self._redispatched
            reloads = self._reloads
        alive = sum(1 for entry in per_worker.values() if entry["alive"])
        return {
            "workers": self._num_workers,
            "alive": alive,
            "worker_restarts": restarts,
            "redispatched": redispatched,
            "worker_reloads": reloads,
            "shared_cache": (
                self.shared_cache.stats() if self.shared_cache is not None else None
            ),
            "per_worker": per_worker,
        }
