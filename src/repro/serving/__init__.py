"""The online serving layer: a concurrent discovery query service.

The paper's end goal is *interactive* correlation/augmentation discovery
over a data lake; :mod:`repro.discovery` builds the offline index, and this
package is the online half that makes query throughput and latency
first-class concerns:

* :class:`~repro.serving.planner.QueryPlanner` — prunes the candidate set
  (containment pre-filter, join-size floors) and ranks with a bounded
  top-k heap, without ever changing an answer;
* :class:`~repro.serving.cache.ResultCache` — LRU+TTL result cache keyed by
  a stable :func:`~repro.serving.fingerprint.query_fingerprint`;
* :class:`~repro.serving.service.DiscoveryService` — the facade owning the
  engine + index (lazily loaded, memory-mapped), a query thread pool, the
  cache and in-flight request coalescing;
* :class:`~repro.serving.workers.WorkerPool` — optional process-worker
  execution (``ServiceConfig(execution="process")``): N spawned workers each
  memory-map the same index directory and share results through a
  :class:`~repro.serving.workers.SharedResultCache`;
* :mod:`~repro.serving.http` — a stdlib ``ThreadingHTTPServer`` front end
  (``POST /query``, ``GET /healthz``, ``GET /metrics``), wired into the CLI
  as ``repro serve``.

Quickstart::

    from repro.serving import DiscoveryService, ServiceConfig, serve

    service = DiscoveryService("lake.index", ServiceConfig(workers=8))
    server = serve(service, port=8765)
    server.serve_forever()
"""

from repro.serving.cache import ResultCache
from repro.serving.fingerprint import query_fingerprint
from repro.serving.metrics import LatencyHistogram, MetricsRegistry
from repro.serving.planner import PlannedCandidate, QueryPlan, QueryPlanner
from repro.serving.service import DiscoveryService, ServedResult, ServiceConfig
from repro.serving.workers import SharedResultCache, WorkerPool
from repro.serving.http import DiscoveryHTTPServer, result_to_dict, serve

__all__ = [
    "ResultCache",
    "query_fingerprint",
    "LatencyHistogram",
    "MetricsRegistry",
    "PlannedCandidate",
    "QueryPlan",
    "QueryPlanner",
    "DiscoveryService",
    "ServedResult",
    "ServiceConfig",
    "SharedResultCache",
    "WorkerPool",
    "DiscoveryHTTPServer",
    "result_to_dict",
    "serve",
]
