"""Counters and latency histograms for the serving layer.

Stdlib-only observability: named monotonic counters plus fixed-bucket
latency histograms with approximate quantiles, snapshotted as plain JSON for
the ``/metrics`` endpoint.  All types are thread-safe.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Optional, Sequence

__all__ = ["LatencyHistogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: Default latency bucket upper bounds, in seconds (100µs .. ~100s, roughly
#: half-decade steps); observations beyond the last bound land in +Inf.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)


class LatencyHistogram:
    """Fixed-bucket histogram of durations with approximate quantiles."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds or any(bound <= 0 for bound in bounds):
            raise ValueError("bucket bounds must be positive and non-empty")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        seconds = float(seconds)
        position = bisect.bisect_left(self._bounds, seconds)
        with self._lock:
            self._counts[position] += 1
            self._count += 1
            self._sum += seconds
            self._min = seconds if self._min is None else min(self._min, seconds)
            self._max = seconds if self._max is None else max(self._max, seconds)

    def _quantile(self, q: float) -> Optional[float]:
        """Upper bound of the bucket containing the ``q``-quantile."""
        if self._count == 0:
            return None
        rank = q * self._count
        seen = 0
        for position, count in enumerate(self._counts):
            seen += count
            if seen >= rank and count:
                if position < len(self._bounds):
                    return self._bounds[position]
                return self._max  # +Inf bucket: best effort
        return self._max

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable summary: count, sum, min/max, p50/p90/p99, buckets."""
        with self._lock:
            return {
                "count": self._count,
                "sum_seconds": self._sum,
                "min_seconds": self._min,
                "max_seconds": self._max,
                "mean_seconds": (self._sum / self._count) if self._count else None,
                "p50_seconds": self._quantile(0.50),
                "p90_seconds": self._quantile(0.90),
                "p99_seconds": self._quantile(0.99),
                "buckets": {
                    **{
                        f"le_{bound:g}": count
                        for bound, count in zip(self._bounds, self._counts)
                    },
                    "le_inf": self._counts[-1],
                },
            }


class MetricsRegistry:
    """Named counters and latency histograms behind one lock-free facade."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._lock = threading.Lock()

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def histogram(self, name: str) -> LatencyHistogram:
        """The named histogram, created on first use."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            return histogram

    def observe(self, name: str, seconds: float) -> None:
        self.histogram(name).observe(seconds)

    def snapshot(self) -> dict[str, Any]:
        """All counters and histogram summaries as one JSON-able document."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": counters,
            "latency": {name: hist.snapshot() for name, hist in histograms.items()},
        }
