"""Stable fingerprints of discovery queries.

The serving layer keys its result cache — and coalesces concurrent duplicate
requests — on a fingerprint that captures *everything* that determines a
query's answer:

* the engine configuration fields that affect sketch content and estimator
  selection (``sketch_key`` plus ``estimator_k``),
* the query parameters (``key_column``, ``target_column``, ``top_k``,
  ``min_containment``, ``min_join_size``), and
* the base table's key and target column *values* (other columns, and the
  table's name, never influence the result).

Two queries with equal fingerprints are guaranteed to produce identical
result lists against one index, so serving a cached result is
indistinguishable from recomputing it.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Optional

from repro.discovery.query import AugmentationQuery
from repro.engine.config import EngineConfig

__all__ = ["query_fingerprint"]

#: Record separator fed between hashed tokens so value boundaries are
#: unambiguous ("ab" + "c" never collides with "a" + "bc").
_SEP = b"\x1f"


def _update_with_values(digest: "hashlib._Hash", values: Iterable[Any]) -> None:
    """Feed a column of values into the digest, tagged by type.

    ``repr`` is stable across processes for every type a
    :class:`~repro.relational.column.Column` can hold (None, bool, int,
    float, str), and the type tag keeps ``1`` and ``1.0`` (or ``None`` and
    ``"None"``) distinct.
    """
    for value in values:
        digest.update(type(value).__name__.encode("utf-8"))
        digest.update(b":")
        digest.update(repr(value).encode("utf-8"))
        digest.update(_SEP)


def query_fingerprint(
    config: EngineConfig,
    query: AugmentationQuery,
    *,
    index_token: Optional[str] = None,
) -> str:
    """SHA-256 fingerprint of an :class:`AugmentationQuery` under a config.

    ``index_token`` ties the fingerprint to one index generation: a service
    that reloads or swaps its index passes a new token so stale cached
    results can never be served.
    """
    digest = hashlib.sha256()
    header = (
        "repro-query-fingerprint/1",
        *config.sketch_key,
        config.estimator_k,
        index_token or "",
        query.key_column,
        query.target_column,
        query.top_k,
        query.min_containment,
        query.min_join_size,
    )
    for part in header:
        digest.update(repr(part).encode("utf-8"))
        digest.update(_SEP)
    _update_with_values(digest, query.table.column(query.key_column).values)
    digest.update(_SEP)
    _update_with_values(digest, query.table.column(query.target_column).values)
    return digest.hexdigest()
