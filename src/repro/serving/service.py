"""The :class:`DiscoveryService` facade — the online half of the pipeline.

A service owns one :class:`~repro.discovery.index.SketchIndex` (either an
in-memory index, or an index directory loaded lazily through the columnar
store with ``mmap=True`` so start-up cost is O(1) in the index size) and
answers :class:`~repro.discovery.query.AugmentationQuery`s through a
bounded thread pool.  Around every query it layers:

* **planning** — the :class:`~repro.serving.planner.QueryPlanner` prunes
  candidates before MI estimation (containment pre-filter, join-size
  floors, bounded top-k ranking);
* **result caching** — an LRU+TTL :class:`~repro.serving.cache.ResultCache`
  keyed by the stable :func:`~repro.serving.fingerprint.query_fingerprint`;
* **request coalescing** — N identical queries arriving while one is being
  computed attach to the in-flight computation instead of triggering N
  computations.

Served results are byte-identical to calling ``SketchIndex.query`` in
process: planning never changes an answer, and the cache key captures every
input that could.

The cold path — sketching the request table's base sketch and key KMV before
any MI estimation — runs through the engine's vectorized hashing fast paths
whenever the index was built with ``EngineConfig.vectorized`` (the default,
persisted in the index document); the scalar and vectorized paths produce
bit-identical sketches, so the flag never affects answers, only latency.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional, Union

from repro.discovery.index import SketchIndex
from repro.discovery.persistence import (
    load_index,
    publication_token,
    read_publication,
)
from repro.discovery.query import AugmentationQuery, AugmentationResult
from repro.exceptions import DiscoveryError, ServingError
from repro.serving.cache import ResultCache
from repro.serving.fingerprint import query_fingerprint
from repro.serving.metrics import MetricsRegistry
from repro.serving.planner import QueryPlanner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.maintenance import IndexMaintainer
    from repro.serving.workers import WorkerPool

__all__ = ["DiscoveryService", "ServiceConfig", "ServedResult"]


def _caller_owned(results: list[AugmentationResult]) -> list[AugmentationResult]:
    """Per-result copies of a cached answer.

    Callers may freely mutate what they get back (re-sort, drop entries,
    annotate ``metadata``) without corrupting the pristine list the cache
    shares with every other request.
    """
    return [
        replace(result, metadata=dict(result.metadata)) for result in results
    ]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`DiscoveryService`.

    Attributes
    ----------
    workers:
        Number of concurrent query computations: the query thread-pool
        size under ``execution="thread"``, the worker-process count under
        ``execution="process"``.
    execution:
        ``"thread"`` computes queries on a GIL-bound thread pool in
        process; ``"process"`` routes them to a
        :class:`~repro.serving.workers.WorkerPool` of processes that each
        memory-map the served index directory (see
        :mod:`repro.serving.workers`).  Answers are byte-identical either
        way; only throughput under CPU-bound load differs.
    estimate_workers:
        Per-query thread count for candidate MI estimation (``None`` runs
        each query's estimates sequentially; concurrency across queries
        comes from ``workers``).
    cache_entries / cache_ttl_seconds:
        Result-cache bound and entry lifetime (``0`` entries disables
        caching; ``None`` TTL disables expiry).  Under process execution
        the same bounds configure each worker's in-process L1 cache.
    shared_cache_entries:
        Capacity of the cross-worker shared result cache (process
        execution only; ``0`` disables it).  A result computed by any
        worker serves all of them — and the parent, which probes the
        shared cache before dispatching.
    mmap:
        Memory-map the index's columnar sketch store when loading from a
        directory.
    use_postings:
        Probe the index's posting lists (when it carries a
        :class:`~repro.postings.PostingsIndex`) for sublinear candidate
        generation; ``False`` forces full candidate scans.  Answers are
        identical either way — only the planning counters change.
    """

    workers: int = 4
    execution: str = "thread"
    estimate_workers: Optional[int] = None
    cache_entries: int = 256
    cache_ttl_seconds: Optional[float] = 300.0
    shared_cache_entries: int = 1024
    mmap: bool = True
    use_postings: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServingError(f"workers must be at least 1, got {self.workers}")
        if self.execution not in ("thread", "process"):
            raise ServingError(
                f'execution must be "thread" or "process", got {self.execution!r}'
            )


@dataclass(frozen=True)
class ServedResult:
    """One answered query, with serving metadata.

    ``results`` is exactly what ``SketchIndex.query`` would have returned;
    ``cache_hit``/``coalesced`` record how the answer was produced and
    ``elapsed_seconds`` the caller-observed service time.
    """

    results: list[AugmentationResult]
    fingerprint: str
    cache_hit: bool = False
    coalesced: bool = False
    elapsed_seconds: float = 0.0
    plan_stats: dict[str, int] = field(default_factory=dict)


class DiscoveryService:
    """Concurrent discovery query service over one sketch index.

    Parameters
    ----------
    index:
        A live :class:`SketchIndex`, or a path to an index directory written
        by :func:`~repro.discovery.persistence.save_index`.  Directories are
        loaded lazily on the first query (or via :meth:`ensure_ready`), with
        the columnar store memory-mapped by default.
    config:
        Service tunables; defaults to :class:`ServiceConfig`'s defaults.
    """

    def __init__(
        self,
        index: Union[SketchIndex, str, Path],
        config: Optional[ServiceConfig] = None,
    ):
        self.config = config or ServiceConfig()
        if isinstance(index, SketchIndex):
            if self.config.execution == "process":
                raise ServingError(
                    "process execution requires an index directory that the "
                    "worker processes can memory-map; got a live SketchIndex"
                )
            self._index: Optional[SketchIndex] = index
            self._index_dir: Optional[Path] = None
        elif isinstance(index, (str, Path)):
            self._index = None
            self._index_dir = Path(index)
        else:
            raise ServingError(
                f"index must be a SketchIndex or a directory path, "
                f"got {type(index).__name__}"
            )
        self.cache = ResultCache(
            max_entries=self.config.cache_entries,
            ttl_seconds=self.config.cache_ttl_seconds,
        )
        self.metrics = MetricsRegistry()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="discovery-query"
        )
        self._lock = threading.Lock()
        self._load_lock = threading.Lock()
        self._register_lock = threading.Lock()
        self._inflight: dict[str, Future] = {}
        self._planner: Optional[QueryPlanner] = None
        self._pool: Optional["WorkerPool"] = None
        self._pool_lock = threading.Lock()
        self._maintainer: Optional["IndexMaintainer"] = None
        self._maintenance_lock = threading.RLock()
        self._wal = None  # lazily-opened writer log (see _writer_wal)
        self._closed = False

    # ------------------------------------------------------------------ #
    # Index lifecycle
    # ------------------------------------------------------------------ #
    @property
    def index_loaded(self) -> bool:
        """Whether the index is resident (lazily-loaded services start cold)."""
        return self._index is not None

    def ensure_ready(self) -> SketchIndex:
        """Load the index if needed and return it (idempotent, thread-safe).

        Thread-mode services over a WAL-backed directory also replay any
        deltas logged after the published generation into the loaded index,
        so durably registered tables survive a crash-and-restart without
        waiting for a compaction to fold them in.
        """
        index = self._index
        if index is not None:
            return index
        with self._load_lock:
            if self._index is None:
                started = time.perf_counter()
                index = load_index(self._index_dir, mmap=self.config.mmap)
                if self.config.execution == "thread" and self._wal_backed:
                    self._replay_pending(index)
                self._index = index
                self.metrics.observe("index_load", time.perf_counter() - started)
                self.metrics.increment("index_loads")
            return self._index

    @property
    def _wal_backed(self) -> bool:
        """Whether the served directory carries a write-ahead delta log."""
        if self._index_dir is None:
            return False
        from repro.maintenance import WriteAheadLog

        return WriteAheadLog.present(self._index_dir)

    def _replay_pending(self, index: SketchIndex) -> int:
        """Fold not-yet-compacted WAL deltas into a freshly loaded index."""
        from repro.maintenance import WriteAheadLog, apply_delta

        publication = read_publication(self._index_dir)
        applied = publication["applied_sequence"] if publication else 0
        replayed = 0
        with WriteAheadLog.attach(self._index_dir, readonly=True) as wal:
            for record in wal.replay(after=applied):
                apply_delta(index, record)
                replayed += 1
        if replayed:
            self.metrics.increment("deltas_replayed", replayed)
        return replayed

    @property
    def _index_token(self) -> str:
        """Cache-key component tying fingerprints to this index generation.

        The index's mutation counter is part of the token, so growing or
        overwriting candidates in a live index invalidates every previously
        cached fingerprint instead of serving stale results.  Under process
        execution over a maintained directory the *published generation*
        token is folded in instead of the parent's in-memory counter: the
        workers answer from whatever generation is published, so cached
        entries must be keyed by it — the parent's lazily-loaded copy can
        be generations behind the pool.
        """
        index = self.ensure_ready()
        if self.config.execution == "process" and self._index_dir is not None:
            token = publication_token(self._index_dir)
            if token is not None:
                return f"{self._index_dir}#pub={token.strip()}"
        return f"{self._index_dir or ''}#{index.generation}#{len(index)}"

    def published_generation(self) -> Optional[int]:
        """The served directory's published generation number, or ``None``.

        One small-file read — never loads the index — so ``/healthz`` can
        report it for free.  ``None`` means the service holds a live index
        or a plain (unmaintained) directory.
        """
        if self._index_dir is None:
            return None
        try:
            publication = read_publication(self._index_dir)
        except DiscoveryError:
            return None  # damaged pointer: liveness must not 500 over it
        return publication["generation"] if publication else None

    def planner(self) -> QueryPlanner:
        """The planner bound to the index's engine (created on first use)."""
        if self._planner is None:
            self._planner = QueryPlanner(self.ensure_ready().engine)
        return self._planner

    def start_workers(self) -> Optional["WorkerPool"]:
        """Start the process worker pool (idempotent; ``None`` in thread mode).

        The pool also starts lazily on the first computed query; calling
        this up front (the CLI does, before accepting traffic) moves the
        spawn-and-load cost off the first request.
        """
        if self.config.execution != "process":
            return None
        from repro.serving.workers import WorkerPool

        with self._pool_lock:
            if self._pool is None:
                if self._closed:
                    raise ServingError("the service is closed")
                self._pool = WorkerPool(
                    self._index_dir,
                    workers=self.config.workers,
                    options={
                        "mmap": self.config.mmap,
                        "use_postings": self.config.use_postings,
                        "estimate_workers": self.config.estimate_workers,
                        "l1_entries": self.config.cache_entries,
                        "ttl_seconds": self.config.cache_ttl_seconds,
                    },
                    shared_cache_entries=self.config.shared_cache_entries,
                    ttl_seconds=self.config.cache_ttl_seconds,
                ).start()
            return self._pool

    def start_maintenance(self) -> Optional["IndexMaintainer"]:
        """Start background maintenance over a WAL-backed index directory.

        Idempotent; ``None`` when the service holds a live in-memory index
        or the directory carries no write-ahead log (``repro index log
        --init`` turns a directory into a maintained one).  Starting runs a
        synchronous recovery compaction first — any deltas a crashed
        predecessor durably logged are folded into a fresh published
        generation before this process serves a single query — then keeps
        compacting in the background; live registrations call
        ``maintainer.notify()`` so appended deltas are folded promptly.
        """
        if not self._wal_backed:
            return None
        from repro.maintenance import IndexMaintainer

        with self._maintenance_lock:
            if self._maintainer is None:
                if self._closed:
                    raise ServingError("the service is closed")
                self._maintainer = IndexMaintainer(
                    self._index_dir, wal=self._writer_wal()
                )
                self._maintainer.start()
            return self._maintainer

    def _writer_wal(self):
        """The single writer :class:`WriteAheadLog` of this process (lazy)."""
        from repro.maintenance import WriteAheadLog

        with self._maintenance_lock:
            if self._wal is None:
                self._wal = WriteAheadLog.attach(self._index_dir)
            return self._wal

    def register_table(
        self,
        source: Any,
        key_columns: "list[str] | tuple[str, ...]",
        value_columns: Optional["list[str] | tuple[str, ...]"] = None,
        *,
        name: Optional[str] = None,
        agg: Optional[str] = None,
        metadata: Optional[dict[str, Any]] = None,
    ) -> list[str]:
        """Stream a new table into the live index, without downtime.

        ``source`` is anything the pluggable source registry resolves
        (:func:`~repro.ingest.sources.open_source`): a
        :class:`~repro.ingest.reader.TableReader`, a plain
        :class:`~repro.relational.table.Table`, a path to a CSV/Parquet
        table file or an iterable of ``Table`` chunks; its candidates are
        built in one bounded-memory pass through
        the index engine's :meth:`~repro.engine.session.SketchEngine.
        ingest_table` and added under the registration lock (which
        serializes registrations; queries never block — each plans over a
        snapshot of the candidate set, so a concurrent query observes the
        index before, during, or after the registration, never a torn
        view of one candidate).  Every added candidate bumps
        :attr:`SketchIndex.generation`, which the cache fingerprints fold
        in — queries answered after registration can never be served from
        a pre-registration cache entry, and the answers are identical to a
        cold index built with the table included.  Returns the new
        candidate identifiers.

        Over a WAL-backed index directory the registration is *durable*:
        the built candidates are appended to the write-ahead log before
        anything else, so the table survives a crash at any later point.
        This is also what makes live registration legal under process
        execution — the workers pick the table up when the background
        compaction publishes the next generation (eventually consistent),
        whereas the thread path additionally applies it to the in-memory
        index immediately (read-your-write).  Process execution *without*
        a WAL still refuses: there would be no channel through which the
        workers' memory-mapped views could ever learn about the table.
        """
        if self._closed:
            raise ServingError("the service is closed")
        wal_backed = self._wal_backed
        if self.config.execution == "process" and not wal_backed:
            raise ServingError(
                "register_table is not supported under process execution "
                "without a write-ahead log: each worker holds its own "
                "memory-mapped view of the index directory; initialize "
                "maintenance (`repro index log --init`) so registrations "
                "are durably logged and compacted into new generations, or "
                "rebuild the index (repro index add/ingest) and restart "
                "the service instead"
            )
        index = self.ensure_ready()
        with self._register_lock:
            candidates = index.engine.ingest_table(
                source,
                key_columns,
                value_columns,
                name=name,
                agg=agg,
                metadata=metadata,
            )
            if wal_backed:
                from repro.maintenance import candidate_to_document

                registered_name = candidates[0].profile.table_name if candidates else name
                self._writer_wal().append(
                    "register_table",
                    registered_name or "",
                    [candidate_to_document(candidate) for candidate in candidates],
                )
                self.metrics.increment("deltas_logged")
            if self.config.execution != "process":
                for candidate in candidates:
                    index.add_prebuilt(candidate)
        maintainer = self._maintainer
        if wal_backed and maintainer is not None:
            maintainer.notify()
        self.metrics.increment("tables_registered")
        self.metrics.increment("candidates_registered", len(candidates))
        return [candidate.candidate_id for candidate in candidates]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query(self, query: AugmentationQuery) -> ServedResult:
        """Answer one query, serving from cache or coalescing when possible."""
        started = time.perf_counter()
        if self._closed:
            raise ServingError("the service is closed")
        index = self.ensure_ready()
        fingerprint = query_fingerprint(
            index.config, query, index_token=self._index_token
        )
        self.metrics.increment("queries")

        cached = self.cache.get(fingerprint)
        if cached is not None:
            return self._cache_hit(cached, fingerprint, started)
        cached = self._shared_cache_probe(fingerprint)
        if cached is not None:
            return self._cache_hit(cached, fingerprint, started)

        coalesced = False
        with self._lock:
            future = self._inflight.get(fingerprint)
            if future is None:
                # Re-check the cache under the lock: the in-flight entry is
                # removed just after its result is cached, so a request
                # landing in that window must not recompute.  The re-probe
                # is uncounted — one logical lookup, one hit or miss.
                cached = self.cache.get(fingerprint, record=False)
                if cached is None:
                    future = self._executor.submit(self._compute, fingerprint, query)
                    self._inflight[fingerprint] = future
            else:
                coalesced = True
                self.metrics.increment("coalesced")
        if future is None:
            return self._cache_hit(cached, fingerprint, started)
        self.metrics.increment("cache_misses")
        try:
            results, plan_stats = future.result()
        finally:
            with self._lock:
                if self._inflight.get(fingerprint) is future:
                    del self._inflight[fingerprint]
        elapsed = time.perf_counter() - started
        self.metrics.observe("query_coalesced" if coalesced else "query_cold", elapsed)
        return ServedResult(
            results=_caller_owned(results),
            fingerprint=fingerprint,
            coalesced=coalesced,
            elapsed_seconds=elapsed,
            plan_stats=plan_stats,
        )

    def _shared_cache_probe(
        self, fingerprint: str
    ) -> Optional[list[AugmentationResult]]:
        """L2 lookup in the pool's cross-worker cache (process mode only).

        A hit — typically a result evicted or expired from the parent's L1
        but still resident in the shared cache because some worker computed
        it — is promoted back into the L1 and counted separately.  The pool
        is never *started* just to probe: before the first computed query
        the shared cache cannot contain anything.
        """
        pool = self._pool
        if pool is None or pool.shared_cache is None:
            return None
        cached = pool.shared_cache.get(fingerprint)
        if cached is None:
            return None
        self.cache.put(fingerprint, cached)
        self.metrics.increment("shared_cache_hits")
        return cached

    def _cache_hit(
        self, results: list[AugmentationResult], fingerprint: str, started: float
    ) -> ServedResult:
        elapsed = time.perf_counter() - started
        self.metrics.increment("cache_hits")
        self.metrics.observe("query_cached", elapsed)
        return ServedResult(
            results=_caller_owned(results),
            fingerprint=fingerprint,
            cache_hit=True,
            elapsed_seconds=elapsed,
        )

    def submit(self, query: AugmentationQuery) -> "Future[ServedResult]":
        """Asynchronous :meth:`query`: returns a future resolving to the result.

        Dispatches on a dedicated thread rather than the query pool: the
        dispatching side only *waits* (on the cache, an in-flight future or
        a pool slot), so nesting it into the bounded pool could deadlock.
        """
        future: "Future[ServedResult]" = Future()

        def run() -> None:
            if not future.set_running_or_notify_cancel():
                return
            try:
                future.set_result(self.query(query))
            except BaseException as exc:  # propagate everything to the waiter
                future.set_exception(exc)

        threading.Thread(target=run, name="discovery-dispatch", daemon=True).start()
        return future

    def _compute(
        self, fingerprint: str, query: AugmentationQuery
    ) -> tuple[list[AugmentationResult], dict[str, int]]:
        """Run one planned query and populate the cache (executor thread).

        Under thread execution the computation happens right here; under
        process execution it is routed to the worker pool (started on first
        use), which returns the identical ``(results, plan_stats)`` pair —
        the worker runs the same planner code against its own memory-mapped
        view of the index.
        """
        if self.config.execution == "process":
            results, plan_stats, source = self.start_workers().execute(
                fingerprint, query
            )
            self.metrics.increment("computed")
            self.metrics.increment(f"worker_served_{source}")
        else:
            index = self.ensure_ready()
            if len(index) == 0:
                # Match SketchIndex.query's contract for empty indexes.
                index.query(query)
            planner = self.planner()
            # The engine's identity-keyed sketch memos can never hit here —
            # each request carries its own Table object — so bypass them
            # rather than pinning dead request tables; the result cache
            # (content-keyed by fingerprint) deduplicates repeated queries.
            plan = planner.plan(
                index.candidates,
                query,
                use_cache=False,
                postings=index.postings if self.config.use_postings else None,
            )
            results = planner.execute(
                plan, query, max_workers=self.config.estimate_workers
            )
            self.metrics.increment("computed")
            plan_stats = plan.stats()
        # Aggregate planner counters: every computed query contributes its
        # prune/probe statistics, surfaced per service via stats() and the
        # HTTP GET /metrics endpoint as plan_<counter> totals.
        for name, value in plan_stats.items():
            self.metrics.increment(f"plan_{name}", value)
        self.cache.put(fingerprint, results)
        return results, plan_stats

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """Service counters, cache stats and latency histograms (JSON-able)."""
        with self._lock:
            inflight = len(self._inflight)
        document = {
            "index_loaded": self.index_loaded,
            "index_candidates": len(self._index) if self._index is not None else None,
            "workers": self.config.workers,
            "execution": self.config.execution,
            "in_flight": inflight,
            "cache": self.cache.stats(),
            **self.metrics.snapshot(),
        }
        with self._pool_lock:
            pool = self._pool
        if pool is not None:
            document["worker_pool"] = pool.stats()
        with self._maintenance_lock:
            maintainer = self._maintainer
        if maintainer is not None:
            document["maintenance"] = maintainer.stats()
        elif self._wal_backed:
            publication = read_publication(self._index_dir)
            document["maintenance"] = {
                "generation": publication["generation"] if publication else 0,
                "applied_sequence": (
                    publication["applied_sequence"] if publication else 0
                ),
            }
        return document

    def close(self) -> None:
        """Shut down the query pool; subsequent queries raise ``ServingError``."""
        self._closed = True
        self._executor.shutdown(wait=True)
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
        with self._maintenance_lock:
            maintainer, self._maintainer = self._maintainer, None
            wal, self._wal = self._wal, None
        if maintainer is not None:
            maintainer.close()
        if wal is not None:
            wal.close()

    def __enter__(self) -> "DiscoveryService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
