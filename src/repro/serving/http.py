"""Stdlib HTTP front end for the :class:`~repro.serving.service.DiscoveryService`.

A :class:`~http.server.ThreadingHTTPServer` exposing three endpoints:

``POST /query``
    Evaluate an augmentation query.  The JSON body carries the base table
    inline plus the query parameters::

        {
          "table": {"name": "base", "columns": {"key": [...], "target": [...]}},
          "key_column": "key",
          "target_column": "target",
          "top_k": 10,                # optional, AugmentationQuery defaults
          "min_containment": 0.0,     # optional
          "min_join_size": 16         # optional
        }

    The response is ``{"results": [...], "cache_hit": ..., "coalesced":
    ..., "fingerprint": ...}`` where each result is the JSON form of an
    :class:`~repro.discovery.query.AugmentationResult` — byte-identical to
    serializing the in-process ``SketchIndex.query`` answer.

``GET /healthz``
    Liveness: ``{"status": "ok", "index_loaded": ...}``.  Cheap by design —
    it never forces a lazy index load.

``GET /metrics``
    JSON counters and latency histograms per endpoint, plus the service's
    own stats (cache, coalescing, planner latencies).

Client errors (bad JSON, unknown/wrong-typed fields, bad column names)
return 400 with ``{"error": ...}``; faults in the served index (missing or
corrupt directory, empty index) and unexpected failures return 500.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.discovery.query import AugmentationQuery, AugmentationResult
from repro.exceptions import DiscoveryError, ReproError, ServingError, StoreError
from repro.relational.dtypes import DType
from repro.relational.table import Table
from repro.serving.metrics import MetricsRegistry
from repro.serving.service import DiscoveryService, ServedResult

__all__ = ["DiscoveryHTTPServer", "serve", "result_to_dict"]

#: Largest accepted /query request body, a guard against unbounded reads.
MAX_BODY_BYTES = 64 * 1024 * 1024

_QUERY_FIELDS = ("key_column", "target_column")
_OPTIONAL_QUERY_FIELDS = ("top_k", "min_containment", "min_join_size")


def result_to_dict(result: AugmentationResult) -> dict[str, Any]:
    """JSON form of one result (shared by the HTTP layer and the CLI)."""
    return asdict(result)


def _table_from_document(document: Any) -> Table:
    if not isinstance(document, dict) or not isinstance(document.get("columns"), dict):
        raise ServingError(
            'the "table" field must be an object with a "columns" mapping'
        )
    dtypes = None
    if document.get("dtypes") is not None:
        try:
            dtypes = {
                name: DType(value) for name, value in document["dtypes"].items()
            }
        except (ValueError, AttributeError) as exc:
            raise ServingError(f"unknown dtype in table document: {exc}") from exc
    return Table.from_dict(
        document["columns"], name=str(document.get("name", "")), dtypes=dtypes
    )


def parse_query_document(document: Any) -> AugmentationQuery:
    """Build an :class:`AugmentationQuery` from a ``POST /query`` JSON body."""
    if not isinstance(document, dict):
        raise ServingError("the query body must be a JSON object")
    known = {"table", *_QUERY_FIELDS, *_OPTIONAL_QUERY_FIELDS}
    unknown = sorted(set(document) - known)
    if unknown:
        raise ServingError(
            f"unknown query fields: {', '.join(unknown)}; "
            f"accepted fields: {', '.join(sorted(known))}"
        )
    missing = sorted(
        name for name in ("table", *_QUERY_FIELDS) if name not in document
    )
    if missing:
        raise ServingError(f"missing query fields: {', '.join(missing)}")
    options = {}
    for name, kind in (
        ("top_k", int),
        ("min_join_size", int),
        ("min_containment", float),
    ):
        if name not in document:
            continue
        value = document[name]
        # bool is an int subclass; "top_k": true is a client mistake.
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ServingError(
                f"query field {name!r} must be a number, "
                f"got {type(value).__name__}"
            )
        if kind is int and value != int(value):
            raise ServingError(f"query field {name!r} must be an integer, got {value}")
        options[name] = kind(value)
    try:
        return AugmentationQuery(
            table=_table_from_document(document["table"]),
            key_column=str(document["key_column"]),
            target_column=str(document["target_column"]),
            **options,
        )
    except TypeError as exc:
        raise ServingError(f"malformed query document: {exc}") from exc


def served_result_to_document(served: ServedResult) -> dict[str, Any]:
    return {
        "results": [result_to_dict(result) for result in served.results],
        "fingerprint": served.fingerprint,
        "cache_hit": served.cache_hit,
        "coalesced": served.coalesced,
        "elapsed_seconds": served.elapsed_seconds,
        "plan": served.plan_stats,
    }


class _DiscoveryRequestHandler(BaseHTTPRequestHandler):
    server: "DiscoveryHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        if self.path == "/healthz":
            self._timed("healthz", self._handle_healthz)
        elif self.path == "/metrics":
            self._timed("metrics", self._handle_metrics)
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802
        if self.path == "/query":
            self._timed("query", self._handle_query)
        else:
            # The request body is never read on this path; the connection
            # must close or the leftover bytes desynchronize keep-alive.
            self.close_connection = True
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    # ------------------------------------------------------------------ #
    # Handlers (return (status, response document); _timed sends it)
    # ------------------------------------------------------------------ #
    def _handle_healthz(self) -> tuple[int, dict[str, Any]]:
        service = self.server.service
        document = {
            "status": "ok",
            "index_loaded": service.index_loaded,
            "workers": service.config.workers,
            "execution": service.config.execution,
        }
        # Maintained directories carry a publication pointer; reporting it
        # here stays cheap (one tiny file read, never an index load).
        generation = service.published_generation()
        if generation is not None:
            document["generation"] = generation
        return 200, document

    def _handle_metrics(self) -> tuple[int, dict[str, Any]]:
        return 200, {
            "http": self.server.metrics.snapshot(),
            "service": self.server.service.stats(),
        }

    def _handle_query(self) -> tuple[int, dict[str, Any]]:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            # Body length unknowable, so it cannot be drained: the
            # connection must close to keep the stream in sync.
            self.close_connection = True
            return 400, {"error": "bad Content-Length header"}
        if length <= 0:
            # No declared body to drain — but a chunked body may still be on
            # the wire (we never read it), so the connection must close.
            self.close_connection = True
            return 400, {"error": "a JSON request body with Content-Length is required"}
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # refuse to drain an oversize body
            return 413, {"error": f"request body exceeds {MAX_BODY_BYTES} bytes"}
        raw = self.rfile.read(length)
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"request body is not JSON: {exc}"}
        try:
            self.server.service.ensure_ready()
        except ReproError as exc:
            # A missing/corrupt index is a server fault, not a client error.
            return 500, {"error": f"index unavailable: {exc}"}
        try:
            query = parse_query_document(document)
        except ServingError as exc:
            return 400, {"error": str(exc)}
        try:
            served = self.server.service.query(query)
        except ServingError as exc:
            # Past parsing, a ServingError is server state (e.g. the service
            # is shutting down), not a malformed request.
            return 503, {"error": str(exc)}
        except (StoreError, DiscoveryError) as exc:
            # Faults in the served index itself (a corrupt sketch store
            # surfacing from a lazily-read mmap, an empty index): the client
            # did nothing wrong, so these are 5xx.
            return 500, {"error": f"index unavailable: {exc}"}
        except ReproError as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            return 500, {"error": f"internal error: {exc}"}
        return 200, served_result_to_document(served)

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _timed(self, endpoint: str, handler) -> None:
        """Run a handler, record its metrics, then send the response.

        Metrics are updated *before* the response bytes go out, so a client
        that reads ``/metrics`` right after a response always sees that
        request counted.
        """
        metrics = self.server.metrics
        metrics.increment(f"{endpoint}_requests")
        started = time.perf_counter()
        try:
            status, document = handler()
        except Exception:
            metrics.increment(f"{endpoint}_errors")
            metrics.observe(endpoint, time.perf_counter() - started)
            raise
        metrics.observe(endpoint, time.perf_counter() - started)
        if status >= 400:
            metrics.increment(f"{endpoint}_errors")
        self._send_json(status, document)

    def _send_json(self, status: int, document: dict[str, Any]) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:  # quiet by default; opt in via serve(verbose=True)
            super().log_message(format, *args)


class DiscoveryHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`DiscoveryService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: DiscoveryService,
        *,
        verbose: bool = False,
    ):
        super().__init__(address, _DiscoveryRequestHandler)
        self.service = service
        self.metrics = MetricsRegistry()
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(
    service: DiscoveryService,
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    verbose: bool = False,
) -> DiscoveryHTTPServer:
    """Bind a :class:`DiscoveryHTTPServer`; the caller runs ``serve_forever``.

    ``port=0`` binds an ephemeral port (see ``server.server_address``),
    which is what the tests and the serving benchmark use.
    """
    if not isinstance(service, DiscoveryService):
        raise ServingError(
            f"serve() needs a DiscoveryService, got {type(service).__name__}"
        )
    return DiscoveryHTTPServer((host, port), service, verbose=verbose)
