"""LRU + TTL result cache for the discovery query service.

A bounded :class:`ResultCache` maps query fingerprints to result lists.
Entries are evicted least-recently-used once ``max_entries`` is reached and
expire ``ttl_seconds`` after insertion (a TTL of ``None`` disables expiry).
Hit/miss/eviction/expiry counters are exposed for the ``/metrics`` endpoint
and the serving benchmark.

The cache is thread-safe; the clock is injectable so TTL behaviour is
testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Optional

from repro.exceptions import ServingError

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded, thread-safe LRU cache with per-entry TTL expiry.

    Parameters
    ----------
    max_entries:
        Maximum number of cached results (``0`` disables caching entirely:
        every ``get`` misses and ``put`` is a no-op).
    ttl_seconds:
        Entry lifetime from insertion; ``None`` means entries never expire.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        max_entries: int = 256,
        ttl_seconds: Optional[float] = 300.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_entries < 0:
            raise ServingError(f"max_entries must be non-negative, got {max_entries}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ServingError(f"ttl_seconds must be positive, got {ttl_seconds}")
        self._max_entries = int(max_entries)
        self._ttl = ttl_seconds
        self._clock = clock
        self._entries: "OrderedDict[str, tuple[float, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str, *, record: bool = True) -> Optional[Any]:
        """The cached value for ``key``, or ``None`` on miss/expiry.

        ``record=False`` makes the lookup invisible to the hit/miss
        counters (expiry is still enforced and counted): used for re-probes
        of one logical request, so a cold query counts as exactly one miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                if record:
                    self._misses += 1
                return None
            inserted_at, value = entry
            if self._ttl is not None and self._clock() - inserted_at >= self._ttl:
                del self._entries[key]
                self._expirations += 1
                if record:
                    self._misses += 1
                return None
            self._entries.move_to_end(key)
            if record:
                self._hits += 1
            return value

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU entry when full."""
        if self._max_entries == 0:
            return
        with self._lock:
            self._entries[key] = (self._clock(), value)
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate(self, key: Optional[str] = None) -> None:
        """Drop one entry (or every entry when ``key`` is omitted)."""
        with self._lock:
            if key is None:
                self._entries.clear()
            else:
                self._entries.pop(key, None)

    def stats(self) -> dict[str, Any]:
        """Counters and sizing of the cache, for ``/metrics`` and benchmarks."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "expirations": self._expirations,
                "size": len(self._entries),
                "max_entries": self._max_entries,
                "ttl_seconds": self._ttl,
            }
