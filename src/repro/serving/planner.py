"""Query planning for discovery queries.

The planner cheapens an :class:`~repro.discovery.query.AugmentationQuery`
before any MI estimation is spent, without ever changing the answer:

* **containment pre-filter** — candidates whose KMV key sketch overlaps the
  base table's keys below ``min_containment`` are dropped (the joinability
  test the index has always applied, surfaced as an explicit plan stage with
  counters);
* **join-size pruning** — an MI estimate on a sketch join smaller than
  ``min_join_size`` is refused downstream anyway, so candidates that
  *provably* cannot reach it are dropped up front.  The sketch join pairs
  each base tuple with at most one candidate tuple, giving two sound upper
  bounds computed without joining: ``len(base_sketch)`` (short-circuits the
  whole query) and ``len(candidate_sketch) * max-multiplicity-of-a-base-key``
  (per candidate, O(1) after one scan of the base sketch);
* **posting-list candidate generation** — when a
  :class:`~repro.postings.PostingsIndex` is supplied and the query carries a
  positive ``min_containment``, the planner probes the posting lists with
  the base table's retained KMV keys and only evaluates containment for
  candidates sharing at least one retained key.  A candidate sharing none
  has containment exactly 0 and would have been pruned anyway, so the probe
  result is a provable superset of the containment survivors;
* **bounded top-k ranking** — surviving estimates are ranked with
  :func:`~repro.discovery.ranking.top_k_results`' bounded heap, so ranking
  never sorts more candidates than the answer needs.

Every prune only removes candidates the unplanned path would also have
discarded, so :meth:`QueryPlanner.execute` returns results byte-identical to
the historical ``SketchIndex.query`` implementation (same IDs, scores and
order) — asserted by the serving benchmark.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.discovery.query import AugmentationQuery, AugmentationResult
from repro.discovery.ranking import top_k_results
from repro.engine.session import SketchEngine
from repro.exceptions import InsufficientSamplesError
from repro.sketches.base import Sketch
from repro.sketches.kmv import KMVSketch

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.discovery.index import IndexedCandidate
    from repro.postings import PostingsIndex

__all__ = ["QueryPlanner", "QueryPlan", "PlannedCandidate"]


@dataclass(frozen=True)
class PlannedCandidate:
    """One candidate that survived planning, with its containment estimate."""

    candidate: "IndexedCandidate"
    containment: float


@dataclass
class QueryPlan:
    """The pruned candidate set for one query, with planning counters."""

    base_sketch: Sketch
    base_kmv: KMVSketch
    survivors: list[PlannedCandidate] = field(default_factory=list)
    total_candidates: int = 0
    pruned_containment: int = 0
    pruned_join_floor: int = 0
    skipped_by_postings: int = 0
    postings_probed: int = 0

    @property
    def pruned(self) -> int:
        """Total candidates removed before MI estimation."""
        return self.pruned_containment + self.pruned_join_floor + self.skipped_by_postings

    def stats(self) -> dict[str, int]:
        return {
            "total_candidates": self.total_candidates,
            "survivors": len(self.survivors),
            "pruned_containment": self.pruned_containment,
            "pruned_join_floor": self.pruned_join_floor,
            "skipped_by_postings": self.skipped_by_postings,
            "postings_probed": self.postings_probed,
        }


class QueryPlanner:
    """Plans and executes discovery queries for one engine session."""

    def __init__(self, engine: SketchEngine):
        self.engine = engine

    def plan(
        self,
        candidates: Iterable["IndexedCandidate"],
        query: AugmentationQuery,
        *,
        use_cache: bool = True,
        postings: Optional["PostingsIndex"] = None,
    ) -> QueryPlan:
        """Sketch the base side and prune the candidate set.

        All prunes are conservative: a dropped candidate would either have
        failed the containment filter or raised
        :class:`~repro.exceptions.InsufficientSamplesError` during
        estimation, so execution over the survivors answers the query
        exactly.

        ``postings`` switches candidate generation from a lake scan to a
        posting-list probe: candidates sharing no retained KMV key with the
        base table are skipped without a containment evaluation (counted as
        ``skipped_by_postings``).  The probe only applies when
        ``query.min_containment > 0`` — at a zero threshold even
        containment-0 candidates survive the filter, so every candidate must
        be evaluated.

        ``use_cache=False`` bypasses the engine's identity-keyed base-sketch
        and key-sketch memos — the right choice when every query carries a
        freshly-built table (the HTTP service), where those memos can never
        hit and would only pin dead request tables in memory.
        """
        base_sketch = self.engine.sketch_base(
            query.table, query.key_column, query.target_column, use_cache=use_cache
        )
        base_kmv = self.engine.key_sketch(
            query.table, query.key_column, use_cache=use_cache
        )
        plan = QueryPlan(base_sketch=base_sketch, base_kmv=base_kmv)

        candidates = list(candidates)
        plan.total_candidates = len(candidates)
        if len(base_sketch) < query.min_join_size:
            # No join against this base sketch can reach the floor: every
            # candidate would be skipped after a pointless join.
            plan.pruned_join_floor = len(candidates)
            return plan

        matched: Optional[set[str]] = None
        if postings is not None and query.min_containment > 0:
            base_units = base_kmv.hashes
            plan.postings_probed = len(base_units)
            matched = postings.probe(base_units)

        # Each base tuple joins with at most one candidate tuple, so a
        # candidate's join size is bounded by its own tuple count times the
        # heaviest base key multiplicity.
        max_key_multiplicity = max(
            Counter(base_sketch.key_ids).values(), default=0
        )
        for candidate in candidates:
            if matched is not None and candidate.candidate_id not in matched:
                # No shared retained key: containment is exactly 0, below
                # any positive threshold.  Skipped without evaluation.
                plan.skipped_by_postings += 1
                continue
            containment = base_kmv.containment_estimate(candidate.key_kmv)
            if containment < query.min_containment:
                plan.pruned_containment += 1
                continue
            if len(candidate.sketch) * max_key_multiplicity < query.min_join_size:
                plan.pruned_join_floor += 1
                continue
            plan.survivors.append(PlannedCandidate(candidate, containment))
        return plan

    def execute(
        self,
        plan: QueryPlan,
        query: AugmentationQuery,
        *,
        max_workers: Optional[int] = None,
    ) -> list[AugmentationResult]:
        """Estimate MI for the plan's survivors and rank the top-k."""
        estimates = self.engine.estimate_many(
            plan.base_sketch,
            [planned.candidate.sketch for planned in plan.survivors],
            min_join_size=query.min_join_size,
            max_workers=max_workers,
            return_exceptions=True,
        )
        results: list[AugmentationResult] = []
        for planned, outcome in zip(plan.survivors, estimates):
            if not outcome.ok:
                # Too small a sketch join: the candidate is skipped, exactly
                # as in per-call estimation.  Anything else is a real error.
                if isinstance(outcome.error, InsufficientSamplesError):
                    continue
                raise outcome.error
            candidate = planned.candidate
            estimate = outcome.estimate
            results.append(
                AugmentationResult(
                    candidate_id=candidate.candidate_id,
                    table_name=candidate.profile.table_name,
                    key_column=candidate.profile.key_column,
                    value_column=candidate.profile.value_column,
                    aggregate=candidate.aggregate,
                    estimator=estimate.estimator,
                    mi_estimate=estimate.mi,
                    sketch_join_size=estimate.join_size,
                    containment=planned.containment,
                    value_dtype=candidate.profile.value_dtype.value,
                    metadata=dict(candidate.metadata),
                )
            )
        return top_k_results(results, query.top_k)

    def run(
        self,
        candidates: Iterable["IndexedCandidate"],
        query: AugmentationQuery,
        *,
        max_workers: Optional[int] = None,
        postings: Optional["PostingsIndex"] = None,
    ) -> list[AugmentationResult]:
        """Plan and execute in one call (the in-process query path)."""
        return self.execute(
            self.plan(candidates, query, postings=postings),
            query,
            max_workers=max_workers,
        )
