"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while still letting programming errors (``TypeError`` from misuse of the
Python API, ``KeyboardInterrupt``, ...) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "ColumnNotFoundError",
    "TypeInferenceError",
    "AggregationError",
    "JoinError",
    "SketchError",
    "IncompatibleSketchError",
    "StoreError",
    "EstimationError",
    "InsufficientSamplesError",
    "SyntheticDataError",
    "DiscoveryError",
    "EngineError",
    "EngineConfigError",
    "ServingError",
    "WorkerCrashError",
    "IngestError",
    "PostingsError",
    "MaintenanceError",
    "WALError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(ReproError):
    """A table or column was constructed with an inconsistent schema."""


class ColumnNotFoundError(SchemaError, KeyError):
    """A referenced column name does not exist in the table."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = tuple(available)
        message = f"column {name!r} not found"
        if self.available:
            message += f"; available columns: {', '.join(self.available)}"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError.__str__ adds quotes around args[0]
        return self.args[0]


class TypeInferenceError(ReproError):
    """Raw values could not be coerced into a supported column type."""


class AggregationError(ReproError):
    """An aggregation function could not be applied to a group of values."""


class JoinError(ReproError):
    """A join between two tables could not be performed."""


class SketchError(ReproError):
    """A sketch could not be built or combined."""


class IncompatibleSketchError(SketchError):
    """Two sketches cannot be joined (different methods, seeds or sides)."""


class StoreError(SketchError):
    """A columnar sketch store file is malformed, corrupted or unsupported."""


class EstimationError(ReproError):
    """A mutual-information or entropy estimate could not be computed."""


class InsufficientSamplesError(EstimationError):
    """The sample handed to an estimator is too small to be meaningful."""

    def __init__(self, required: int, actual: int, context: str = ""):
        self.required = required
        self.actual = actual
        suffix = f" ({context})" if context else ""
        super().__init__(
            f"estimator requires at least {required} samples, got {actual}{suffix}"
        )


class SyntheticDataError(ReproError):
    """Synthetic data could not be generated for the requested parameters."""


class DiscoveryError(ReproError):
    """A data-discovery query could not be evaluated."""


class EngineError(ReproError):
    """A sketch-engine session operation failed."""


class EngineConfigError(EngineError):
    """An engine configuration is invalid or could not be deserialized."""


class ServingError(ReproError):
    """The discovery query service was misconfigured or misused."""


class WorkerCrashError(ServingError):
    """A query could not be completed because pool workers kept crashing."""


class IngestError(ReproError):
    """A streaming-ingestion source or sketcher was misconfigured or misused."""


class PostingsError(ReproError):
    """A posting index is malformed, incompatible or was misused."""


class MaintenanceError(ReproError):
    """An index-maintenance operation (compaction, job tracking) failed."""


class WALError(MaintenanceError):
    """A write-ahead delta log is malformed, incompatible or was misused."""
