"""Synthetic benchmark with analytically known mutual information.

Section V-A of the paper designs a data-generation process where the
post-join target ``Y`` and feature ``X`` are drawn from analytic
distributions (so their true MI is known in closed or open form) and then
*decomposed* into two joinable tables.  This package implements that
process:

* :mod:`repro.synthetic.trinomial` — the ``Trinomial`` generator
  (``Mult(m, <p1, p2>)``) with MI-targeted parameter selection and exact MI
  via the open-form trinomial entropy;
* :mod:`repro.synthetic.cdunif` — the ``CDUnif`` discrete/continuous
  generator of Gao et al. (2017) with closed-form MI;
* :mod:`repro.synthetic.decompose` — the ``KeyInd`` (one-to-one) and
  ``KeyDep`` (many-to-one, key equal to the feature value) decompositions
  into ``T_train`` and ``T_cand``;
* :mod:`repro.synthetic.benchmark` — dataset bundles and suite generators
  used by the experiment runners.
"""

from repro.synthetic.trinomial import (
    TrinomialParameters,
    choose_trinomial_parameters,
    trinomial_true_mi,
    binomial_entropy,
    trinomial_joint_entropy,
    sample_trinomial,
)
from repro.synthetic.cdunif import cdunif_true_mi, sample_cdunif
from repro.synthetic.decompose import KeyGeneration, decompose_into_tables
from repro.synthetic.benchmark import (
    SyntheticDataset,
    generate_trinomial_dataset,
    generate_cdunif_dataset,
    generate_dataset,
    generate_benchmark_suite,
)

__all__ = [
    "TrinomialParameters",
    "choose_trinomial_parameters",
    "trinomial_true_mi",
    "binomial_entropy",
    "trinomial_joint_entropy",
    "sample_trinomial",
    "cdunif_true_mi",
    "sample_cdunif",
    "KeyGeneration",
    "decompose_into_tables",
    "SyntheticDataset",
    "generate_trinomial_dataset",
    "generate_cdunif_dataset",
    "generate_dataset",
    "generate_benchmark_suite",
]
