"""Decomposition of a generated ``(X, Y)`` sample into joinable tables.

Section V-A: after drawing the post-join target ``Y`` and feature ``X`` from
an analytic distribution, the pair is decomposed into a base table
``T_train[K_Y, Y]`` and a candidate table ``T_cand[K_X, X]`` whose join
recovers exactly the generated pairs.  Two key-generation processes are
used:

* **KeyInd** — sequential unique keys, one per row: a one-to-one
  relationship with maximum independence between the join key and the
  feature values.
* **KeyDep** — the join key *is* the feature value: all rows sharing a
  feature value share a key, a many-to-one relationship with maximal
  dependence between key and feature (only applicable when ``X`` is
  discrete).
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Sequence

import numpy as np

from repro.exceptions import SyntheticDataError
from repro.relational.column import Column
from repro.relational.dtypes import DType
from repro.relational.table import Table

__all__ = ["KeyGeneration", "decompose_into_tables"]


class KeyGeneration(enum.Enum):
    """Join-key generation process used when decomposing ``(X, Y)`` into tables."""

    KEY_IND = "KeyInd"
    KEY_DEP = "KeyDep"

    @classmethod
    def from_name(cls, name: "str | KeyGeneration") -> "KeyGeneration":
        """Resolve a key-generation process from its name (case-insensitive)."""
        if isinstance(name, cls):
            return name
        normalized = str(name).strip().lower()
        for member in cls:
            if member.value.lower() == normalized or member.name.lower() == normalized:
                return member
        raise SyntheticDataError(f"unknown key generation process: {name!r}")


def _default_key_formatter(value) -> object:
    return value


def decompose_into_tables(
    x_values: Sequence,
    y_values: Sequence,
    key_generation: "str | KeyGeneration" = KeyGeneration.KEY_IND,
    *,
    key_formatter: Optional[Callable[[object], object]] = None,
    x_dtype: Optional[DType] = None,
    y_dtype: Optional[DType] = None,
) -> tuple[Table, Table]:
    """Decompose post-join ``(X, Y)`` pairs into ``T_train`` and ``T_cand``.

    Parameters
    ----------
    x_values, y_values:
        Aligned feature / target values of the (virtual) full join.
    key_generation:
        ``KeyInd`` (unique sequential keys) or ``KeyDep`` (key equals the
        feature value; requires a discrete feature).
    key_formatter:
        Optional transformation applied to generated key values (e.g.
        ``lambda k: f"key-{k}"`` to produce string keys like real data).
    x_dtype, y_dtype:
        Optional explicit column types.

    Returns
    -------
    (train_table, cand_table):
        ``T_train`` with columns ``key`` and ``target``; ``T_cand`` with
        columns ``key`` and ``feature``.  The left join of the two on
        ``key`` (after aggregating ``T_cand``) recovers exactly the input
        pairs.
    """
    if len(x_values) != len(y_values):
        raise SyntheticDataError("x_values and y_values must be aligned")
    if len(x_values) == 0:
        raise SyntheticDataError("cannot decompose an empty sample")
    key_generation = KeyGeneration.from_name(key_generation)
    formatter = key_formatter or _default_key_formatter

    x_list = [_to_python_scalar(value) for value in x_values]
    y_list = [_to_python_scalar(value) for value in y_values]

    if key_generation is KeyGeneration.KEY_IND:
        train_keys = [formatter(index) for index in range(len(y_list))]
        cand_keys = list(train_keys)
        cand_features = x_list
    else:
        if any(isinstance(value, float) and not float(value).is_integer() for value in x_list):
            raise SyntheticDataError(
                "KeyDep requires a discrete feature: continuous values would "
                "produce unique join keys and degenerate to KeyInd"
            )
        train_keys = [formatter(value) for value in x_list]
        cand_keys = list(train_keys)
        cand_features = x_list

    train_table = Table(
        [
            Column("key", train_keys),
            Column("target", y_list, dtype=y_dtype),
        ],
        name="train",
    )
    cand_table = Table(
        [
            Column("key", cand_keys),
            Column("feature", cand_features, dtype=x_dtype),
        ],
        name="candidate",
    )
    return train_table, cand_table


def _to_python_scalar(value):
    """Convert numpy scalars to plain Python scalars for the Table layer."""
    if isinstance(value, np.generic):
        return value.item()
    return value
