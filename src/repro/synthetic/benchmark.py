"""Synthetic dataset bundles used by the experiment runners.

A :class:`SyntheticDataset` packages everything an experiment needs: the
decomposed tables, the post-join ground-truth ``(X, Y)`` sample, the analytic
MI, and the generation parameters.  The generator functions mirror the two
distributions and two key-generation processes of Section V-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

import numpy as np

from repro.exceptions import SyntheticDataError
from repro.relational.table import Table
from repro.synthetic.cdunif import cdunif_true_mi, sample_cdunif
from repro.synthetic.decompose import KeyGeneration, decompose_into_tables
from repro.synthetic.trinomial import (
    TrinomialParameters,
    choose_trinomial_parameters,
    sample_trinomial,
)
from repro.util.rng import RandomState, ensure_rng, spawn_rng

__all__ = [
    "SyntheticDataset",
    "generate_trinomial_dataset",
    "generate_cdunif_dataset",
    "generate_dataset",
    "generate_benchmark_suite",
    "redecompose",
]


@dataclass
class SyntheticDataset:
    """A synthetic dataset with analytically known post-join MI.

    Attributes
    ----------
    distribution:
        ``"trinomial"`` or ``"cdunif"``.
    m:
        Distribution size parameter (number of trials / distinct values).
    true_mi:
        Analytic MI (nats) between ``X`` and ``Y`` after the join.
    key_generation:
        The key decomposition used (:class:`KeyGeneration`).
    train_table:
        ``T_train[key, target]`` — the base table.
    cand_table:
        ``T_cand[key, feature]`` — the candidate table.
    x / y:
        The post-join feature / target values (ground-truth full join).
    params:
        Extra generation parameters (e.g. the trinomial ``p1``/``p2``).
    """

    distribution: str
    m: int
    true_mi: float
    key_generation: KeyGeneration
    train_table: Table
    cand_table: Table
    x: np.ndarray
    y: np.ndarray
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of rows of the base table (and of the full join)."""
        return len(self.y)

    def describe(self) -> dict[str, Any]:
        """Small dict used in experiment reports."""
        return {
            "distribution": self.distribution,
            "m": self.m,
            "size": self.size,
            "true_mi": self.true_mi,
            "key_generation": self.key_generation.value,
            **self.params,
        }


def generate_trinomial_dataset(
    m: int,
    size: int = 10_000,
    *,
    target_mi: Optional[float] = None,
    key_generation: "str | KeyGeneration" = KeyGeneration.KEY_IND,
    random_state: RandomState = None,
) -> SyntheticDataset:
    """Generate a Trinomial dataset decomposed into joinable tables."""
    rng = ensure_rng(random_state)
    params: TrinomialParameters = choose_trinomial_parameters(
        m, target_mi=target_mi, random_state=rng
    )
    x, y = sample_trinomial(m, params.p1, params.p2, size, random_state=rng)
    key_generation = KeyGeneration.from_name(key_generation)
    train_table, cand_table = decompose_into_tables(x, y, key_generation)
    return SyntheticDataset(
        distribution="trinomial",
        m=m,
        true_mi=params.true_mi,
        key_generation=key_generation,
        train_table=train_table,
        cand_table=cand_table,
        x=np.asarray(x),
        y=np.asarray(y),
        params={"p1": params.p1, "p2": params.p2, "target_mi": params.target_mi},
    )


def generate_cdunif_dataset(
    m: int,
    size: int = 10_000,
    *,
    key_generation: "str | KeyGeneration" = KeyGeneration.KEY_IND,
    random_state: RandomState = None,
) -> SyntheticDataset:
    """Generate a CDUnif dataset decomposed into joinable tables.

    ``KeyDep`` uses the discrete component ``X`` as the join key, matching
    the paper (KeyDep is only applicable to discrete features, and in CDUnif
    the feature ``X`` is the discrete side).
    """
    rng = ensure_rng(random_state)
    x, y = sample_cdunif(m, size, random_state=rng)
    key_generation = KeyGeneration.from_name(key_generation)
    train_table, cand_table = decompose_into_tables(x, y, key_generation)
    return SyntheticDataset(
        distribution="cdunif",
        m=m,
        true_mi=cdunif_true_mi(m),
        key_generation=key_generation,
        train_table=train_table,
        cand_table=cand_table,
        x=np.asarray(x),
        y=np.asarray(y),
        params={},
    )


def redecompose(
    dataset: SyntheticDataset,
    key_generation: "str | KeyGeneration",
) -> SyntheticDataset:
    """Re-decompose an existing dataset's ``(X, Y)`` sample with another key process.

    Useful for *paired* comparisons of ``KeyInd`` vs ``KeyDep`` (as in
    Figures 2 and 3): both variants share exactly the same post-join sample
    and true MI, so any difference in sketch estimates is attributable to the
    join-key distribution alone.
    """
    key_generation = KeyGeneration.from_name(key_generation)
    train_table, cand_table = decompose_into_tables(dataset.x, dataset.y, key_generation)
    return SyntheticDataset(
        distribution=dataset.distribution,
        m=dataset.m,
        true_mi=dataset.true_mi,
        key_generation=key_generation,
        train_table=train_table,
        cand_table=cand_table,
        x=dataset.x,
        y=dataset.y,
        params=dict(dataset.params),
    )


def generate_dataset(
    distribution: str,
    m: int,
    size: int = 10_000,
    *,
    target_mi: Optional[float] = None,
    key_generation: "str | KeyGeneration" = KeyGeneration.KEY_IND,
    random_state: RandomState = None,
) -> SyntheticDataset:
    """Generate a dataset of either distribution family by name."""
    distribution = distribution.strip().lower()
    if distribution == "trinomial":
        return generate_trinomial_dataset(
            m,
            size,
            target_mi=target_mi,
            key_generation=key_generation,
            random_state=random_state,
        )
    if distribution == "cdunif":
        return generate_cdunif_dataset(
            m, size, key_generation=key_generation, random_state=random_state
        )
    raise SyntheticDataError(
        f"unknown distribution {distribution!r}; expected 'trinomial' or 'cdunif'"
    )


def generate_benchmark_suite(
    distribution: str,
    *,
    m_values: Iterable[int],
    datasets_per_m: int = 10,
    size: int = 10_000,
    key_generations: Iterable["str | KeyGeneration"] = (KeyGeneration.KEY_IND,),
    random_state: RandomState = None,
) -> list[SyntheticDataset]:
    """Generate a sweep of datasets (the shape of the paper's Figures 2-4).

    For the Trinomial family the target MI of each dataset is drawn uniformly
    from ``[0, 3.5]`` (by the parameter chooser); for CDUnif the MI is a
    deterministic function of ``m``.
    """
    rng = ensure_rng(random_state)
    key_generations = [KeyGeneration.from_name(kg) for kg in key_generations]
    m_list = list(m_values)
    child_rngs = spawn_rng(rng, len(m_list) * datasets_per_m * len(key_generations))
    datasets: list[SyntheticDataset] = []
    child_index = 0
    for m in m_list:
        for key_generation in key_generations:
            for _ in range(datasets_per_m):
                datasets.append(
                    generate_dataset(
                        distribution,
                        m,
                        size,
                        key_generation=key_generation,
                        random_state=child_rngs[child_index],
                    )
                )
                child_index += 1
    return datasets
