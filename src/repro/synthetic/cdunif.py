"""The ``CDUnif`` discrete/continuous synthetic generator (Section V-A).

Following Gao et al. (2017), ``X`` is uniform over the integers
``{0, 1, ..., m-1}`` and, given ``X = x``, ``Y`` is uniform on the interval
``[x, x + 2]``.  Because consecutive intervals overlap, observing ``Y`` only
partially identifies ``X`` and the mutual information has the closed form

``I(X, Y) = log(m) - (m - 1) * log(2) / m``  (nats).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SyntheticDataError
from repro.util.rng import RandomState, ensure_rng

__all__ = ["cdunif_true_mi", "sample_cdunif"]


def cdunif_true_mi(m: int) -> float:
    """Closed-form MI (nats) of the CDUnif distribution with parameter ``m``."""
    if m < 1:
        raise ValueError("m must be a positive integer")
    return float(np.log(m) - (m - 1) * np.log(2.0) / m)


def sample_cdunif(
    m: int,
    size: int,
    random_state: RandomState = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``size`` samples of ``(X, Y)`` from the CDUnif distribution.

    Returns an integer array ``X`` (values in ``{0, ..., m-1}``) and a float
    array ``Y`` (values in ``[X, X + 2]``).
    """
    if m < 1:
        raise SyntheticDataError("m must be a positive integer")
    if size < 1:
        raise SyntheticDataError("size must be a positive integer")
    rng = ensure_rng(random_state)
    x = rng.integers(0, m, size=size, dtype=np.int64)
    y = x + rng.uniform(0.0, 2.0, size=size)
    return x, y
