"""The ``Trinomial`` synthetic data generator (Section V-A of the paper).

``(X, Y)`` are the first two components of a multinomial draw
``Mult(m, <p1, p2>)``; both are discrete, take values in ``{0, ..., m}`` and
are negatively correlated.  Parameters are chosen so that the pair attains a
*desired* mutual information:

1. draw the target MI ``I`` (uniformly in ``[0, 3.5]`` by default) and
   convert it to the correlation level of the approximating bivariate normal,
   ``r = sqrt(1 - exp(-2 I))``;
2. draw ``p1`` uniformly in ``[0.15, 0.85]``;
3. solve the trinomial correlation identity
   ``r = -p1 p2 / sqrt(p1 (1 - p1) p2 (1 - p2))`` for ``p2`` and retry if it
   falls outside ``[0.15, 0.85]``.

The normal approximation is used *only* to pick parameters; the exact MI of
the resulting trinomial is computed from the open-form entropy of the
multinomial distribution (binomial marginals plus the joint sum).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln

from repro.exceptions import SyntheticDataError
from repro.util.rng import RandomState, ensure_rng

__all__ = [
    "TrinomialParameters",
    "choose_trinomial_parameters",
    "binomial_entropy",
    "trinomial_joint_entropy",
    "trinomial_true_mi",
    "sample_trinomial",
    "mi_to_correlation",
    "correlation_to_mi",
]

#: Range in which p1 and p2 must fall for the normal approximation to be usable.
_P_RANGE = (0.15, 0.85)
#: Default range of target MI values (nats), as in the paper.
_MI_RANGE = (0.0, 3.5)


@dataclass(frozen=True)
class TrinomialParameters:
    """Parameters of a Trinomial dataset and its exact mutual information."""

    m: int
    p1: float
    p2: float
    target_mi: float
    true_mi: float

    @property
    def p3(self) -> float:
        """Probability of the discarded third outcome."""
        return 1.0 - self.p1 - self.p2


def mi_to_correlation(mi: float) -> float:
    """Correlation magnitude of a bivariate normal with the given MI (nats)."""
    if mi < 0:
        raise ValueError("mi must be non-negative")
    return float(np.sqrt(1.0 - np.exp(-2.0 * mi)))


def correlation_to_mi(correlation: float) -> float:
    """MI (nats) of a bivariate normal with correlation ``correlation``."""
    if not -1.0 < correlation < 1.0:
        raise ValueError("correlation must lie strictly inside (-1, 1)")
    return float(-0.5 * np.log(1.0 - correlation**2))


def _solve_p2(correlation: float, p1: float) -> float:
    """Solve the trinomial correlation identity for ``p2`` given ``r`` and ``p1``.

    From ``r^2 = p1 p2 / ((1 - p1)(1 - p2))`` (the squared correlation of the
    first two multinomial components):
    ``p2 = r^2 (1 - p1) / (p1 + r^2 (1 - p1))``.
    """
    r_squared = correlation**2
    return r_squared * (1.0 - p1) / (p1 + r_squared * (1.0 - p1))


def choose_trinomial_parameters(
    m: int,
    *,
    target_mi: float | None = None,
    random_state: RandomState = None,
    max_attempts: int = 1000,
) -> TrinomialParameters:
    """Choose ``(p1, p2)`` so the trinomial attains (approximately) a target MI.

    Parameters
    ----------
    m:
        Number of multinomial trials; also controls the number of distinct
        values of X and Y.
    target_mi:
        Desired MI in nats.  Drawn uniformly from ``[0, 3.5]`` when omitted.
    random_state:
        Seed or generator.
    max_attempts:
        Number of ``p1`` draws before giving up (a draw is rejected when the
        implied ``p2`` leaves ``[0.15, 0.85]``).
    """
    if m < 1:
        raise SyntheticDataError("m must be a positive integer")
    rng = ensure_rng(random_state)
    if target_mi is None:
        target_mi = float(rng.uniform(*_MI_RANGE))
    if target_mi < 0:
        raise SyntheticDataError("target_mi must be non-negative")
    correlation = mi_to_correlation(target_mi)
    low, high = _P_RANGE
    for _ in range(max_attempts):
        p1 = float(rng.uniform(low, high))
        if target_mi == 0.0:
            # Independence target: pick any valid p2; the exact MI of the
            # trinomial is still > 0 because the components compete for
            # trials, but it is the minimum attainable within this family.
            p2 = float(rng.uniform(low, min(high, 0.98 - p1)))
        else:
            p2 = _solve_p2(correlation, p1)
            if not low <= p2 <= high:
                continue
        if 1.0 - p1 - p2 <= 0.0:
            continue
        true_mi = trinomial_true_mi(m, p1, p2)
        return TrinomialParameters(
            m=m, p1=p1, p2=p2, target_mi=target_mi, true_mi=true_mi
        )
    raise SyntheticDataError(
        f"could not find valid trinomial parameters for target MI {target_mi:.3f} "
        f"after {max_attempts} attempts"
    )


def binomial_entropy(m: int, p: float) -> float:
    """Exact entropy (nats) of a Binomial(m, p) distribution by summation."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    if p in (0.0, 1.0):
        return 0.0
    counts = np.arange(m + 1)
    log_pmf = (
        gammaln(m + 1)
        - gammaln(counts + 1)
        - gammaln(m - counts + 1)
        + counts * np.log(p)
        + (m - counts) * np.log1p(-p)
    )
    pmf = np.exp(log_pmf)
    return float(-np.sum(pmf * log_pmf))


def trinomial_joint_entropy(m: int, p1: float, p2: float) -> float:
    """Exact joint entropy (nats) of the first two components of ``Mult(m, <p1, p2>)``.

    Sums the open-form multinomial pmf over all ``(n1, n2)`` with
    ``n1 + n2 <= m``; vectorized so that ``m`` up to a few thousand is fast.
    """
    p3 = 1.0 - p1 - p2
    if min(p1, p2) <= 0.0 or p3 < 0.0:
        raise ValueError("p1, p2 must be positive and p1 + p2 <= 1")
    n1 = np.arange(m + 1).reshape(-1, 1)
    n2 = np.arange(m + 1).reshape(1, -1)
    n3 = m - n1 - n2
    valid = n3 >= 0
    # Work in logs; invalid cells are masked out.
    with np.errstate(divide="ignore", invalid="ignore"):
        log_pmf = (
            gammaln(m + 1)
            - gammaln(n1 + 1)
            - gammaln(n2 + 1)
            - gammaln(np.where(valid, n3, 0) + 1)
            + n1 * np.log(p1)
            + n2 * np.log(p2)
            + np.where(valid, n3, 0) * (np.log(p3) if p3 > 0 else 0.0)
        )
    log_pmf = np.where(valid, log_pmf, -np.inf)
    pmf = np.exp(log_pmf)
    # Avoid 0 * (-inf) = nan: cells with zero probability contribute nothing.
    safe_log = np.where(np.isfinite(log_pmf), log_pmf, 0.0)
    return float(-np.sum(pmf * safe_log))


def trinomial_true_mi(m: int, p1: float, p2: float) -> float:
    """Exact MI (nats) between the first two components of ``Mult(m, <p1, p2>)``.

    ``I(X, Y) = H(X) + H(Y) - H(X, Y)`` with binomial marginals and the
    open-form joint entropy.
    """
    h_x = binomial_entropy(m, p1)
    h_y = binomial_entropy(m, p2)
    h_xy = trinomial_joint_entropy(m, p1, p2)
    return max(0.0, h_x + h_y - h_xy)


def sample_trinomial(
    m: int,
    p1: float,
    p2: float,
    size: int,
    random_state: RandomState = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``size`` samples of ``(X, Y)`` from ``Mult(m, <p1, p2>)``.

    Returns two integer arrays of shape ``(size,)`` (the third component is
    discarded, as in the paper).
    """
    if size < 1:
        raise SyntheticDataError("size must be a positive integer")
    p3 = 1.0 - p1 - p2
    if min(p1, p2) <= 0 or p3 < 0:
        raise SyntheticDataError("p1, p2 must be positive and p1 + p2 <= 1")
    rng = ensure_rng(random_state)
    draws = rng.multinomial(m, [p1, p2, max(p3, 0.0)], size=size)
    return draws[:, 0].astype(np.int64), draws[:, 1].astype(np.int64)
