"""Parameterized lake scenarios with known ground truth.

Every scenario starts from a :class:`~repro.synthetic.benchmark.
SyntheticDataset` — a decomposed ``(X, Y)`` sample whose post-join MI is
analytic — and applies a perturbation that provably does *not* change the
MI of the recoverable join:

* **baseline** — the clean decomposition, one variant per distribution.
* **key_skew** — rows are duplicated with Zipf/heavy-hitter multiplicities
  drawn independently of the values.  A pair's duplication factor is
  independent of ``(X, Y)``, so the duplicated population has the same
  joint distribution in expectation; estimators see the reweighted sample
  a real lake with popular join keys would produce.
* **dirty_values** — NULL-key rows, NaN-valued noise rows under
  out-of-domain keys, unicode key renaming (a bijection) and, in the
  ``mixed-dtype`` variant, feature values relabeled to non-numeric strings
  (an injection, so MI is preserved).  None of the noise can join: NULL
  keys are dropped by sketching and shadow keys never occur in the base.
* **schema_drift** — the candidate table arrives in chunks through the
  :mod:`repro.ingest` streaming path, with *benign* drift mid-stream
  (integer values becoming floats, NULL keys appearing only in late
  chunks).  Values are numerically identical to the batch table, so the
  ground truth is untouched; hostile drift (numeric→string) is rejected by
  the ingest layer and exercised in the test suite.
* **key_dependence** — the paired KeyInd/KeyDep decompositions of one
  sample (correlated vs independent join keys): both variants share the
  exact post-join sample and true MI, so any accuracy difference is
  attributable to the join-key distribution alone.
* **low_containment** — only a fraction of the base keys exist in the
  candidate.  Under KeyInd the surviving pairs are a uniform subsample of
  the iid ``(X, Y)`` draw, so the joint distribution (and the MI) of the
  recoverable join is unchanged; the ``disjoint`` variant shares no keys
  at all and the correct behaviour is *refusal*, not a number.

Scenario generation is fully deterministic given a seed, which is what
lets ``benchmarks/accuracy_gate.py`` compare runs against committed
baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

import numpy as np

from repro.exceptions import SyntheticDataError
from repro.opendata.domains import zipf_weights
from repro.relational.column import Column
from repro.relational.dtypes import DType
from repro.relational.table import Table
from repro.synthetic.benchmark import SyntheticDataset, generate_dataset, redecompose
from repro.synthetic.decompose import KeyGeneration
from repro.util.rng import RandomState, ensure_rng, spawn_rng

__all__ = [
    "Scenario",
    "SCENARIO_FAMILIES",
    "available_families",
    "describe_families",
    "generate_family",
    "generate_suite",
    "skew_tables",
    "dirty_candidate",
    "drop_candidate_keys",
    "drift_chunks",
]


@dataclass
class Scenario:
    """One perturbed lake scenario with an analytically known join MI.

    Attributes
    ----------
    family / variant / replicate:
        Position in the suite; ``name`` joins them into a stable id.
    dataset:
        The perturbed dataset: ``train_table``/``cand_table`` carry the
        mess, ``true_mi`` stays the analytic reference (every perturbation
        is MI-preserving by construction, see the module docstring).
    candidate_chunks:
        When set, the candidate side must be sketched through the chunked
        streaming path (:meth:`~repro.engine.session.SketchEngine.
        sketch_stream`) over exactly these chunks, in order.
    expect_refusal:
        The correct outcome is an
        :class:`~repro.exceptions.InsufficientSamplesError` (e.g. disjoint
        keys); producing a number instead counts as a robustness failure.
    params:
        Perturbation parameters, for reports.
    """

    family: str
    variant: str
    replicate: int
    dataset: SyntheticDataset
    candidate_chunks: Optional[list[Table]] = None
    expect_refusal: bool = False
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Stable scenario identifier (``family/variant#replicate``)."""
        return f"{self.family}/{self.variant}#{self.replicate}"

    @property
    def true_mi(self) -> float:
        """Analytic MI of the recoverable join (the accuracy reference)."""
        return self.dataset.true_mi


# --------------------------------------------------------------------- #
# MI-preserving table perturbations
# --------------------------------------------------------------------- #
def _zipf_multiplicities(
    keys: Iterable[Any],
    *,
    exponent: float,
    max_multiplicity: int,
    rng: np.random.Generator,
) -> dict[Any, int]:
    """Per-key duplication factors with a Zipf profile, independent of values.

    The heaviest key is duplicated ``max_multiplicity`` times; which key is
    heavy is a uniform permutation, so multiplicity is independent of the
    values attached to the key.
    """
    distinct = list(dict.fromkeys(key for key in keys if key is not None))
    if not distinct:
        return {}
    weights = zipf_weights(len(distinct), exponent=exponent)
    permutation = rng.permutation(len(distinct))
    heaviest = float(weights[0])
    return {
        key: max(1, int(round(max_multiplicity * float(weights[int(rank)]) / heaviest)))
        for key, rank in zip(distinct, permutation)
    }


def _duplicate_rows(table: Table, multiplicity: dict[Any, int], key_column: str) -> Table:
    """Duplicate each row ``multiplicity[key]`` times, preserving dtypes."""
    keys = table.column(key_column).values
    rows: list[int] = []
    for position, key in enumerate(keys):
        rows.extend([position] * multiplicity.get(key, 1))
    return Table([column.take(rows) for column in table.columns], name=table.name)


def skew_tables(
    dataset: SyntheticDataset,
    *,
    exponent: float = 1.1,
    max_multiplicity: int = 24,
    random_state: RandomState = None,
) -> SyntheticDataset:
    """Duplicate rows of both tables with heavy-hitter key multiplicities.

    One multiplicity map drives both sides, so the join stays consistent;
    because multiplicities are independent of the values, the duplicated
    population keeps the dataset's joint distribution (and ``true_mi``).
    """
    rng = ensure_rng(random_state)
    multiplicity = _zipf_multiplicities(
        dataset.train_table.column("key").values,
        exponent=exponent,
        max_multiplicity=max_multiplicity,
        rng=rng,
    )
    return SyntheticDataset(
        distribution=dataset.distribution,
        m=dataset.m,
        true_mi=dataset.true_mi,
        key_generation=dataset.key_generation,
        train_table=_duplicate_rows(dataset.train_table, multiplicity, "key"),
        cand_table=_duplicate_rows(dataset.cand_table, multiplicity, "key"),
        x=dataset.x,
        y=dataset.y,
        params=dict(dataset.params),
    )


def _unicode_key(key: Any) -> str:
    """Bijective unicode renaming of a join key (both sides get it)."""
    return f"ключ—{key}·键"


def dirty_candidate(
    dataset: SyntheticDataset,
    *,
    null_fraction: float = 0.1,
    noise_fraction: float = 0.15,
    unicode_keys: bool = True,
    stringify_features: bool = False,
    random_state: RandomState = None,
) -> SyntheticDataset:
    """Inject NULL keys, NaN noise rows and unicode renames into a dataset.

    All injected rows are unjoinable (NULL keys are dropped by sketching;
    shadow keys never occur in the base table), the key renaming is a
    bijection applied to both sides, and ``stringify_features`` relabels
    feature values injectively — so the MI of the recoverable join is the
    dataset's analytic MI, untouched.
    """
    rng = ensure_rng(random_state)
    cand_keys = list(dataset.cand_table.column("key").values)
    features = list(dataset.cand_table.column("feature").values)
    num_rows = len(cand_keys)

    if stringify_features:
        # Injective relabeling to non-numeric strings: "level-3" stays a
        # STRING column (numeric-looking strings would re-infer as INT).
        features = [None if value is None else f"level-{value}" for value in features]

    rename = _unicode_key if unicode_keys else (lambda key: key)
    cand_keys = [None if key is None else rename(key) for key in cand_keys]
    train_keys = [
        None if key is None else rename(key)
        for key in dataset.train_table.column("key").values
    ]

    # NULL-key rows: real values under a missing join key.
    num_null = int(round(null_fraction * num_rows))
    for _ in range(num_null):
        cand_keys.append(None)
        features.append(features[int(rng.integers(0, num_rows))])
    # Noise rows: out-of-domain ("shadow") keys carrying NaN/NULL values.
    num_noise = int(round(noise_fraction * num_rows))
    for position in range(num_noise):
        cand_keys.append(f"shadow-∅-{position:06d}")
        features.append(float("nan") if position % 2 else None)

    order = [int(i) for i in rng.permutation(len(cand_keys))]
    cand_table = Table(
        [
            Column("key", [cand_keys[i] for i in order], dtype=DType.STRING),
            Column("feature", [features[i] for i in order]),
        ],
        name=dataset.cand_table.name,
    )
    train_table = Table(
        [
            Column("key", train_keys, dtype=DType.STRING),
            dataset.train_table.column("target"),
        ],
        name=dataset.train_table.name,
    )
    return SyntheticDataset(
        distribution=dataset.distribution,
        m=dataset.m,
        true_mi=dataset.true_mi,
        key_generation=dataset.key_generation,
        train_table=train_table,
        cand_table=cand_table,
        x=dataset.x,
        y=dataset.y,
        params=dict(dataset.params),
    )


def drop_candidate_keys(
    dataset: SyntheticDataset,
    *,
    keep_fraction: float,
    random_state: RandomState = None,
) -> SyntheticDataset:
    """Keep only a uniform fraction of the candidate's keys (low containment).

    ``keep_fraction=0`` remaps every candidate key out of the base's key
    space instead (fully disjoint: containment exactly zero).
    """
    if not 0.0 <= keep_fraction <= 1.0:
        raise SyntheticDataError("keep_fraction must lie in [0, 1]")
    rng = ensure_rng(random_state)
    cand = dataset.cand_table
    if keep_fraction == 0.0:
        cand_table = Table(
            [
                Column(
                    "key",
                    [f"elsewhere-{key}" for key in cand.column("key").values],
                    dtype=DType.STRING,
                ),
                cand.column("feature"),
            ],
            name=cand.name,
        )
    else:
        keys = cand.column("key").values
        distinct = list(dict.fromkeys(key for key in keys if key is not None))
        kept_count = max(1, int(round(keep_fraction * len(distinct))))
        kept_positions = rng.choice(len(distinct), size=kept_count, replace=False)
        kept = {distinct[int(i)] for i in kept_positions}
        rows = [row for row, key in enumerate(keys) if key in kept]
        cand_table = Table([column.take(rows) for column in cand.columns], name=cand.name)
    return SyntheticDataset(
        distribution=dataset.distribution,
        m=dataset.m,
        true_mi=dataset.true_mi,
        key_generation=dataset.key_generation,
        train_table=dataset.train_table,
        cand_table=cand_table,
        x=dataset.x,
        y=dataset.y,
        params=dict(dataset.params),
    )


def drift_chunks(
    dataset: SyntheticDataset,
    *,
    num_chunks: int = 4,
    late_nulls: bool = False,
    hostile: bool = False,
    random_state: RandomState = None,
) -> list[Table]:
    """Chunk the candidate table with schema drift appearing mid-stream.

    Benign drift: the first chunk carries the feature values unchanged,
    later chunks carry them as floats (numerically identical), and —
    when ``late_nulls`` is set — NULL-key noise rows appear only in the
    final chunk.  The concatenation recovers the same joinable content as
    the batch table, so the ground truth is untouched.

    ``hostile=True`` turns the final chunk's features into non-numeric
    strings — a categorical-vs-numeric flip the :mod:`repro.ingest` layer
    must *reject* (used by the tests; never silently estimated).
    """
    if num_chunks < 2:
        raise SyntheticDataError("schema drift needs at least two chunks")
    rng = ensure_rng(random_state)
    cand = dataset.cand_table
    keys = cand.column("key").values
    features = cand.column("feature").values
    num_rows = len(keys)
    boundaries = np.linspace(0, num_rows, num_chunks + 1).astype(int)
    chunks: list[Table] = []
    for index in range(num_chunks):
        start, stop = int(boundaries[index]), int(boundaries[index + 1])
        chunk_keys = list(keys[start:stop])
        chunk_features = list(features[start:stop])
        if hostile and index == num_chunks - 1:
            chunk_features = [
                None if value is None else f"label-{value}" for value in chunk_features
            ]
        elif index > 0:
            # Mid-stream dtype drift: the same numbers, now floats.
            chunk_features = [
                None if value is None else float(value) for value in chunk_features
            ]
        if late_nulls and index == num_chunks - 1:
            extra = max(1, (stop - start) // 4)
            chunk_keys.extend([None] * extra)
            chunk_features.extend(
                float(features[int(rng.integers(0, num_rows))]) for _ in range(extra)
            )
        chunks.append(
            Table(
                [Column("key", chunk_keys), Column("feature", chunk_features)],
                name=cand.name,
            )
        )
    return chunks


# --------------------------------------------------------------------- #
# Family generators
# --------------------------------------------------------------------- #
def _base_dataset(
    replicate: int, sample_size: int, rng: np.random.Generator, *, distribution: str
) -> SyntheticDataset:
    """A fresh dataset for one replicate; ``m`` cycles through small sizes.

    Retried (deterministically — the child stream just advances) because a
    drawn target MI occasionally falls outside the range the trinomial
    parameter search can satisfy.
    """
    m = (4, 8, 16)[replicate % 3]
    last_error: Optional[SyntheticDataError] = None
    for _ in range(8):
        try:
            return generate_dataset(distribution, m, sample_size, random_state=rng)
        except SyntheticDataError as error:
            last_error = error
    raise SyntheticDataError(
        f"could not generate a {distribution} dataset after 8 attempts"
    ) from last_error


def _gen_baseline(replicates: int, sample_size: int, rng) -> list[Scenario]:
    scenarios = []
    children = spawn_rng(rng, 2 * replicates)
    for variant_index, distribution in enumerate(("trinomial", "cdunif")):
        for replicate in range(replicates):
            child = children[variant_index * replicates + replicate]
            dataset = _base_dataset(replicate, sample_size, child, distribution=distribution)
            scenarios.append(
                Scenario("baseline", distribution, replicate, dataset)
            )
    return scenarios


def _gen_key_skew(replicates: int, sample_size: int, rng) -> list[Scenario]:
    exponents = (0.8, 1.4)
    scenarios = []
    children = spawn_rng(rng, len(exponents) * replicates)
    for variant_index, exponent in enumerate(exponents):
        for replicate in range(replicates):
            child = children[variant_index * replicates + replicate]
            dataset = _base_dataset(replicate, sample_size, child, distribution="trinomial")
            skewed = skew_tables(
                dataset, exponent=exponent, max_multiplicity=24, random_state=child
            )
            scenarios.append(
                Scenario(
                    "key_skew",
                    f"zipf-{exponent}",
                    replicate,
                    skewed,
                    params={"exponent": exponent, "max_multiplicity": 24},
                )
            )
    return scenarios


def _gen_dirty_values(replicates: int, sample_size: int, rng) -> list[Scenario]:
    variants = (
        ("null-noise", dict(stringify_features=False)),
        ("mixed-dtype", dict(stringify_features=True)),
    )
    scenarios = []
    children = spawn_rng(rng, len(variants) * replicates)
    for variant_index, (variant, options) in enumerate(variants):
        for replicate in range(replicates):
            child = children[variant_index * replicates + replicate]
            dataset = _base_dataset(replicate, sample_size, child, distribution="trinomial")
            dirty = dirty_candidate(dataset, random_state=child, **options)
            scenarios.append(
                Scenario(
                    "dirty_values",
                    variant,
                    replicate,
                    dirty,
                    params={"null_fraction": 0.1, "noise_fraction": 0.15, **options},
                )
            )
    return scenarios


def _gen_schema_drift(replicates: int, sample_size: int, rng) -> list[Scenario]:
    variants = (
        ("int-to-float", dict(late_nulls=False)),
        ("late-nulls", dict(late_nulls=True)),
    )
    scenarios = []
    children = spawn_rng(rng, len(variants) * replicates)
    for variant_index, (variant, options) in enumerate(variants):
        for replicate in range(replicates):
            child = children[variant_index * replicates + replicate]
            dataset = _base_dataset(replicate, sample_size, child, distribution="trinomial")
            chunks = drift_chunks(dataset, num_chunks=4, random_state=child, **options)
            scenarios.append(
                Scenario(
                    "schema_drift",
                    variant,
                    replicate,
                    dataset,
                    candidate_chunks=chunks,
                    params={"num_chunks": 4, **options},
                )
            )
    return scenarios


def _gen_key_dependence(replicates: int, sample_size: int, rng) -> list[Scenario]:
    scenarios = []
    children = spawn_rng(rng, replicates)
    for replicate in range(replicates):
        child = children[replicate]
        dataset = _base_dataset(replicate, sample_size, child, distribution="trinomial")
        correlated = redecompose(dataset, KeyGeneration.KEY_DEP)
        # Both variants share one (X, Y) sample and one true MI: any
        # accuracy gap is attributable to the join-key distribution alone.
        scenarios.append(Scenario("key_dependence", "keyind", replicate, dataset))
        scenarios.append(Scenario("key_dependence", "keydep", replicate, correlated))
    return scenarios


def _gen_low_containment(replicates: int, sample_size: int, rng) -> list[Scenario]:
    variants = (("keep-0.3", 0.3), ("keep-0.1", 0.1), ("disjoint", 0.0))
    scenarios = []
    children = spawn_rng(rng, len(variants) * replicates)
    for variant_index, (variant, keep_fraction) in enumerate(variants):
        for replicate in range(replicates):
            child = children[variant_index * replicates + replicate]
            dataset = _base_dataset(replicate, sample_size, child, distribution="trinomial")
            reduced = drop_candidate_keys(
                dataset, keep_fraction=keep_fraction, random_state=child
            )
            scenarios.append(
                Scenario(
                    "low_containment",
                    variant,
                    replicate,
                    reduced,
                    expect_refusal=keep_fraction == 0.0,
                    params={"keep_fraction": keep_fraction},
                )
            )
    return scenarios


@dataclass(frozen=True)
class FamilySpec:
    """Registry entry: the generator plus catalog metadata."""

    generator: Callable[[int, int, Any], list[Scenario]]
    description: str
    variants: tuple[str, ...]


#: The scenario families of the suite, in report order.
SCENARIO_FAMILIES: dict[str, FamilySpec] = {
    "baseline": FamilySpec(
        _gen_baseline,
        "Clean KeyInd decompositions of both synthetic distributions.",
        ("trinomial", "cdunif"),
    ),
    "key_skew": FamilySpec(
        _gen_key_skew,
        "Zipf/heavy-hitter key multiplicities, independent of the values.",
        ("zipf-0.8", "zipf-1.4"),
    ),
    "dirty_values": FamilySpec(
        _gen_dirty_values,
        "NULL keys, NaN noise rows, unicode key renames, mixed-dtype values.",
        ("null-noise", "mixed-dtype"),
    ),
    "schema_drift": FamilySpec(
        _gen_schema_drift,
        "Benign dtype drift mid-stream through the chunked ingest path.",
        ("int-to-float", "late-nulls"),
    ),
    "key_dependence": FamilySpec(
        _gen_key_dependence,
        "Correlated (KeyDep) vs independent (KeyInd) join keys, paired.",
        ("keyind", "keydep"),
    ),
    "low_containment": FamilySpec(
        _gen_low_containment,
        "Partial and fully disjoint key overlap between base and candidate.",
        ("keep-0.3", "keep-0.1", "disjoint"),
    ),
}


def available_families() -> tuple[str, ...]:
    """The scenario family names, in report order."""
    return tuple(SCENARIO_FAMILIES)


def describe_families() -> dict[str, dict[str, Any]]:
    """Catalog metadata for reports: description and variants per family."""
    return {
        name: {"description": spec.description, "variants": list(spec.variants)}
        for name, spec in SCENARIO_FAMILIES.items()
    }


def generate_family(
    family: str,
    *,
    replicates: int = 3,
    sample_size: int = 2000,
    random_state: RandomState = None,
) -> list[Scenario]:
    """Generate one family's scenarios, deterministically given the seed."""
    try:
        spec = SCENARIO_FAMILIES[family]
    except KeyError:
        raise SyntheticDataError(
            f"unknown scenario family {family!r}; "
            f"available: {', '.join(available_families())}"
        ) from None
    if replicates < 1:
        raise SyntheticDataError("replicates must be a positive integer")
    if sample_size < 100:
        raise SyntheticDataError("sample_size must be at least 100")
    rng = ensure_rng(random_state)
    scenarios = spec.generator(replicates, sample_size, rng)
    for scenario in scenarios:
        if not math.isfinite(scenario.true_mi):
            raise SyntheticDataError(
                f"scenario {scenario.name} generated a non-finite true MI"
            )
    return scenarios


def generate_suite(
    families: Optional[Iterable[str]] = None,
    *,
    replicates: int = 3,
    sample_size: int = 2000,
    random_state: RandomState = None,
) -> list[Scenario]:
    """Generate the scenario suite across the given (default: all) families.

    Each family gets its own child RNG spawned in registry order, so adding
    a family — or restricting the run to a subset — never changes the
    scenarios another family generates for the same seed.
    """
    rng = ensure_rng(random_state)
    selected = list(families) if families is not None else list(available_families())
    for family in selected:
        if family not in SCENARIO_FAMILIES:
            raise SyntheticDataError(
                f"unknown scenario family {family!r}; "
                f"available: {', '.join(available_families())}"
            )
    children = spawn_rng(rng, len(SCENARIO_FAMILIES))
    by_family = dict(zip(SCENARIO_FAMILIES, children))
    scenarios: list[Scenario] = []
    for family in available_families():
        if family not in selected:
            continue
        scenarios.extend(
            generate_family(
                family,
                replicates=replicates,
                sample_size=sample_size,
                random_state=by_family[family],
            )
        )
    return scenarios
