"""Report layer: JSON documents, markdown rendering, run tracking.

The JSON document is the machine interface: ``benchmarks/accuracy_gate.py``
compares its ``cells``/``ranking`` sections against a committed baseline
and CI fails on statistically significant regressions.  ``run.run_id`` is
a content hash of the suite parameters, so the gate can refuse to compare
runs produced by different suite configurations.  The markdown rendering
is the human interface (uploaded as a CI artifact), and
:func:`append_run_log` maintains a JSONL history of runs for tracking.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Any, Optional, Union

from repro.scenarios.generators import describe_families
from repro.scenarios.runner import ScenarioSuiteResult
from repro.scenarios.stats import summarize_records, win_matrix

__all__ = ["build_report", "render_markdown", "write_report", "append_run_log"]

REPORT_NAME = "scenario_accuracy"
FORMAT_VERSION = 1


def run_id_for(parameters: dict[str, Any]) -> str:
    """Deterministic 12-hex id of a suite configuration.

    Two runs are comparable by the gate only when their parameters hash to
    the same id (same families, methods, capacities, replicates, sizes and
    seed).
    """
    canonical = json.dumps(parameters, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def _overall(summary: dict[str, Any]) -> dict[str, Any]:
    """Suite-wide headline numbers (unweighted means over cells)."""
    cells = summary["cells"].values()
    rmses = [c["rmse"] for c in cells if c["n_scored"] > 0]
    coverages = [c["ci_coverage"] for c in cells if c["ci_coverage"] is not None]
    behavior = [c["behavior_correct"] for c in cells]
    return {
        "mean_rmse": sum(rmses) / len(rmses) if rmses else 0.0,
        "mean_ci_coverage": sum(coverages) / len(coverages) if coverages else None,
        "behavior_correct": sum(behavior) / len(behavior) if behavior else 1.0,
        "cell_count": len(summary["cells"]),
    }


def build_report(result: ScenarioSuiteResult) -> dict[str, Any]:
    """Aggregate a suite run into the gateable JSON document."""
    summary = summarize_records(result.records)
    catalog = {
        family: spec
        for family, spec in describe_families().items()
        if family in set(result.families())
    }
    return {
        "report": REPORT_NAME,
        "format_version": FORMAT_VERSION,
        "run": {
            "run_id": run_id_for(result.parameters),
            "created_unix": int(time.time()),
            "seconds": result.seconds,
            "records": len(result.records),
            "scenarios": result.scenario_count,
        },
        "parameters": dict(result.parameters),
        "catalog": catalog,
        "cells": summary["cells"],
        "ranking": summary["ranking"],
        "win_matrix": win_matrix(summary["cells"]),
        "overall": _overall(summary),
    }


def _fmt(value: Any, precision: int = 4) -> str:
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def _md_table(columns: list[str], rows: list[list[Any]]) -> str:
    lines = [
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_fmt(cell).replace("|", "∕") for cell in row) + " |"
        )
    return "\n".join(lines)


def render_markdown(report: dict[str, Any]) -> str:
    """Human-readable markdown report (the CI artifact)."""
    run = report["run"]
    params = report["parameters"]
    overall = report["overall"]
    parts = [
        "# Scenario-suite accuracy report",
        "",
        f"Run `{run['run_id']}` — {run['records']} measurements over "
        f"{run['scenarios']} scenarios in {run['seconds']:.1f}s.",
        "",
        f"- methods: {', '.join(params['methods'])}",
        f"- capacities: {', '.join(str(c) for c in params['capacities'])}",
        f"- families: {', '.join(params['families'])}",
        f"- replicates per variant: {params['replicates']}, "
        f"sample size: {params['sample_size']}, seed: {params['seed']}",
        "",
        "## Overall",
        "",
        f"- mean RMSE across cells: {_fmt(overall['mean_rmse'])}",
        f"- mean CI coverage: {_fmt(overall['mean_ci_coverage'])}",
        f"- behavior correctness (refusal matches expectation): "
        f"{_fmt(overall['behavior_correct'])}",
        "",
        "## Win matrix",
        "",
        "Lowest RMSE per (family, capacity):",
        "",
        _md_table(
            ["method", "wins"],
            [[m, w] for m, w in report["win_matrix"]["wins"].items()],
        ),
        "",
        _md_table(
            ["family / capacity", "winner"],
            [[g, w] for g, w in report["win_matrix"]["by_group"].items()],
        ),
        "",
        "## Ranking quality (suite-wide, per method × capacity)",
        "",
        _md_table(
            ["method", "capacity", "spearman", "top-k overlap", "ranked"],
            [
                [*key.split("|"), r["spearman"], r["top_k_overlap"], r["n_ranked"]]
                for key, r in report["ranking"].items()
            ],
        ),
        "",
        "## Cells",
        "",
        _md_table(
            [
                "family",
                "method",
                "capacity",
                "n",
                "bias",
                "rmse",
                "rmse se",
                "CI cov",
                "refusals",
                "behavior",
            ],
            [
                [
                    *key.split("|"),
                    c["n"],
                    c["bias"],
                    c["rmse"],
                    c["rmse_se"],
                    c["ci_coverage"],
                    c["refusal_rate"],
                    c["behavior_correct"],
                ]
                for key, c in report["cells"].items()
            ],
        ),
        "",
        "## Scenario catalog",
        "",
    ]
    for family, spec in report["catalog"].items():
        parts.append(f"- **{family}** — {spec['description']} "
                     f"(variants: {', '.join(spec['variants'])})")
    parts.append("")
    return "\n".join(parts)


def write_report(
    report: dict[str, Any],
    json_path: Union[str, Path],
    markdown_path: Union[str, Path, None] = None,
) -> Path:
    """Write the JSON document (and optionally the markdown rendering)."""
    json_path = Path(json_path)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    if markdown_path is not None:
        markdown_path = Path(markdown_path)
        markdown_path.parent.mkdir(parents=True, exist_ok=True)
        markdown_path.write_text(render_markdown(report))
    return json_path


def append_run_log(report: dict[str, Any], path: Union[str, Path]) -> Path:
    """Append one JSONL line of run-tracking history for this report."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = {
        "run_id": report["run"]["run_id"],
        "created_unix": report["run"]["created_unix"],
        "seconds": report["run"]["seconds"],
        "records": report["run"]["records"],
        "mean_rmse": report["overall"]["mean_rmse"],
        "mean_ci_coverage": report["overall"]["mean_ci_coverage"],
        "behavior_correct": report["overall"]["behavior_correct"],
    }
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(line, sort_keys=True) + "\n")
    return path


def load_report(path: Union[str, Path]) -> dict[str, Any]:
    """Load a previously written report document."""
    return json.loads(Path(path).read_text())
