"""Scenario-suite accuracy & robustness harness.

The paper's core claim is that sketch-based estimators recover join/MI
structure accurately enough to rank discovery candidates.  The benchmark
suite gates *performance*; this package is the *accuracy* counterpart: a
scenario-suite generator, an experiment runner and a statistical report
layer that continuously verify estimator accuracy under messy, drifting,
adversarial lakes.

* :mod:`repro.scenarios.generators` — parameterized lake scenarios with
  *known ground truth*.  Every perturbation (Zipf/heavy-hitter key skew,
  dirty nulls/NaN/unicode, schema drift through the chunked ingest path,
  correlated vs independent join keys, low-containment/disjoint keys) is
  constructed to provably preserve the analytic MI of the recovered join,
  so estimator error remains exactly measurable after the mess is added.
* :mod:`repro.scenarios.runner` — sweeps all five sketch methods across a
  capacity grid over every scenario and records per-measurement estimates,
  errors, confidence intervals and refusals.
* :mod:`repro.scenarios.stats` — aggregates records into per-(family,
  method, capacity) cells (bias, RMSE, CI coverage, ranking quality) with
  standard errors, and derives the per-method win matrix.
* :mod:`repro.scenarios.report` — JSON + markdown reports with run
  tracking; the JSON feeds ``benchmarks/accuracy_gate.py``, the accuracy
  sibling of the CI benchmark-regression gate.

Entry points: ``repro eval scenarios`` on the command line, or
:func:`~repro.scenarios.runner.run_scenario_suite` from code.  See
``docs/evaluation.md`` for the scenario catalog and the baseline-update
workflow.
"""

from repro.scenarios.generators import (
    SCENARIO_FAMILIES,
    Scenario,
    available_families,
    describe_families,
    generate_family,
    generate_suite,
)
from repro.scenarios.report import (
    append_run_log,
    build_report,
    render_markdown,
    write_report,
)
from repro.scenarios.runner import (
    ScenarioRecord,
    ScenarioSuiteResult,
    run_scenario_suite,
)
from repro.scenarios.stats import (
    perturb_records,
    summarize_records,
    win_matrix,
)

__all__ = [
    "SCENARIO_FAMILIES",
    "Scenario",
    "available_families",
    "describe_families",
    "generate_family",
    "generate_suite",
    "ScenarioRecord",
    "ScenarioSuiteResult",
    "run_scenario_suite",
    "summarize_records",
    "win_matrix",
    "perturb_records",
    "build_report",
    "render_markdown",
    "write_report",
    "append_run_log",
]
