"""Experiment runner: scenario suite × sketch methods × capacity grid.

For every (scenario, method, capacity) combination the runner builds both
sketches through the production paths — the candidate side through the
chunked :meth:`~repro.engine.session.SketchEngine.sketch_stream` ingest
path whenever the scenario ships chunks — joins them, estimates MI and
records the outcome as one flat :class:`ScenarioRecord`.  Refusals
(:class:`~repro.exceptions.InsufficientSamplesError`) are recorded, not
swallowed: for disjoint-key scenarios a refusal is the *correct* answer
and producing a number instead counts against the method.

Confidence intervals use the subsampling machinery of
:mod:`repro.estimators.confidence` over the recovered join sample, so the
reported CI coverage measures exactly what a user of the library would
observe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from repro.engine.config import EngineConfig
from repro.engine.session import SketchEngine
from repro.estimators.confidence import estimate_mi_with_confidence
from repro.exceptions import InsufficientSamplesError, SyntheticDataError
from repro.scenarios.generators import Scenario, generate_suite
from repro.sketches.base import available_methods
from repro.sketches.estimate import estimate_mi_from_join
from repro.sketches.join import join_sketches

__all__ = ["ScenarioRecord", "ScenarioSuiteResult", "run_scenario_suite"]

#: Minimum recovered-join size for the subsampling CI to be attempted.
MIN_CI_JOIN_SIZE = 8


@dataclass
class ScenarioRecord:
    """One measurement: a scenario estimated by one method at one capacity."""

    family: str
    scenario: str
    variant: str
    replicate: int
    method: str
    capacity: int
    true_mi: float
    expect_refusal: bool
    refused: bool
    estimate: Optional[float] = None
    error: Optional[float] = None
    join_size: int = 0
    ci_lower: Optional[float] = None
    ci_upper: Optional[float] = None
    ci_covered: Optional[bool] = None
    seconds: float = 0.0

    def as_row(self) -> dict[str, Any]:
        """Flat dict form used by reports and JSON serialization."""
        return {
            "family": self.family,
            "scenario": self.scenario,
            "variant": self.variant,
            "replicate": self.replicate,
            "method": self.method,
            "capacity": self.capacity,
            "true_mi": self.true_mi,
            "expect_refusal": self.expect_refusal,
            "refused": self.refused,
            "estimate": self.estimate,
            "error": self.error,
            "join_size": self.join_size,
            "ci_lower": self.ci_lower,
            "ci_upper": self.ci_upper,
            "ci_covered": self.ci_covered,
            "seconds": self.seconds,
        }


@dataclass
class ScenarioSuiteResult:
    """All records of one suite run plus the parameters that produced them."""

    records: list[ScenarioRecord]
    parameters: dict[str, Any]
    seconds: float = 0.0
    scenario_count: int = 0

    def methods(self) -> tuple[str, ...]:
        return tuple(self.parameters.get("methods", ()))

    def families(self) -> tuple[str, ...]:
        return tuple(self.parameters.get("families", ()))


def _measure(
    scenario: Scenario, engine: SketchEngine, *, ci_replicates: int, ci_seed: int
) -> ScenarioRecord:
    """Run one scenario through one configured engine."""
    dataset = scenario.dataset
    started = time.perf_counter()
    record = ScenarioRecord(
        family=scenario.family,
        scenario=scenario.name,
        variant=scenario.variant,
        replicate=scenario.replicate,
        method=engine.config.method,
        capacity=engine.config.capacity,
        true_mi=scenario.true_mi,
        expect_refusal=scenario.expect_refusal,
        refused=False,
    )
    base = engine.sketch_base(dataset.train_table, "key", "target")
    if scenario.candidate_chunks is not None:
        candidate = engine.sketch_stream(
            iter(scenario.candidate_chunks), "key", "feature", side="candidate"
        )
    else:
        candidate = engine.sketch_candidate(dataset.cand_table, "key", "feature")
    join = join_sketches(base, candidate)
    record.join_size = join.join_size
    try:
        estimate = estimate_mi_from_join(
            join,
            k=engine.config.estimator_k,
            min_join_size=engine.config.min_join_size,
        )
    except InsufficientSamplesError:
        record.refused = True
        record.seconds = time.perf_counter() - started
        return record
    record.estimate = float(estimate.mi)
    record.error = record.estimate - record.true_mi
    if ci_replicates > 0 and join.join_size >= MIN_CI_JOIN_SIZE:
        try:
            interval = estimate_mi_with_confidence(
                join.x_values,
                join.y_values,
                replicates=ci_replicates,
                random_state=ci_seed,
            )
        except InsufficientSamplesError:
            pass
        else:
            record.ci_lower = float(interval.lower)
            record.ci_upper = float(interval.upper)
            record.ci_covered = interval.contains(record.true_mi)
    record.seconds = time.perf_counter() - started
    return record


def run_scenario_suite(
    *,
    methods: Optional[Sequence[str]] = None,
    capacities: Sequence[int] = (64, 256),
    families: Optional[Iterable[str]] = None,
    replicates: int = 3,
    sample_size: int = 2000,
    seed: int = 0,
    ci_replicates: int = 12,
    scenarios: Optional[list[Scenario]] = None,
    progress: Optional[Any] = None,
) -> ScenarioSuiteResult:
    """Run the scenario suite over a method × capacity grid.

    Parameters
    ----------
    methods:
        Sketch method names (default: every registered method).
    capacities:
        Sketch capacities to sweep.
    families / replicates / sample_size / seed:
        Forwarded to :func:`~repro.scenarios.generators.generate_suite`;
        ``seed`` also derives the engine hash seed and the CI subsampling
        seeds, making the whole run deterministic.
    ci_replicates:
        Subsampling replicates per confidence interval (``0`` disables CIs).
    scenarios:
        Pre-generated scenarios to run instead of generating a fresh suite
        (used by tests; the generation parameters are still recorded).
    progress:
        Optional callable receiving ``(done, total)`` after each record.
    """
    method_list = [m.upper() for m in (methods or available_methods())]
    known = set(available_methods())
    for method in method_list:
        if method not in known:
            raise SyntheticDataError(
                f"unknown sketch method {method!r}; available: {', '.join(sorted(known))}"
            )
    capacity_list = sorted({int(c) for c in capacities})
    if not capacity_list or capacity_list[0] < 4:
        raise SyntheticDataError("capacities must contain integers >= 4")

    started = time.perf_counter()
    if scenarios is None:
        scenarios = generate_suite(
            families,
            replicates=replicates,
            sample_size=sample_size,
            random_state=seed,
        )
    family_order = list(dict.fromkeys(s.family for s in scenarios))
    parameters = {
        "methods": method_list,
        "capacities": capacity_list,
        "families": family_order,
        "replicates": replicates,
        "sample_size": sample_size,
        "seed": seed,
        "ci_replicates": ci_replicates,
    }
    records: list[ScenarioRecord] = []
    total = len(scenarios) * len(method_list) * len(capacity_list)
    for method in method_list:
        for capacity in capacity_list:
            engine = SketchEngine(
                EngineConfig(method=method, capacity=capacity, seed=seed)
            )
            for index, scenario in enumerate(scenarios):
                records.append(
                    _measure(
                        scenario,
                        engine,
                        ci_replicates=ci_replicates,
                        # Stable per-measurement CI seed: independent of the
                        # method/capacity loop order.
                        ci_seed=seed * 1_000_003 + index,
                    )
                )
                if progress is not None:
                    progress(len(records), total)
    return ScenarioSuiteResult(
        records=records,
        parameters=parameters,
        seconds=time.perf_counter() - started,
        scenario_count=len(scenarios),
    )
