"""Statistical aggregation of scenario records into gateable cells.

Records are grouped into one *cell* per ``(family, method, capacity)``.
Each cell carries point metrics (bias, MAE, RMSE, CI coverage, refusal
correctness, ranking quality) **and their standard errors**, because the
accuracy gate does a z-test, not a bare threshold comparison: a metric
only fails the gate when it moved beyond tolerance *and* the move is
statistically significant given both runs' standard errors.  The RMSE
standard error uses the delta method (``Var(√m) ≈ Var(m) / 4m`` for the
mean squared error ``m``).

Ranking quality is computed per (method, capacity) across the *whole*
suite — Spearman correlation and top-k overlap between the estimated and
true MI rankings of all scored scenarios — because candidate ranking, not
any single estimate, is what the paper's discovery workflow consumes.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional

from repro.evaluation.metrics import spearman_correlation
from repro.scenarios.runner import ScenarioRecord

__all__ = ["summarize_records", "win_matrix", "perturb_records", "top_k_overlap"]


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _std(values: list[float]) -> float:
    """Population standard deviation (what the SE formulas below expect)."""
    if len(values) < 2:
        return 0.0
    mu = _mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def top_k_overlap(
    estimated: list[float], truth: list[float], k: Optional[int] = None
) -> float:
    """Fraction of the true top-k items recovered by the estimated top-k.

    Items are identified by position; ``k`` defaults to a third of the
    list (at least 1).  Returns 1.0 for empty input (nothing to miss).
    """
    if len(estimated) != len(truth):
        raise ValueError("estimated and truth rankings must align")
    if not truth:
        return 1.0
    if k is None:
        k = max(1, len(truth) // 3)
    k = min(k, len(truth))
    top_estimated = set(sorted(range(len(truth)), key=lambda i: -estimated[i])[:k])
    top_true = set(sorted(range(len(truth)), key=lambda i: -truth[i])[:k])
    return len(top_estimated & top_true) / k


def _cell_metrics(records: list[ScenarioRecord]) -> dict[str, Any]:
    """Point metrics + standard errors for one (family, method, capacity)."""
    scored = [r for r in records if r.estimate is not None and not r.expect_refusal]
    errors = [r.error for r in scored]
    n = len(errors)
    bias = _mean(errors)
    error_std = _std(errors)
    sq_errors = [e * e for e in errors]
    mse = _mean(sq_errors)
    rmse = math.sqrt(mse)
    # Delta method: Var(rmse) = Var(mse) / (4 * mse).
    rmse_se = (
        _std(sq_errors) / (2.0 * rmse * math.sqrt(n)) if n > 1 and rmse > 0 else 0.0
    )
    covered = [r.ci_covered for r in scored if r.ci_covered is not None]
    # A record behaves correctly when refusal matches expectation.
    correct = [r.refused == r.expect_refusal for r in records]
    return {
        "n": len(records),
        "n_scored": n,
        "bias": bias,
        "bias_se": error_std / math.sqrt(n) if n > 1 else 0.0,
        "mae": _mean([abs(e) for e in errors]),
        "rmse": rmse,
        "rmse_se": rmse_se,
        "error_std": error_std,
        "ci_coverage": _mean([1.0 if c else 0.0 for c in covered]) if covered else None,
        "ci_count": len(covered),
        "refusal_rate": _mean([1.0 if r.refused else 0.0 for r in records]),
        "behavior_correct": _mean([1.0 if c else 0.0 for c in correct]),
        "mean_join_size": _mean([float(r.join_size) for r in records]),
    }


def _ranking_metrics(records: list[ScenarioRecord]) -> dict[str, Any]:
    """Suite-wide ranking quality for one (method, capacity)."""
    scored = [r for r in records if r.estimate is not None and not r.expect_refusal]
    if len(scored) < 3:
        return {"spearman": None, "top_k_overlap": None, "n_ranked": len(scored)}
    estimates = [r.estimate for r in scored]
    truths = [r.true_mi for r in scored]
    return {
        "spearman": spearman_correlation(estimates, truths),
        "top_k_overlap": top_k_overlap(estimates, truths),
        "n_ranked": len(scored),
    }


def summarize_records(records: Iterable[ScenarioRecord]) -> dict[str, Any]:
    """Aggregate flat records into gateable cells and ranking summaries.

    Returns ``{"cells": {...}, "ranking": {...}}`` where ``cells`` maps
    ``"family|method|capacity"`` to the cell's metrics and ``ranking`` maps
    ``"method|capacity"`` to suite-wide ranking quality.  The pipe-joined
    keys are what :mod:`benchmarks.accuracy_gate` iterates.
    """
    records = list(records)
    by_cell: dict[tuple[str, str, int], list[ScenarioRecord]] = {}
    by_grid: dict[tuple[str, int], list[ScenarioRecord]] = {}
    for record in records:
        by_cell.setdefault((record.family, record.method, record.capacity), []).append(
            record
        )
        by_grid.setdefault((record.method, record.capacity), []).append(record)
    cells = {
        f"{family}|{method}|{capacity}": _cell_metrics(group)
        for (family, method, capacity), group in sorted(by_cell.items())
    }
    ranking = {
        f"{method}|{capacity}": _ranking_metrics(group)
        for (method, capacity), group in sorted(by_grid.items())
    }
    return {"cells": cells, "ranking": ranking}


def win_matrix(cells: dict[str, Any]) -> dict[str, Any]:
    """Per-method win counts: which method has the lowest RMSE per cell.

    For every ``(family, capacity)`` group the method with the smallest
    RMSE (among cells with at least one scored record) takes the win.
    Returns ``{"wins": {method: count}, "by_group": {"family|capacity":
    winner}}``.
    """
    groups: dict[tuple[str, int], list[tuple[str, float]]] = {}
    for key, metrics in cells.items():
        family, method, capacity = key.split("|")
        if metrics.get("n_scored", 0) > 0:
            groups.setdefault((family, int(capacity)), []).append(
                (method, metrics["rmse"])
            )
    wins: dict[str, int] = {}
    by_group: dict[str, str] = {}
    for (family, capacity), entries in sorted(groups.items()):
        winner = min(entries, key=lambda item: (item[1], item[0]))[0]
        by_group[f"{family}|{capacity}"] = winner
        wins[winner] = wins.get(winner, 0) + 1
    return {"wins": dict(sorted(wins.items())), "by_group": by_group}


def perturb_records(
    records: Iterable[ScenarioRecord], bias: float
) -> list[ScenarioRecord]:
    """Copies of ``records`` with every estimate shifted by ``bias``.

    Simulates a systematically biased estimator; used by the tests to
    demonstrate that an injected accuracy regression trips the gate.
    """
    perturbed = []
    for record in records:
        clone = ScenarioRecord(**{**record.as_row()})
        if clone.estimate is not None:
            clone.estimate += bias
            clone.error = clone.estimate - clone.true_mi
        perturbed.append(clone)
    return perturbed
