"""Small shared utilities used across the library."""

from repro.util.rng import RandomState, ensure_rng, spawn_rng
from repro.util.validation import (
    require,
    require_positive,
    require_in_range,
    require_same_length,
)

__all__ = [
    "RandomState",
    "ensure_rng",
    "spawn_rng",
    "require",
    "require_positive",
    "require_in_range",
    "require_same_length",
]
