"""Random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  The
helpers here normalise these inputs so that experiments are reproducible when
a seed is supplied and composable when a generator is threaded through a
pipeline.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["RandomState", "ensure_rng", "spawn_rng"]

#: Anything accepted as a source of randomness by the public API.
RandomState = Union[None, int, np.random.Generator]


def ensure_rng(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for a non-deterministic generator, an ``int`` seed for a
        reproducible generator, or an existing generator which is returned
        unchanged (so that callers can share a stream).
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int seed, or a numpy Generator; "
        f"got {type(random_state).__name__}"
    )


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are seeded from the parent stream, so results remain
    reproducible given the parent's seed while each child can be used in a
    different component without correlated draws.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]
