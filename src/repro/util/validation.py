"""Argument-validation helpers shared across the library.

These helpers keep validation one-liners at function entry points while
producing consistent, informative error messages.
"""

from __future__ import annotations

from typing import Any, Sized

__all__ = [
    "require",
    "require_positive",
    "require_in_range",
    "require_same_length",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str, *, strict: bool = True) -> None:
    """Validate that ``value`` is positive (strictly, by default)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def require_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> None:
    """Validate that ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    if inclusive:
        if not (low <= value <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    else:
        if not (low < value < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {value!r}")


def require_same_length(first: Sized, second: Sized, names: tuple[str, str]) -> None:
    """Validate that two sized collections have equal length."""
    if len(first) != len(second):
        raise ValueError(
            f"{names[0]} and {names[1]} must have the same length, "
            f"got {len(first)} and {len(second)}"
        )


def is_missing(value: Any) -> bool:
    """Return ``True`` for values the library treats as missing (NULL)."""
    if value is None:
        return True
    if isinstance(value, float) and value != value:  # NaN check without numpy
        return True
    return False
