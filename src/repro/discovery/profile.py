"""Column-pair profiling for the discovery index.

A *column pair* is one (join-key attribute, data attribute) combination of a
candidate table — the unit indexed by the discovery layer, mirroring the
two-column tables the paper builds from each source table in Section V-C.
Profiles record the statistics needed to pick an MI estimator and to report
results without re-reading the underlying table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.dtypes import DType
from repro.relational.table import Table

__all__ = ["ColumnPairProfile", "profile_column_pair"]


@dataclass(frozen=True)
class ColumnPairProfile:
    """Lightweight statistics of a (key column, value column) pair."""

    table_name: str
    key_column: str
    value_column: str
    num_rows: int
    key_distinct: int
    key_nulls: int
    value_dtype: DType
    value_distinct: int
    value_nulls: int

    @property
    def key_uniqueness(self) -> float:
        """Fraction of non-null key values that are distinct (1.0 = unique key)."""
        non_null = self.num_rows - self.key_nulls
        if non_null <= 0:
            return 0.0
        return self.key_distinct / non_null


def profile_column_pair(table: Table, key_column: str, value_column: str) -> ColumnPairProfile:
    """Profile one (key, value) column pair of a table."""
    keys = table.column(key_column)
    values = table.column(value_column)
    return ColumnPairProfile(
        table_name=table.name,
        key_column=key_column,
        value_column=value_column,
        num_rows=table.num_rows,
        key_distinct=keys.distinct_count(),
        key_nulls=keys.null_count(),
        value_dtype=values.dtype,
        value_distinct=values.distinct_count(),
        value_nulls=values.null_count(),
    )
