"""Column-pair profiling for the discovery index.

A *column pair* is one (join-key attribute, data attribute) combination of a
candidate table — the unit indexed by the discovery layer, mirroring the
two-column tables the paper builds from each source table in Section V-C.
Profiles record the statistics needed to pick an MI estimator and to report
results without re-reading the underlying table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.dtypes import DType
from repro.relational.table import Table

__all__ = ["ColumnPairProfile", "profile_column_pair"]


@dataclass(frozen=True)
class ColumnPairProfile:
    """Lightweight statistics of a (key column, value column) pair."""

    table_name: str
    key_column: str
    value_column: str
    num_rows: int
    key_distinct: int
    key_nulls: int
    value_dtype: DType
    value_distinct: int
    value_nulls: int

    @property
    def key_uniqueness(self) -> float:
        """Fraction of non-null key values that are distinct (1.0 = unique key)."""
        non_null = self.num_rows - self.key_nulls
        if non_null <= 0:
            return 0.0
        return self.key_distinct / non_null


def profile_column_pair(
    table: Table,
    key_column: str,
    value_column: str,
    *,
    key_stats: "tuple[int, int] | None" = None,
) -> ColumnPairProfile:
    """Profile one (key, value) column pair of a table.

    ``key_stats`` is an optional precomputed ``(key_distinct, key_nulls)``
    pair; when a table is profiled once per value column against the same
    join key, computing the key-side statistics once and passing them in
    avoids rescanning the key column for every pair.
    """
    values = table.column(value_column)
    if key_stats is None:
        keys = table.column(key_column)
        key_stats = (keys.distinct_count(), keys.null_count())
    return ColumnPairProfile(
        table_name=table.name,
        key_column=key_column,
        value_column=value_column,
        num_rows=table.num_rows,
        key_distinct=key_stats[0],
        key_nulls=key_stats[1],
        value_dtype=values.dtype,
        value_distinct=values.distinct_count(),
        value_nulls=values.null_count(),
    )
