"""Sketch index over a corpus of candidate tables.

The index is the offline half of the paper's pipeline: every candidate
(table, key column, value column, aggregate) combination is summarized by

* a candidate-side MI sketch (built once, reused by every query), and
* a KMV sketch of its distinct join-key values (used to estimate joinability
  / containment before spending effort on MI estimation).

At query time the base table is sketched once per (key, target) pair and
joined against every indexed candidate whose estimated key containment
passes the threshold; surviving candidates are ranked by their estimated MI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.exceptions import DiscoveryError, InsufficientSamplesError
from repro.discovery.profile import ColumnPairProfile, profile_column_pair
from repro.discovery.query import (
    AugmentationQuery,
    AugmentationResult,
    candidate_identifier,
    default_aggregate_for_dtype,
)
from repro.discovery.ranking import rank_results
from repro.relational.aggregate import AggregateFunction, get_aggregate
from repro.relational.table import Table
from repro.sketches.base import Sketch, get_builder
from repro.sketches.estimate import estimate_mi_from_sketches
from repro.sketches.kmv import KMVSketch

__all__ = ["SketchIndex", "IndexedCandidate"]


@dataclass
class IndexedCandidate:
    """One candidate entry of the index: profile + sketches."""

    candidate_id: str
    profile: ColumnPairProfile
    aggregate: str
    sketch: Sketch
    key_kmv: KMVSketch
    metadata: dict[str, object] = field(default_factory=dict)


class SketchIndex:
    """Offline sketch index supporting MI-based augmentation queries.

    Parameters
    ----------
    method:
        Sketching method used for MI sketches (default the paper's TUPSK).
    capacity:
        Sketch size ``n`` for both MI and KMV sketches.
    seed:
        Shared hash seed.  All sketches in one index (and the query-side
        sketches built at query time) must share it.
    """

    def __init__(self, method: str = "TUPSK", capacity: int = 1024, seed: int = 0):
        self.method = method
        self.capacity = int(capacity)
        self.seed = int(seed)
        self._candidates: dict[str, IndexedCandidate] = {}

    # ------------------------------------------------------------------ #
    # Offline: indexing candidates
    # ------------------------------------------------------------------ #
    def add_candidate(
        self,
        table: Table,
        key_column: str,
        value_column: str,
        *,
        agg: "str | AggregateFunction | None" = None,
        metadata: Optional[dict[str, object]] = None,
    ) -> IndexedCandidate:
        """Index one (table, key column, value column) candidate.

        The featurization function defaults to ``AVG`` for numeric value
        columns and ``MODE`` for categorical ones.  Indexing the same
        combination twice overwrites the previous entry.
        """
        profile = profile_column_pair(table, key_column, value_column)
        if agg is None:
            agg = default_aggregate_for_dtype(profile.value_dtype.is_numeric)
        agg = get_aggregate(agg)
        builder = get_builder(self.method, capacity=self.capacity, seed=self.seed)
        sketch = builder.sketch_candidate(table, key_column, value_column, agg=agg)
        key_kmv = KMVSketch.from_values(
            table.column(key_column).non_null_values(),
            capacity=self.capacity,
            seed=self.seed,
        )
        candidate_id = candidate_identifier(
            profile.table_name or f"table_{len(self._candidates)}",
            key_column,
            value_column,
            agg.value,
        )
        candidate = IndexedCandidate(
            candidate_id=candidate_id,
            profile=profile,
            aggregate=agg.value,
            sketch=sketch,
            key_kmv=key_kmv,
            metadata=dict(metadata or {}),
        )
        self._candidates[candidate_id] = candidate
        return candidate

    def add_table(
        self,
        table: Table,
        key_columns: Iterable[str],
        value_columns: Optional[Iterable[str]] = None,
    ) -> list[IndexedCandidate]:
        """Index every (key, value) column pair of a table.

        ``value_columns`` defaults to every column that is not a key column.
        """
        key_columns = list(key_columns)
        if value_columns is None:
            value_columns = [
                name for name in table.column_names if name not in key_columns
            ]
        added = []
        for key_column in key_columns:
            for value_column in value_columns:
                if value_column == key_column:
                    continue
                added.append(self.add_candidate(table, key_column, value_column))
        return added

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._candidates)

    @property
    def candidates(self) -> list[IndexedCandidate]:
        """All indexed candidates."""
        return list(self._candidates.values())

    def get(self, candidate_id: str) -> IndexedCandidate:
        """Look up an indexed candidate by identifier."""
        try:
            return self._candidates[candidate_id]
        except KeyError:
            raise DiscoveryError(f"unknown candidate {candidate_id!r}") from None

    # ------------------------------------------------------------------ #
    # Online: queries
    # ------------------------------------------------------------------ #
    def query(self, query: AugmentationQuery) -> list[AugmentationResult]:
        """Evaluate a relationship-discovery query against the index.

        Returns candidates ranked by estimated MI (descending), truncated to
        ``query.top_k``.  Candidates whose key containment is below
        ``query.min_containment`` or whose sketch join is smaller than
        ``query.min_join_size`` are skipped.
        """
        if len(self._candidates) == 0:
            raise DiscoveryError("the index is empty; add candidates before querying")
        builder = get_builder(self.method, capacity=self.capacity, seed=self.seed)
        base_sketch = builder.sketch_base(
            query.table, query.key_column, query.target_column
        )
        base_kmv = KMVSketch.from_values(
            query.table.column(query.key_column).non_null_values(),
            capacity=self.capacity,
            seed=self.seed,
        )
        results: list[AugmentationResult] = []
        for candidate in self._candidates.values():
            containment = base_kmv.containment_estimate(candidate.key_kmv)
            if containment < query.min_containment:
                continue
            try:
                estimate = estimate_mi_from_sketches(
                    base_sketch,
                    candidate.sketch,
                    min_join_size=query.min_join_size,
                )
            except InsufficientSamplesError:
                continue
            results.append(
                AugmentationResult(
                    candidate_id=candidate.candidate_id,
                    table_name=candidate.profile.table_name,
                    key_column=candidate.profile.key_column,
                    value_column=candidate.profile.value_column,
                    aggregate=candidate.aggregate,
                    estimator=estimate.estimator,
                    mi_estimate=estimate.mi,
                    sketch_join_size=estimate.join_size,
                    containment=containment,
                    value_dtype=candidate.profile.value_dtype.value,
                    metadata=dict(candidate.metadata),
                )
            )
        ranked = rank_results(results)
        return ranked[: query.top_k] if query.top_k else ranked

    def query_columns(
        self,
        table: Table,
        key_column: str,
        target_column: str,
        *,
        top_k: int = 10,
        min_containment: float = 0.0,
        min_join_size: int = 16,
    ) -> list[AugmentationResult]:
        """Convenience wrapper building the :class:`AugmentationQuery` inline."""
        return self.query(
            AugmentationQuery(
                table=table,
                key_column=key_column,
                target_column=target_column,
                top_k=top_k,
                min_containment=min_containment,
                min_join_size=min_join_size,
            )
        )
