"""Sketch index over a corpus of candidate tables.

The index is the offline half of the paper's pipeline: every candidate
(table, key column, value column, aggregate) combination is summarized by

* a candidate-side MI sketch (built once, reused by every query), and
* a KMV sketch of its distinct join-key values (used to estimate joinability
  / containment before spending effort on MI estimation).

At query time the base table is sketched once per (key, target) pair —
memoized by the engine session, so repeated queries over one base table
re-use the sketch — and estimated against every indexed candidate whose
key containment passes the threshold, optionally on a thread pool;
surviving candidates are ranked by their estimated MI.

The index is a thin discovery-specific shell over a
:class:`~repro.engine.SketchEngine`, which owns the sketching/estimation
configuration.  The pre-engine ``method=/capacity=/seed=`` constructor
keywords keep working through a deprecation shim.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.engine.config import EngineConfig
from repro.engine.session import SketchEngine
from repro.exceptions import DiscoveryError
from repro.discovery.profile import ColumnPairProfile, profile_column_pair
from repro.discovery.query import (
    AugmentationQuery,
    AugmentationResult,
    candidate_identifier,
)
from repro.relational.aggregate import AggregateFunction, get_aggregate
from repro.relational.table import Table
from repro.sketches.base import Sketch
from repro.sketches.kmv import KMVSketch

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.postings import PostingsIndex

__all__ = ["SketchIndex", "IndexedCandidate"]

#: Historical SketchIndex defaults, applied by the deprecation shim.
_LEGACY_DEFAULTS = {"method": "TUPSK", "capacity": 1024, "seed": 0}


@dataclass
class IndexedCandidate:
    """One candidate entry of the index: profile + sketches."""

    candidate_id: str
    profile: ColumnPairProfile
    aggregate: str
    sketch: Sketch
    key_kmv: KMVSketch
    metadata: dict[str, object] = field(default_factory=dict)


class SketchIndex:
    """Offline sketch index supporting MI-based augmentation queries.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.SketchEngine` session (or
        :class:`~repro.engine.EngineConfig`) that owns the sketching and
        estimation settings.  All sketches in one index (and the query-side
        sketches built at query time) share its method, capacity and seed.
    method, capacity, seed:
        Deprecated pre-engine keywords; passing any of them builds an
        engine from ``EngineConfig(method=..., capacity=..., seed=...)``
        (defaults TUPSK / 1024 / 0) and emits a :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        engine: "SketchEngine | EngineConfig | str | None" = None,
        *legacy_positional: int,
        config: Optional[EngineConfig] = None,
        method: Optional[str] = None,
        capacity: Optional[int] = None,
        seed: Optional[int] = None,
    ):
        if isinstance(engine, str):
            # Pre-engine signature was (method, capacity, seed), all
            # positional; a leading string is a legacy method name, possibly
            # followed by positional capacity and seed.
            if len(legacy_positional) > 2:
                raise TypeError(
                    "SketchIndex takes at most the legacy (method, capacity, seed) "
                    f"positional arguments, got {1 + len(legacy_positional)}"
                )
            if method is not None:
                raise TypeError("SketchIndex() got multiple values for argument 'method'")
            method, engine = engine, None
            if legacy_positional:
                if capacity is not None:
                    raise TypeError(
                        "SketchIndex() got multiple values for argument 'capacity'"
                    )
                capacity = legacy_positional[0]
            if len(legacy_positional) > 1:
                if seed is not None:
                    raise TypeError(
                        "SketchIndex() got multiple values for argument 'seed'"
                    )
                seed = legacy_positional[1]
        elif legacy_positional:
            raise TypeError(
                "positional arguments beyond the first are only supported for "
                "the legacy (method, capacity, seed) string form"
            )
        legacy = {
            name: value
            for name, value in {"method": method, "capacity": capacity, "seed": seed}.items()
            if value is not None
        }
        if engine is not None and (config is not None or legacy):
            raise DiscoveryError(
                "pass either an engine, a config, or the deprecated "
                "method/capacity/seed keywords — not a combination"
            )
        if legacy:
            if config is not None:
                raise DiscoveryError(
                    "pass either config= or the deprecated method/capacity/seed "
                    "keywords, not both"
                )
            warnings.warn(
                "SketchIndex(method=..., capacity=..., seed=...) is deprecated; "
                "construct the index with SketchIndex(EngineConfig(method=..., "
                "capacity=..., seed=...)) or pass a SketchEngine session instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = EngineConfig(**{**_LEGACY_DEFAULTS, **legacy})
        if isinstance(engine, EngineConfig):
            engine = SketchEngine(engine)
        if engine is None:
            engine = SketchEngine(config if config is not None else EngineConfig(**_LEGACY_DEFAULTS))
        self._engine = engine
        self._candidates: dict[str, IndexedCandidate] = {}
        self._generation = 0
        self._postings: Optional["PostingsIndex"] = None

    # ------------------------------------------------------------------ #
    # Configuration views
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> SketchEngine:
        """The engine session backing this index."""
        return self._engine

    @property
    def config(self) -> EngineConfig:
        """The engine configuration shared by every sketch in the index."""
        return self._engine.config

    @property
    def method(self) -> str:
        """Sketching method used for MI sketches."""
        return self._engine.config.method

    @property
    def capacity(self) -> int:
        """Sketch size ``n`` for both MI and KMV sketches."""
        return self._engine.config.capacity

    @property
    def seed(self) -> int:
        """Shared hash seed of every sketch in the index."""
        return self._engine.config.seed

    # ------------------------------------------------------------------ #
    # Offline: indexing candidates
    # ------------------------------------------------------------------ #
    def add_candidate(
        self,
        table: Table,
        key_column: str,
        value_column: str,
        *,
        agg: "str | AggregateFunction | None" = None,
        metadata: Optional[dict[str, object]] = None,
    ) -> IndexedCandidate:
        """Index one (table, key column, value column) candidate.

        The featurization function defaults to ``AVG`` for numeric value
        columns and ``MODE`` for categorical ones.  Indexing the same
        combination twice overwrites the previous entry.
        """
        profile = profile_column_pair(table, key_column, value_column)
        if agg is None:
            agg = self.config.default_aggregate_for(profile.value_dtype)
        agg = get_aggregate(agg)
        sketch = self._engine.sketch_candidate(table, key_column, value_column, agg=agg)
        key_kmv = self._engine.key_sketch(table, key_column)
        candidate_id = candidate_identifier(
            profile.table_name or f"table_{len(self._candidates)}",
            key_column,
            value_column,
            agg.value,
        )
        candidate = IndexedCandidate(
            candidate_id=candidate_id,
            profile=profile,
            aggregate=agg.value,
            sketch=sketch,
            key_kmv=key_kmv,
            metadata=dict(metadata or {}),
        )
        self._install_candidate(candidate)
        return candidate

    def _install_candidate(self, candidate: IndexedCandidate) -> None:
        """Insert (or overwrite) one candidate, keeping the postings in step.

        The posting index is updated *before* the candidate map: a query
        planning concurrently with a live registration may then see a
        posting entry for a not-yet-visible candidate (harmless — probes
        are matched against the caller's candidate snapshot) but never a
        visible candidate missing from the postings, which would break the
        probe-superset guarantee.
        """
        if self._postings is not None:
            self._postings.add(candidate.candidate_id, candidate.key_kmv.hashes)
        self._candidates[candidate.candidate_id] = candidate
        self._generation += 1

    def add_prebuilt(self, candidate: IndexedCandidate) -> IndexedCandidate:
        """Merge an already-built candidate into the index.

        Entry point for the sharded :class:`~repro.discovery.builder.
        IndexBuilder` and for index persistence: the candidate's sketches
        were built elsewhere (a worker process, a saved store) and are
        verified to be joinable under this index's configuration before
        being added.  Re-adding a ``candidate_id`` overwrites the entry,
        exactly like :meth:`add_candidate`.
        """
        sketch = candidate.sketch
        expected_method, expected_capacity, expected_seed = self.config.sketch_key
        if (
            sketch.method != expected_method
            or sketch.seed != expected_seed
            or candidate.key_kmv.seed != expected_seed
        ):
            raise DiscoveryError(
                f"candidate {candidate.candidate_id!r} was sketched with "
                f"method={sketch.method!r} seed={sketch.seed} but the index "
                f"expects method={expected_method!r} seed={expected_seed}"
            )
        if sketch.capacity != expected_capacity:
            raise DiscoveryError(
                f"candidate {candidate.candidate_id!r} was sketched with "
                f"capacity={sketch.capacity} but the index expects "
                f"capacity={expected_capacity}"
            )
        self._install_candidate(candidate)
        return candidate

    def remove_candidate(self, candidate_id: str) -> IndexedCandidate:
        """Remove one candidate; returns the removed entry.

        The candidate map is updated *before* the postings — the mirror
        image of :meth:`_install_candidate` — so a concurrent query may see
        a leftover posting entry for an already-removed candidate (harmless:
        probes are matched against the caller's candidate snapshot) but
        never a visible candidate missing from the postings.
        """
        try:
            candidate = self._candidates.pop(candidate_id)
        except KeyError:
            raise DiscoveryError(f"unknown candidate {candidate_id!r}") from None
        if self._postings is not None:
            self._postings.discard(candidate_id)
        self._generation += 1
        return candidate

    def remove_table(self, name: str, *, missing_ok: bool = False) -> list[IndexedCandidate]:
        """Remove every candidate whose profile names ``name``.

        Raises :class:`DiscoveryError` when no candidate matches, unless
        ``missing_ok`` (the replace-semantics path of WAL replay, where a
        register delta first clears any previous version of the table).
        """
        matching = [
            candidate_id
            for candidate_id, candidate in self._candidates.items()
            if candidate.profile.table_name == name
        ]
        if not matching and not missing_ok:
            raise DiscoveryError(f"no indexed candidates for table {name!r}")
        return [self.remove_candidate(candidate_id) for candidate_id in matching]

    def add_table(
        self,
        table: Table,
        key_columns: Iterable[str],
        value_columns: Optional[Iterable[str]] = None,
    ) -> list[IndexedCandidate]:
        """Index every (key, value) column pair of a table.

        ``value_columns`` defaults to every column that is not a key column.
        """
        key_columns = list(key_columns)
        if value_columns is None:
            value_columns = [
                name for name in table.column_names if name not in key_columns
            ]
        added = []
        for key_column in key_columns:
            for value_column in value_columns:
                if value_column == key_column:
                    continue
                added.append(self.add_candidate(table, key_column, value_column))
        return added

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._candidates)

    @property
    def generation(self) -> int:
        """Mutation counter: bumped on every candidate added or overwritten.

        The serving layer folds this into its cache fingerprints so results
        cached against an older state of a live index can never be served
        after the index changes.
        """
        return self._generation

    @property
    def candidates(self) -> list[IndexedCandidate]:
        """All indexed candidates."""
        return list(self._candidates.values())

    def get(self, candidate_id: str) -> IndexedCandidate:
        """Look up an indexed candidate by identifier."""
        try:
            return self._candidates[candidate_id]
        except KeyError:
            raise DiscoveryError(f"unknown candidate {candidate_id!r}") from None

    # ------------------------------------------------------------------ #
    # Posting index (sublinear candidate generation)
    # ------------------------------------------------------------------ #
    @property
    def postings(self) -> Optional["PostingsIndex"]:
        """The inverted key index over retained KMV hashes, when enabled.

        ``None`` means candidate generation falls back to the full
        per-candidate scan (the behaviour of indexes loaded from
        pre-postings directories, and of indexes populated through the
        plain ``add_candidate``/``add_table`` path without calling
        :meth:`enable_postings`).
        """
        return self._postings

    def enable_postings(self) -> "PostingsIndex":
        """Build (or rebuild) the posting index over the current candidates.

        One vectorized bulk construction over every candidate's retained
        KMV hashes; afterwards the index maintains the postings
        incrementally on every candidate added or overwritten.  Idempotent
        in effect: calling it again rebuilds from the live candidate set.
        """
        from repro.postings import PostingsIndex

        self._postings = PostingsIndex.from_entries(
            (candidate.candidate_id, candidate.key_kmv.hashes)
            for candidate in self._candidates.values()
        )
        return self._postings

    def attach_postings(self, postings: "PostingsIndex") -> "PostingsIndex":
        """Adopt a prebuilt posting index (the persisted sidecar).

        The posting index must cover exactly this index's candidates —
        anything else would let the probe skip a live candidate and change
        answers — so the identifier sets are verified before adoption.
        """
        if postings.ids() != set(self._candidates):
            raise DiscoveryError(
                "posting index does not match the index candidates; rebuild "
                "it with enable_postings() or `repro index postings build`"
            )
        self._postings = postings
        return postings

    # ------------------------------------------------------------------ #
    # Online: queries
    # ------------------------------------------------------------------ #
    def query(
        self,
        query: AugmentationQuery,
        *,
        max_workers: Optional[int] = None,
        use_postings: bool = True,
    ) -> list[AugmentationResult]:
        """Evaluate a relationship-discovery query against the index.

        Returns candidates ranked by estimated MI (descending), truncated to
        ``query.top_k``.  Candidates whose key containment is below
        ``query.min_containment`` or whose sketch join is smaller than
        ``query.min_join_size`` are skipped.  ``max_workers > 1`` runs the
        per-candidate MI estimates on a thread pool; results are identical
        to the sequential path.

        When the index carries a posting index (see :meth:`postings`) and
        ``use_postings`` is left on, candidate generation probes it instead
        of scanning every candidate — same answers, sublinear work; pass
        ``use_postings=False`` to force the full scan (the CLI's
        ``--no-postings`` escape hatch).

        The evaluation itself is delegated to the
        :class:`~repro.serving.planner.QueryPlanner` — the same pruning and
        ranking pipeline behind :class:`~repro.serving.service.
        DiscoveryService` — so in-process and served answers come from one
        implementation and cannot drift apart.
        """
        if len(self._candidates) == 0:
            raise DiscoveryError("the index is empty; add candidates before querying")
        # Imported lazily: the serving layer builds on the discovery layer.
        from repro.serving.planner import QueryPlanner

        # Snapshot the candidate set up front so a query races with live
        # registration (DiscoveryService.register_table) only at snapshot
        # granularity, never mid-plan.  The candidate snapshot is taken
        # before the postings reference: installs publish postings first,
        # so the probe covers every snapshotted candidate.
        candidates = self.candidates
        return QueryPlanner(self._engine).run(
            candidates,
            query,
            max_workers=max_workers,
            postings=self._postings if use_postings else None,
        )

    def query_columns(
        self,
        table: Table,
        key_column: str,
        target_column: str,
        *,
        top_k: int = 10,
        min_containment: float = 0.0,
        min_join_size: int = 16,
        max_workers: Optional[int] = None,
        use_postings: bool = True,
    ) -> list[AugmentationResult]:
        """Convenience wrapper building the :class:`AugmentationQuery` inline."""
        return self.query(
            AugmentationQuery(
                table=table,
                key_column=key_column,
                target_column=target_column,
                top_k=top_k,
                min_containment=min_containment,
                min_join_size=min_join_size,
            ),
            max_workers=max_workers,
            use_postings=use_postings,
        )
