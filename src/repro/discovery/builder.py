"""Sharded, parallel construction of a :class:`~repro.discovery.index.SketchIndex`.

Index construction is the offline half of the paper's pipeline and dominates
the cost of onboarding a data lake: every (table, key column, value column)
combination must be profiled, KMV-sketched and MI-sketched once.  The plain
:meth:`SketchIndex.add_table` loop does that one candidate at a time,
recomputing the key-side work (NULL filtering, grouping, candidate-key
selection, key hashing, the KMV sketch and the key statistics) for every
value column of a table.

The :class:`IndexBuilder` fixes both axes of that cost:

* **Shared key-side work** — candidates are built per ``(table, key)``
  *column family* through :class:`~repro.sketches.base.KeyGroups`, so the
  key-side work is done once per family instead of once per candidate.  The
  resulting sketches are identical, tuple for tuple, to the serial path.
* **Vectorized hashing** — with ``EngineConfig.vectorized`` (the default)
  each shard's key selection, key hashing and KMV construction run through
  the batched NumPy fast paths of :mod:`repro.hashing`, which are
  bit-identical to the scalar reference; the flag round-trips through the
  config document handed to worker processes.
* **Sharding + process parallelism** — registered tables are partitioned
  into shards by a stable hash of the table name.  Shards are built
  independently, optionally on a :class:`~concurrent.futures.
  ProcessPoolExecutor` (``max_workers``, default from
  ``EngineConfig.build_workers``), and merged in registration order, so a
  sharded build and a serial build produce the same index.
* **Incremental invalidation** — built shards are cached;
  :meth:`add_table` / :meth:`remove_table` invalidate only the affected
  shard, so growing or shrinking a lake re-sketches one shard, not the
  whole index.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.discovery.index import IndexedCandidate, SketchIndex
from repro.discovery.profile import profile_column_pair
from repro.discovery.query import candidate_identifier
from repro.engine.config import EngineConfig
from repro.engine.session import SketchEngine
from repro.exceptions import DiscoveryError
from repro.relational.aggregate import get_aggregate
from repro.relational.table import Table
from repro.sketches.base import KeyGroups

__all__ = ["IndexBuilder", "shard_for_table"]


def shard_for_table(name: str, num_shards: int) -> int:
    """Stable shard assignment: CRC32 of the table name, modulo shard count.

    The assignment must be identical across processes and sessions (it
    drives incremental invalidation), so it uses CRC32 rather than the
    per-process-randomized builtin ``hash``.
    """
    if num_shards < 1:
        raise DiscoveryError(f"num_shards must be at least 1, got {num_shards}")
    return zlib.crc32(name.encode("utf-8")) % num_shards


@dataclass(frozen=True)
class _ColumnSpec:
    """One candidate column within a table entry."""

    sequence: int  # global registration order; merge order of the index
    value_column: str
    agg: Optional[str]  # resolved later from the config when None


@dataclass
class _TableEntry:
    """One registered table with its candidate column families."""

    name: str
    table: Table
    # key_column -> ordered column specs sharing that join key
    families: dict[str, list[_ColumnSpec]] = field(default_factory=dict)
    metadata: dict[str, object] = field(default_factory=dict)


def _build_shard(
    config_document: dict, entries: list[_TableEntry]
) -> list[tuple[int, IndexedCandidate]]:
    """Build every candidate of one shard (runs in a worker process).

    Module-level so it pickles under any multiprocessing start method.
    Returns ``(sequence, candidate)`` pairs; the caller merges shards back
    into registration order.
    """
    engine = SketchEngine(EngineConfig.from_dict(config_document))
    built: list[tuple[int, IndexedCandidate]] = []
    for entry in entries:
        table = entry.table
        for key_column, columns in entry.families.items():
            key_groups = KeyGroups(table, key_column)
            key_kmv = engine.key_sketch(table, key_column)
            key_side = table.column(key_column)
            key_stats = (key_side.distinct_count(), key_side.null_count())
            for spec in columns:
                profile = profile_column_pair(
                    table, key_column, spec.value_column, key_stats=key_stats
                )
                if spec.agg is not None:
                    agg = get_aggregate(spec.agg)
                else:
                    agg = engine.config.default_aggregate_for(profile.value_dtype)
                sketch = engine.sketch_candidate(
                    table,
                    key_column,
                    spec.value_column,
                    agg=agg,
                    key_groups=key_groups,
                )
                candidate_id = candidate_identifier(
                    entry.name, key_column, spec.value_column, agg.value
                )
                built.append(
                    (
                        spec.sequence,
                        IndexedCandidate(
                            candidate_id=candidate_id,
                            profile=profile,
                            aggregate=agg.value,
                            sketch=sketch,
                            key_kmv=key_kmv,
                            metadata=dict(entry.metadata),
                        ),
                    )
                )
    return built


class IndexBuilder:
    """Builds a :class:`SketchIndex` from registered tables, shard by shard.

    Parameters
    ----------
    engine:
        A :class:`SketchEngine` session or :class:`EngineConfig` fixing the
        sketching configuration (defaults to the library defaults).
    num_shards:
        Number of shards tables are partitioned into; defaults to the
        config's ``build_shards``.
    max_workers:
        Default number of worker processes for :meth:`build`; defaults to
        the config's ``build_workers``.  Values of 0 or 1 build in-process.

    Typical usage::

        builder = IndexBuilder(EngineConfig(capacity=1024), max_workers=4)
        for table in lake:
            builder.add_table(table, key_columns=["key"])
        index = builder.build()
        builder.add_table(late_arrival, key_columns=["key"])
        index = builder.build()   # re-sketches only the affected shard
    """

    def __init__(
        self,
        engine: "SketchEngine | EngineConfig | None" = None,
        *,
        num_shards: Optional[int] = None,
        max_workers: Optional[int] = None,
    ):
        if isinstance(engine, EngineConfig):
            engine = SketchEngine(engine)
        elif engine is None:
            engine = SketchEngine(EngineConfig())
        elif not isinstance(engine, SketchEngine):
            raise DiscoveryError(
                f"engine must be a SketchEngine or EngineConfig, "
                f"got {type(engine).__name__}"
            )
        self._engine = engine
        config = engine.config
        self.num_shards = int(num_shards if num_shards is not None else config.build_shards)
        if self.num_shards < 1:
            raise DiscoveryError(f"num_shards must be at least 1, got {self.num_shards}")
        self.max_workers = int(
            max_workers if max_workers is not None else config.build_workers
        )
        self._tables: dict[str, _TableEntry] = {}
        # Streamed tables arrive pre-built (their source was consumed in one
        # pass and cannot be re-sketched), keyed by name like _tables.
        self._streamed: dict[str, list[tuple[int, IndexedCandidate]]] = {}
        self._dirty: set[int] = set()
        self._shard_cache: dict[int, list[tuple[int, IndexedCandidate]]] = {}
        self._sequence = 0
        # Monotonic counter for unnamed-table fallback names; never reused,
        # so removing a table cannot make a later anonymous registration
        # collide with (and silently replace) a surviving one.
        self._anonymous = 0
        # When a write-ahead log is attached the builder stops being a batch
        # accumulator: every registration/removal becomes a durable delta.
        self._wal = None

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> SketchEngine:
        """The engine session fixing the builder's sketch configuration."""
        return self._engine

    @property
    def config(self) -> EngineConfig:
        """The engine configuration shared by every sketch the builder makes."""
        return self._engine.config

    @property
    def table_names(self) -> list[str]:
        """Registered table names (batch-registered first, then streamed)."""
        return list(self._tables) + list(self._streamed)

    def attach_wal(self, wal) -> None:
        """Turn the builder into a write-ahead-delta appender.

        With a :class:`~repro.maintenance.wal.WriteAheadLog` attached,
        :meth:`add_table` / :meth:`add_table_stream` / :meth:`remove_table`
        durably append register/remove deltas (the candidates are still
        built right here, eagerly) instead of accumulating state for
        :meth:`build` — materializing the index becomes the compactor's
        job.  Must be attached before any table is registered.
        """
        if self._tables or self._streamed:
            raise DiscoveryError(
                "attach_wal must be called on an empty builder; this one "
                "already holds registered tables"
            )
        self._wal = wal

    def _append_register_delta(
        self, name: str, built: list[tuple[int, IndexedCandidate]]
    ) -> None:
        from repro.maintenance.deltas import candidate_to_document

        self._wal.append(
            "register_table",
            name,
            [candidate_to_document(candidate) for _, candidate in built],
        )

    def __len__(self) -> int:
        """Number of registered candidate (key, value) column specs."""
        return sum(
            len(columns)
            for entry in self._tables.values()
            for columns in entry.families.values()
        ) + sum(len(entries) for entries in self._streamed.values())

    def add_table(
        self,
        table: Table,
        key_columns: Iterable[str],
        value_columns: Optional[Iterable[str]] = None,
        *,
        name: Optional[str] = None,
        agg: Optional[str] = None,
        metadata: Optional[dict[str, object]] = None,
    ) -> str:
        """Register every (key, value) column pair of a table for building.

        ``value_columns`` defaults to every non-key column, mirroring
        :meth:`SketchIndex.add_table`.  The table is addressed by ``name``
        (default: ``table.name``, or a stable ``table_<n>`` fallback for
        unnamed tables — unlike the legacy serial path, which numbers
        unnamed tables per *candidate*, so candidate identifiers for
        unnamed tables differ between the two paths; name your tables when
        identifiers must line up).  Re-registering a name replaces the
        previous table and invalidates only its shard.  Returns the
        registered name.
        """
        if not name:
            name = table.name
        if not name:
            name = f"table_{self._anonymous}"
            self._anonymous += 1
        key_columns = list(key_columns)
        if not key_columns:
            raise DiscoveryError(f"table {name!r} needs at least one key column")
        for key_column in key_columns:
            table.column(key_column)  # raises ColumnNotFoundError early
        if value_columns is None:
            value_list = [
                column for column in table.column_names if column not in key_columns
            ]
        else:
            value_list = list(value_columns)
            for value_column in value_list:
                table.column(value_column)
        entry = _TableEntry(name=name, table=table, metadata=dict(metadata or {}))
        for key_column in key_columns:
            columns = []
            for value_column in value_list:
                if value_column == key_column:
                    continue
                columns.append(
                    _ColumnSpec(
                        sequence=self._sequence, value_column=value_column, agg=agg
                    )
                )
                self._sequence += 1
            if columns:
                entry.families[key_column] = columns
        if not entry.families:
            raise DiscoveryError(
                f"table {name!r} has no candidate (key, value) column pairs"
            )
        if self._wal is not None:
            # Durable-delta mode: sketch the table now (same shared-key-work
            # path as a batch build) and append it to the log instead of
            # accumulating builder state.
            built = _build_shard(self.config.to_dict(), [entry])
            self._append_register_delta(name, built)
            return name
        self._streamed.pop(name, None)
        self._tables[name] = entry
        self._dirty.add(self.shard_of(name))
        return name

    def add_table_stream(
        self,
        source,
        key_columns: Iterable[str],
        value_columns: Optional[Iterable[str]] = None,
        *,
        name: Optional[str] = None,
        agg: Optional[str] = None,
        metadata: Optional[dict[str, object]] = None,
    ) -> str:
        """Register and sketch a table from a chunked source, in one pass.

        ``source`` is anything the pluggable source registry resolves
        (:func:`~repro.ingest.sources.open_source`): a
        :class:`~repro.ingest.reader.TableReader`, a plain :class:`Table`
        (chunked internally), a path to a CSV/Parquet table file or an
        iterable of ``Table`` chunks sharing one schema.  The source is
        consumed *now* — its
        candidates are profiled, KMV-sketched and MI-sketched chunk by
        chunk through :class:`~repro.ingest.ingestor.TableIngestor`, never
        materializing the table — and merged by :meth:`build` in
        registration order, so a streamed and a batch-registered copy of
        the same table produce identical indexes.  Re-registering a name
        (either way) replaces the previous table.  Returns the registered
        name.
        """
        # Imported lazily: the ingest subsystem builds on the discovery layer.
        from repro.exceptions import IngestError
        from repro.ingest.ingestor import TableIngestor
        from repro.ingest.reader import iter_chunks

        source_name, chunks = iter_chunks(source)
        if not name:
            name = source_name
        if not name:
            name = f"table_{self._anonymous}"
            self._anonymous += 1
        try:
            ingestor = TableIngestor(
                self._engine,
                key_columns,
                value_columns,
                name=name,
                agg=agg,
                metadata=metadata,
            )
            candidates = ingestor.extend(chunks).finalize()
        except IngestError as exc:
            # Surface registration problems (no key columns, no candidate
            # pairs, schema drift) as the discovery layer's error type,
            # matching what add_table raises for the same misuse.
            raise DiscoveryError(str(exc)) from exc
        entries = []
        for candidate in candidates:
            entries.append((self._sequence, candidate))
            self._sequence += 1
        if self._wal is not None:
            self._append_register_delta(name, entries)
            return name
        if name in self._tables:
            del self._tables[name]
            self._dirty.add(self.shard_of(name))
        self._streamed[name] = entries
        return name

    def remove_table(self, name: str) -> None:
        """Unregister a table, invalidating its shard for the next build.

        With an attached write-ahead log this appends a durable
        ``remove_table`` delta instead (the next compaction drops the
        table's candidates from the published generation).
        """
        if self._wal is not None:
            self._wal.append("remove_table", name)
            return
        if name in self._streamed:
            del self._streamed[name]
            return
        if name not in self._tables:
            raise DiscoveryError(f"unknown table {name!r}")
        del self._tables[name]
        self._dirty.add(self.shard_of(name))

    def shard_of(self, name: str) -> int:
        """Shard the given table name maps to."""
        return shard_for_table(name, self.num_shards)

    @property
    def dirty_shards(self) -> set[int]:
        """Shards that will be (re)built by the next :meth:`build` call."""
        return set(self._dirty)

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #
    def build(
        self,
        *,
        max_workers: Optional[int] = None,
        into: Optional[SketchIndex] = None,
        postings: bool = True,
    ) -> SketchIndex:
        """Build (or refresh) the index from the registered tables.

        Only dirty shards are re-sketched; clean shards are served from the
        builder's cache.  With ``max_workers > 1`` the dirty shards are
        built on a :class:`ProcessPoolExecutor`; results are merged in
        registration order, so the index is identical to a serial build.
        ``into`` merges the candidates into an existing index (which must
        share the builder's sketch configuration) instead of a new one.

        Unless ``postings=False``, the finished index carries a posting
        index for sublinear candidate generation: every shard's retained
        KMV keys are merged into one :class:`~repro.postings.PostingsIndex`
        at finalize (an ``into`` index that already has one is maintained
        incrementally as candidates are merged in).
        """
        if self._wal is not None:
            raise DiscoveryError(
                "this builder appends durable deltas to a write-ahead log; "
                "materialize the index by compacting the log (`repro index "
                "compact`, or repro.maintenance.Compactor) instead of build()"
            )
        workers = self.max_workers if max_workers is None else int(max_workers)
        shard_entries: dict[int, list[_TableEntry]] = {}
        for entry in self._tables.values():
            shard_entries.setdefault(self.shard_of(entry.name), []).append(entry)

        # Drop cache entries for shards that lost all their tables.
        for shard in list(self._shard_cache):
            if shard not in shard_entries:
                del self._shard_cache[shard]

        to_build = sorted(
            shard
            for shard in shard_entries
            if shard in self._dirty or shard not in self._shard_cache
        )
        if to_build:
            config_document = self.config.to_dict()
            if workers > 1 and len(to_build) > 1:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(to_build))
                ) as pool:
                    futures = {
                        shard: pool.submit(
                            _build_shard, config_document, shard_entries[shard]
                        )
                        for shard in to_build
                    }
                    for shard, future in futures.items():
                        self._shard_cache[shard] = future.result()
            else:
                for shard in to_build:
                    self._shard_cache[shard] = _build_shard(
                        config_document, shard_entries[shard]
                    )
        self._dirty.clear()

        merged: list[tuple[int, IndexedCandidate]] = []
        for shard in sorted(self._shard_cache):
            merged.extend(self._shard_cache[shard])
        for entries in self._streamed.values():
            merged.extend(entries)
        merged.sort(key=lambda pair: pair[0])

        index = into if into is not None else SketchIndex(self._engine)
        for _, candidate in merged:
            index.add_prebuilt(candidate)
        if postings and index.postings is None:
            index.enable_postings()
        return index
