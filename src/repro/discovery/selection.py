"""Greedy MI-based selection of augmentation features.

Sketch-based discovery produces a *shortlist* of candidate augmentations
ranked by their individual MI with the target.  Candidates are often
redundant with each other (several weather tables, several demographic
tables), so the last step of the pipeline — after materializing only the
shortlisted joins — is a classic information-theoretic filter selection:
greedily pick the feature with the largest *conditional* MI with the target
given the features already selected (Section I of the paper: "regression and
classification errors are minimized when features having the largest
conditional MI with the target are selected").

Numeric features and targets are discretized with equal-width bins before
computing the plug-in (conditional) MI, which keeps the procedure applicable
to arbitrary column types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Sequence

from repro.estimators.conditional import conditional_mutual_information, discretize_equal_width
from repro.exceptions import DiscoveryError

__all__ = ["SelectedFeature", "greedy_feature_selection"]


@dataclass(frozen=True)
class SelectedFeature:
    """One feature picked by the greedy selection, with its marginal gain."""

    name: str
    rank: int
    gain: float          # conditional MI with the target given prior picks
    relevance: float     # unconditional MI with the target


def _discretized(values: Sequence[Any], bins: int) -> list[Hashable]:
    return discretize_equal_width(values, bins=bins)


def greedy_feature_selection(
    features: Mapping[str, Sequence[Any]],
    target: Sequence[Any],
    *,
    k: int = 5,
    bins: int = 12,
    min_gain: float = 0.0,
) -> list[SelectedFeature]:
    """Greedily select up to ``k`` features by conditional MI with the target.

    Parameters
    ----------
    features:
        Mapping from feature name to its column of values, all aligned with
        ``target`` (e.g. the feature columns of materialized augmentations).
    target:
        Target column values.
    k:
        Maximum number of features to select.
    bins:
        Number of equal-width bins used to discretize numeric columns.
    min_gain:
        Stop early once the best remaining conditional-MI gain drops to this
        value or below (0 by default: stop when a feature adds nothing).

    Returns
    -------
    list[SelectedFeature]
        Selected features in pick order with their conditional-MI gains.
    """
    if k < 1:
        raise ValueError("k must be a positive integer")
    if not features:
        raise DiscoveryError("no candidate features to select from")
    lengths = {name: len(values) for name, values in features.items()}
    if any(length != len(target) for length in lengths.values()):
        raise DiscoveryError(
            "every feature column must be aligned with the target "
            f"(target has {len(target)} rows, features have {lengths})"
        )

    target_discrete = _discretized(target, bins)
    feature_discrete = {
        name: _discretized(values, bins) for name, values in features.items()
    }
    relevance = {
        name: conditional_mutual_information(values, target_discrete)
        for name, values in feature_discrete.items()
    }

    selected: list[SelectedFeature] = []
    remaining = set(feature_discrete)
    conditioning: list[tuple] = [()] * len(target_discrete)

    while remaining and len(selected) < k:
        best_name = None
        best_gain = float("-inf")
        for name in sorted(remaining):
            gain = conditional_mutual_information(
                feature_discrete[name],
                target_discrete,
                conditioning if selected else None,
            )
            if gain > best_gain:
                best_name, best_gain = name, gain
        if best_name is None or best_gain <= min_gain:
            break
        selected.append(
            SelectedFeature(
                name=best_name,
                rank=len(selected) + 1,
                gain=float(best_gain),
                relevance=float(relevance[best_name]),
            )
        )
        remaining.discard(best_name)
        picked_column = feature_discrete[best_name]
        conditioning = [
            existing + (value,) for existing, value in zip(conditioning, picked_column)
        ]
    return selected
