"""Ranking of discovery results.

MI estimates produced by different estimators (MLE vs the KSG family) live on
systematically different scales — Section V-C3 of the paper shows MLE
estimates reaching the 4-6 nats range while KSG-based estimates stay below 2
on the same corpus — so the paper recommends producing *separate rankings per
estimator* rather than a single mixed ranking.  Both behaviours are provided.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Sequence

from repro.discovery.query import AugmentationResult

__all__ = ["rank_results", "top_k_results", "top_k_per_estimator"]


def _rank_key(result: AugmentationResult) -> tuple[float, int]:
    return (result.mi_estimate, result.sketch_join_size)


def rank_results(results: Sequence[AugmentationResult]) -> list[AugmentationResult]:
    """Sort results by MI estimate (descending), ties broken by join size."""
    return sorted(results, key=_rank_key, reverse=True)


def top_k_results(
    results: Sequence[AugmentationResult], k: int
) -> list[AugmentationResult]:
    """The ``k`` best results under the :func:`rank_results` order.

    Uses a bounded heap (``O(n log k)``) instead of a full sort, so ranking
    cost scales with the answer size, not the candidate count.  The output —
    including the order of remaining ties, which both paths break by input
    position — is exactly ``rank_results(results)[:k]``; ``k <= 0`` means
    "no truncation" (matching ``AugmentationQuery.top_k`` semantics) and
    falls back to the full sort.
    """
    if k <= 0 or k >= len(results):
        return rank_results(results)
    return heapq.nlargest(k, results, key=_rank_key)


def top_k_per_estimator(
    results: Sequence[AugmentationResult], k: int = 10
) -> dict[str, list[AugmentationResult]]:
    """Group results by estimator and return the top-``k`` of each group.

    This is the comparison-safe presentation recommended by the paper: the
    caller (or a downstream task-specific evaluation) decides how to merge
    the per-estimator lists.
    """
    if k < 1:
        raise ValueError("k must be a positive integer")
    groups: dict[str, list[AugmentationResult]] = defaultdict(list)
    for result in results:
        groups[result.estimator].append(result)
    return {estimator: rank_results(group)[:k] for estimator, group in groups.items()}
