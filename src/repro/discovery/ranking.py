"""Ranking of discovery results.

MI estimates produced by different estimators (MLE vs the KSG family) live on
systematically different scales — Section V-C3 of the paper shows MLE
estimates reaching the 4-6 nats range while KSG-based estimates stay below 2
on the same corpus — so the paper recommends producing *separate rankings per
estimator* rather than a single mixed ranking.  Both behaviours are provided.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.discovery.query import AugmentationResult

__all__ = ["rank_results", "top_k_per_estimator"]


def rank_results(results: Sequence[AugmentationResult]) -> list[AugmentationResult]:
    """Sort results by MI estimate (descending), ties broken by join size."""
    return sorted(
        results,
        key=lambda result: (result.mi_estimate, result.sketch_join_size),
        reverse=True,
    )


def top_k_per_estimator(
    results: Sequence[AugmentationResult], k: int = 10
) -> dict[str, list[AugmentationResult]]:
    """Group results by estimator and return the top-``k`` of each group.

    This is the comparison-safe presentation recommended by the paper: the
    caller (or a downstream task-specific evaluation) decides how to merge
    the per-estimator lists.
    """
    if k < 1:
        raise ValueError("k must be a positive integer")
    groups: dict[str, list[AugmentationResult]] = defaultdict(list)
    for result in results:
        groups[result.estimator].append(result)
    return {estimator: rank_results(group)[:k] for estimator, group in groups.items()}
