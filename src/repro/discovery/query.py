"""Query and result types of the discovery layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.relational.aggregate import AggregateFunction
from repro.relational.table import Table

__all__ = ["AugmentationQuery", "AugmentationResult"]


@dataclass
class AugmentationQuery:
    """A relationship-discovery query against a :class:`SketchIndex`.

    Attributes
    ----------
    table:
        The base table ``T_train``.
    key_column:
        Join-key column of the base table.
    target_column:
        Target column ``Y`` whose predictors we are looking for.
    top_k:
        Maximum number of results to return (per estimator group when
        ``separate_rankings`` is used downstream).
    min_containment:
        Minimum estimated fraction of the base table's keys that must be
        present in a candidate for it to be considered joinable.
    min_join_size:
        Minimum sketch-join size below which an MI estimate is considered
        meaningless and the candidate is skipped (the paper uses 100 for its
        real-data experiments).
    """

    table: Table
    key_column: str
    target_column: str
    top_k: int = 10
    min_containment: float = 0.0
    min_join_size: int = 16


@dataclass
class AugmentationResult:
    """One candidate augmentation returned by a discovery query."""

    candidate_id: str
    table_name: str
    key_column: str
    value_column: str
    aggregate: str
    estimator: str
    mi_estimate: float
    sketch_join_size: int
    containment: float
    value_dtype: str
    metadata: dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        """Human-readable one-line description of the candidate."""
        return (
            f"{self.table_name}.{self.value_column} "
            f"[{self.aggregate.upper()} on {self.key_column}] "
            f"MI~{self.mi_estimate:.3f} ({self.estimator}, "
            f"join={self.sketch_join_size}, containment={self.containment:.2f})"
        )


def default_aggregate_for_dtype(is_numeric: bool) -> AggregateFunction:
    """Featurization default: AVG for numeric values, MODE for categorical ones."""
    return AggregateFunction.AVG if is_numeric else AggregateFunction.MODE


def candidate_identifier(
    table_name: str,
    key_column: str,
    value_column: str,
    aggregate: Optional[str] = None,
) -> str:
    """Stable identifier of an indexed (table, key, value, aggregate) entry."""
    suffix = f"#{aggregate}" if aggregate else ""
    return f"{table_name}:{key_column}->{value_column}{suffix}"
