"""MI-based data discovery for relational data augmentation.

This is the application layer the paper motivates (Sections I and III): given
a base table with a prediction target, find external candidate tables that

1. are *joinable* with the base table (their join-key values overlap), and
2. carry attributes with high mutual information with the target after the
   (never materialized) augmentation join.

A :class:`SketchIndex` profiles and sketches candidate tables offline; an
:class:`AugmentationQuery` is evaluated online against the index, producing
ranked :class:`AugmentationResult` objects.  Ranking follows the paper's
recommendation of keeping per-estimator rankings separate, since MI estimates
from different estimators are not directly comparable.
"""

from repro.discovery.profile import ColumnPairProfile, profile_column_pair
from repro.discovery.query import AugmentationQuery, AugmentationResult
from repro.discovery.index import SketchIndex
from repro.discovery.builder import IndexBuilder, shard_for_table
from repro.discovery.ranking import rank_results, top_k_per_estimator, top_k_results
from repro.discovery.selection import SelectedFeature, greedy_feature_selection
from repro.discovery.persistence import save_index, load_index

__all__ = [
    "ColumnPairProfile",
    "profile_column_pair",
    "AugmentationQuery",
    "AugmentationResult",
    "SketchIndex",
    "IndexBuilder",
    "shard_for_table",
    "rank_results",
    "top_k_results",
    "top_k_per_estimator",
    "SelectedFeature",
    "greedy_feature_selection",
    "save_index",
    "load_index",
]
