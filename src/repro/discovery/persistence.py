"""Saving and loading a :class:`~repro.discovery.index.SketchIndex`.

Candidate sketches are built in an offline preprocessing stage (Section IV),
typically on a different machine or at a different time than the queries.
This module persists an index as a directory containing

* ``index.json`` — index-level configuration (method, capacity, seed) and,
  per candidate, its profile, aggregate, KMV key sketch and metadata;
* ``sketches/<i>.json`` — one serialized MI sketch per candidate (the format
  of :mod:`repro.sketches.serialization`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

from repro.discovery.index import IndexedCandidate, SketchIndex
from repro.engine.config import EngineConfig
from repro.discovery.profile import ColumnPairProfile
from repro.exceptions import DiscoveryError
from repro.relational.dtypes import DType
from repro.sketches.kmv import KMVSketch
from repro.sketches.serialization import load_sketch, save_sketch

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1
PathLike = Union[str, os.PathLike]


def _profile_to_dict(profile: ColumnPairProfile) -> dict:
    return {
        "table_name": profile.table_name,
        "key_column": profile.key_column,
        "value_column": profile.value_column,
        "num_rows": profile.num_rows,
        "key_distinct": profile.key_distinct,
        "key_nulls": profile.key_nulls,
        "value_dtype": profile.value_dtype.value,
        "value_distinct": profile.value_distinct,
        "value_nulls": profile.value_nulls,
    }


def _profile_from_dict(document: dict) -> ColumnPairProfile:
    return ColumnPairProfile(
        table_name=document["table_name"],
        key_column=document["key_column"],
        value_column=document["value_column"],
        num_rows=int(document["num_rows"]),
        key_distinct=int(document["key_distinct"]),
        key_nulls=int(document["key_nulls"]),
        value_dtype=DType(document["value_dtype"]),
        value_distinct=int(document["value_distinct"]),
        value_nulls=int(document["value_nulls"]),
    )


def _kmv_to_dict(kmv: KMVSketch) -> dict:
    return {
        "capacity": kmv.capacity,
        "seed": kmv.seed,
        "values": sorted(kmv.values, key=lambda value: str(value)),
    }


def _kmv_from_dict(document: dict) -> KMVSketch:
    return KMVSketch.from_values(
        document["values"], capacity=int(document["capacity"]), seed=int(document["seed"])
    )


def save_index(index: SketchIndex, directory: PathLike) -> None:
    """Persist an index to ``directory`` (created if necessary)."""
    root = Path(directory)
    sketches_dir = root / "sketches"
    sketches_dir.mkdir(parents=True, exist_ok=True)

    candidates_document = []
    for position, candidate in enumerate(index.candidates):
        sketch_file = f"{position:06d}.json"
        save_sketch(candidate.sketch, sketches_dir / sketch_file)
        candidates_document.append(
            {
                "candidate_id": candidate.candidate_id,
                "aggregate": candidate.aggregate,
                "profile": _profile_to_dict(candidate.profile),
                "key_kmv": _kmv_to_dict(candidate.key_kmv),
                "metadata": dict(candidate.metadata),
                "sketch_file": sketch_file,
            }
        )
    document = {
        "format_version": _FORMAT_VERSION,
        # method/capacity/seed are kept for readers of the original format;
        # engine_config carries the full estimation policy.
        "method": index.method,
        "capacity": index.capacity,
        "seed": index.seed,
        "engine_config": index.config.to_dict(),
        "candidates": candidates_document,
    }
    (root / "index.json").write_text(json.dumps(document), encoding="utf-8")


def load_index(directory: PathLike) -> SketchIndex:
    """Load an index previously written by :func:`save_index`."""
    root = Path(directory)
    index_path = root / "index.json"
    if not index_path.exists():
        raise DiscoveryError(f"no index.json found under {root}")
    try:
        document = json.loads(index_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DiscoveryError(f"malformed index file: {index_path}") from exc
    if document.get("format_version") != _FORMAT_VERSION:
        raise DiscoveryError(
            f"unsupported index format version {document.get('format_version')!r}"
        )

    if "engine_config" in document:
        config = EngineConfig.from_dict(document["engine_config"])
    else:  # pre-engine index directory: only the sketch triple was stored
        config = EngineConfig(
            method=document["method"],
            capacity=int(document["capacity"]),
            seed=int(document["seed"]),
        )
    index = SketchIndex(config)
    for entry in document["candidates"]:
        candidate = IndexedCandidate(
            candidate_id=entry["candidate_id"],
            profile=_profile_from_dict(entry["profile"]),
            aggregate=entry["aggregate"],
            sketch=load_sketch(root / "sketches" / entry["sketch_file"]),
            key_kmv=_kmv_from_dict(entry["key_kmv"]),
            metadata=dict(entry.get("metadata", {})),
        )
        index._candidates[candidate.candidate_id] = candidate
    return index
