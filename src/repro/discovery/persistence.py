"""Saving and loading a :class:`~repro.discovery.index.SketchIndex`.

Candidate sketches are built in an offline preprocessing stage (Section IV),
typically on a different machine or at a different time than the queries.
An index directory contains

* ``index.json`` — index-level configuration (the engine config plus the
  legacy method/capacity/seed triple) and, per candidate, its profile,
  aggregate and metadata;
* ``sketches.npz`` — one columnar :mod:`repro.store` file holding every
  candidate's MI sketch *and* its KMV key sketch (format version 2, the
  current format);
* ``postings.npz`` — the posting-index sidecar for sublinear candidate
  generation (:mod:`repro.postings`).  The sidecar is *derived* data: it is
  rebuilt from the persisted KMV pools on every save, attached at load when
  present and consistent, and silently absent from directories written
  before it existed (those fall back to full-scan candidate generation; a
  re-save adds the sidecar).

Format version 1 (one ``sketches/<i>.json`` file per candidate, KMV sketches
inlined into ``index.json``) is still read transparently, so indexes written
before the columnar store exist keep loading; re-saving such an index
migrates it to version 2.

Independently of the *layout* version, every index records the canonical
hash-encoding version its sketches were built under
(:data:`~repro.sketches.serialization.HASH_ENCODING_VERSION`).  A directory
persisted under an older encoding is refused at load time — its stored
``h(key)`` identifiers would silently disagree with freshly built query
sketches — with instructions to rebuild from the source tables.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Union

from repro.discovery.index import IndexedCandidate, SketchIndex
from repro.engine.config import EngineConfig
from repro.discovery.profile import ColumnPairProfile
from repro.exceptions import DiscoveryError, PostingsError, StoreError
from repro.postings import PostingsIndex, load_postings, save_postings
from repro.relational.dtypes import DType
from repro.sketches.kmv import KMVSketch
from repro.sketches.serialization import HASH_ENCODING_VERSION, load_sketch
from repro.store import load_npz, pack_value_lists, save_npz, unpack_value_lists

__all__ = [
    "save_index",
    "load_index",
    "profile_to_dict",
    "profile_from_dict",
    "read_publication",
    "write_publication",
    "publication_token",
    "resolve_index_root",
]

_FORMAT_VERSION = 2
_STORE_FILE = "sketches.npz"
_POSTINGS_FILE = "postings.npz"

#: Generation-publication layout of a maintained index directory: numbered
#: generation subdirectories (each a complete flat index layout) plus a
#: ``CURRENT`` pointer file naming the published one.  Directories without a
#: ``CURRENT`` file are plain flat indexes; every reader handles both.
CURRENT_FILE = "CURRENT"
GENERATIONS_DIR = "generations"

PathLike = Union[str, os.PathLike]


def profile_to_dict(profile: ColumnPairProfile) -> dict:
    return {
        "table_name": profile.table_name,
        "key_column": profile.key_column,
        "value_column": profile.value_column,
        "num_rows": profile.num_rows,
        "key_distinct": profile.key_distinct,
        "key_nulls": profile.key_nulls,
        "value_dtype": profile.value_dtype.value,
        "value_distinct": profile.value_distinct,
        "value_nulls": profile.value_nulls,
    }


def profile_from_dict(document: dict) -> ColumnPairProfile:
    return ColumnPairProfile(
        table_name=document["table_name"],
        key_column=document["key_column"],
        value_column=document["value_column"],
        num_rows=int(document["num_rows"]),
        key_distinct=int(document["key_distinct"]),
        key_nulls=int(document["key_nulls"]),
        value_dtype=DType(document["value_dtype"]),
        value_distinct=int(document["value_distinct"]),
        value_nulls=int(document["value_nulls"]),
    )


def _kmv_from_dict(document: dict) -> KMVSketch:
    return KMVSketch.from_values(
        document["values"], capacity=int(document["capacity"]), seed=int(document["seed"])
    )


def _index_document(index: SketchIndex, candidates_document: list[dict]) -> dict:
    return {
        "format_version": _FORMAT_VERSION,
        "hash_encoding": HASH_ENCODING_VERSION,
        # method/capacity/seed are kept for readers of the original format;
        # engine_config carries the full estimation policy.
        "method": index.method,
        "capacity": index.capacity,
        "seed": index.seed,
        "engine_config": index.config.to_dict(),
        "store_file": _STORE_FILE,
        "postings_file": _POSTINGS_FILE,
        "candidates": candidates_document,
    }


def save_index(index: SketchIndex, directory: PathLike) -> None:
    """Persist an index to ``directory`` (created if necessary).

    Writes format version 2: candidate metadata in ``index.json`` and every
    MI + KMV sketch packed into one columnar ``sketches.npz`` store.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)

    candidates = index.candidates
    candidates_document = []
    kmv_entries = []
    for candidate in candidates:
        candidates_document.append(
            {
                "candidate_id": candidate.candidate_id,
                "aggregate": candidate.aggregate,
                "profile": profile_to_dict(candidate.profile),
                "metadata": dict(candidate.metadata),
            }
        )
        kmv_entries.append(
            {"capacity": candidate.key_kmv.capacity, "seed": candidate.key_kmv.seed}
        )
    kmv_arrays, kmv_value_entries = pack_value_lists(
        [
            sorted(candidate.key_kmv.values, key=lambda value: str(value))
            for candidate in candidates
        ],
        "kmv_values",
    )
    for entry, value_entry in zip(kmv_entries, kmv_value_entries):
        entry["values"] = value_entry
    save_npz(
        root / _STORE_FILE,
        [candidate.sketch for candidate in candidates],
        extra_arrays=kmv_arrays,
        extra_manifest={"kmv": kmv_entries},
    )
    postings = index.postings
    if postings is None:
        postings = PostingsIndex.from_entries(
            (candidate.candidate_id, candidate.key_kmv.hashes)
            for candidate in candidates
        )
    save_postings(postings, root / _POSTINGS_FILE)
    document = _index_document(index, candidates_document)
    (root / "index.json").write_text(json.dumps(document), encoding="utf-8")


def _load_index_shell(document: dict) -> SketchIndex:
    """Build an empty index carrying the stored engine configuration."""
    if "engine_config" in document:
        config = EngineConfig.from_dict(document["engine_config"])
    else:  # pre-engine index document: only the sketch triple was stored
        config = EngineConfig(
            method=document["method"],
            capacity=int(document["capacity"]),
            seed=int(document["seed"]),
        )
    return SketchIndex(config)


def _load_index_v1(root: Path, document: dict) -> SketchIndex:
    """Read the legacy per-sketch-JSON layout (format version 1)."""
    index = _load_index_shell(document)
    for entry in document["candidates"]:
        index.add_prebuilt(
            IndexedCandidate(
                candidate_id=entry["candidate_id"],
                profile=profile_from_dict(entry["profile"]),
                aggregate=entry["aggregate"],
                sketch=load_sketch(root / "sketches" / entry["sketch_file"]),
                key_kmv=_kmv_from_dict(entry["key_kmv"]),
                metadata=dict(entry.get("metadata", {})),
            )
        )
    return index


def _load_index_v2(root: Path, document: dict, *, mmap: bool) -> SketchIndex:
    """Read the columnar-store layout (format version 2)."""
    index = _load_index_shell(document)
    store_path = root / document.get("store_file", _STORE_FILE)
    try:
        store = load_npz(store_path, mmap=mmap)
    except StoreError as exc:
        raise DiscoveryError(f"could not read index sketch store: {exc}") from exc
    entries = document["candidates"]
    if len(store) != len(entries):
        raise DiscoveryError(
            f"index lists {len(entries)} candidates but the sketch store "
            f"holds {len(store)}"
        )
    kmv_entries = store.extra_manifest.get("kmv")
    if not isinstance(kmv_entries, list) or len(kmv_entries) != len(entries):
        raise DiscoveryError("index sketch store is missing its KMV entries")
    try:
        kmv_values = unpack_value_lists(
            {name: store.array(name) for name in _KMV_ARRAYS},
            [entry["values"] for entry in kmv_entries],
            "kmv_values",
        )
    except (StoreError, KeyError, TypeError) as exc:
        raise DiscoveryError(f"corrupted KMV entries in index store: {exc}") from exc
    for position, entry in enumerate(entries):
        kmv_entry = kmv_entries[position]
        index.add_prebuilt(
            IndexedCandidate(
                candidate_id=entry["candidate_id"],
                profile=profile_from_dict(entry["profile"]),
                aggregate=entry["aggregate"],
                sketch=store[position],
                key_kmv=KMVSketch.from_values(
                    kmv_values[position],
                    capacity=int(kmv_entry["capacity"]),
                    seed=int(kmv_entry["seed"]),
                ),
                metadata=dict(entry.get("metadata", {})),
            )
        )
    return index


#: Array members of the index store that hold the packed KMV value pools.
_KMV_ARRAYS = (
    "kmv_values_float",
    "kmv_values_int",
    "kmv_values_str",
    "kmv_values_str_offsets",
    "kmv_values_json",
    "kmv_values_json_offsets",
)


def read_publication(directory: PathLike) -> "dict | None":
    """Read a maintained directory's ``CURRENT`` pointer, or ``None``.

    The pointer is a small JSON document naming the published generation::

        {"generation": 3, "name": "00000003", "applied_sequence": 17}

    ``applied_sequence`` is the highest write-ahead-log sequence folded into
    that generation; everything after it is pending compaction.  Plain flat
    index directories have no pointer and return ``None``.
    """
    path = Path(directory) / CURRENT_FILE
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise DiscoveryError(f"could not read publication pointer {path}: {exc}") from exc
    try:
        document = json.loads(raw)
        return {
            "generation": int(document["generation"]),
            "name": str(document["name"]),
            "applied_sequence": int(document["applied_sequence"]),
        }
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise DiscoveryError(f"malformed publication pointer {path}: {exc}") from exc


def write_publication(
    directory: PathLike, *, generation: int, name: str, applied_sequence: int
) -> None:
    """Atomically (re)point ``CURRENT`` at a generation subdirectory.

    Written to a temporary file, fsync'd, then ``os.replace``d over the
    pointer, so a crash leaves either the old pointer or the new one —
    never a torn file.  Readers that loaded the previous generation keep
    serving it; its files are not touched here.
    """
    root = Path(directory)
    payload = json.dumps(
        {"generation": int(generation), "name": name, "applied_sequence": int(applied_sequence)}
    )
    temp_path = root / (CURRENT_FILE + ".tmp")
    with open(temp_path, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, root / CURRENT_FILE)


def publication_token(directory: PathLike) -> "str | None":
    """Raw ``CURRENT`` content, used as an opaque change-detection token.

    Serving workers compare this cheap small-file read between requests to
    notice generation swaps; ``None`` means the directory is a plain flat
    index (or the pointer vanished mid-read) and nothing to reload against.
    """
    try:
        return (Path(directory) / CURRENT_FILE).read_text(encoding="utf-8")
    except OSError:
        return None


def resolve_index_root(directory: PathLike) -> Path:
    """The directory the *published* index files actually live in.

    A maintained directory resolves through its ``CURRENT`` pointer to
    ``generations/<name>/``; a plain flat directory resolves to itself.
    In-progress compactions (temporary ``generations/.incoming-*`` trees)
    are never resolved to — only an atomically published generation is.
    """
    root = Path(directory)
    publication = read_publication(root)
    if publication is None:
        return root
    generation_root = root / GENERATIONS_DIR / publication["name"]
    if not (generation_root / "index.json").exists():
        raise DiscoveryError(
            f"publication pointer of {root} names generation "
            f"{publication['name']!r} but {generation_root} holds no index; "
            f"the directory is damaged — re-run compaction (`repro index "
            f"compact`) or restore the generation"
        )
    return generation_root


def load_index(directory: PathLike, *, mmap: bool = False) -> SketchIndex:
    """Load an index previously written by :func:`save_index`.

    Reads both the current columnar layout (format version 2) and the
    legacy per-sketch-JSON layout (format version 1).  ``mmap=True``
    memory-maps the columnar store's arrays instead of reading them
    eagerly (version 2 only).

    Maintained directories (those carrying a ``CURRENT`` publication
    pointer; see :mod:`repro.maintenance`) are resolved to their published
    generation first, so loading is oblivious to any compaction in
    progress: temporary ``.incoming`` trees and half-written future
    generations are never read.
    """
    root = resolve_index_root(directory)
    index_path = root / "index.json"
    if not index_path.exists():
        raise DiscoveryError(
            f"no index.json found under {root} — not an index directory "
            "(expected one written by `save_index` / `repro index build`)"
        )
    try:
        document = json.loads(index_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DiscoveryError(f"malformed index file: {index_path}") from exc
    except OSError as exc:
        raise DiscoveryError(f"could not read index file {index_path}: {exc}") from exc
    encoding = document.get("hash_encoding", 1)
    if encoding != HASH_ENCODING_VERSION:
        raise DiscoveryError(
            f"index was built under hash-encoding version {encoding!r} "
            f"(current: {HASH_ENCODING_VERSION}); its sketches' hashed keys "
            f"are not comparable with freshly built query sketches — rebuild "
            f"the index from the source tables (`repro index build`)"
        )
    version = document.get("format_version")
    try:
        if version == 1:
            index = _load_index_v1(root, document)
        elif version == _FORMAT_VERSION:
            index = _load_index_v2(root, document, mmap=mmap)
        else:
            raise DiscoveryError(f"unsupported index format version {version!r}")
    except (KeyError, TypeError, ValueError) as exc:
        raise DiscoveryError(f"malformed index document: {exc}") from exc
    _attach_saved_postings(index, root, document, mmap=mmap)
    return index


def _attach_saved_postings(
    index: SketchIndex, root: Path, document: dict, *, mmap: bool
) -> None:
    """Attach the ``postings.npz`` sidecar, if one is present and usable.

    The sidecar is derived data — everything in it is rebuilt from the KMV
    pools on the next save — so a directory without one (anything written
    before the posting index existed) simply falls back to full-scan
    candidate generation, and a stale or unreadable sidecar degrades the
    same way with a warning instead of failing the load.
    """
    postings_path = root / document.get("postings_file", _POSTINGS_FILE)
    if not postings_path.exists():
        return
    try:
        index.attach_postings(load_postings(postings_path, mmap=mmap))
    except (PostingsError, DiscoveryError) as exc:
        warnings.warn(
            f"ignoring posting index {postings_path} ({exc}); queries fall "
            f"back to full candidate scans — re-save the index or run "
            f"`repro index postings build` to refresh it",
            RuntimeWarning,
            stacklevel=3,
        )
