"""Command-line interface.

The CLI is a thin shell over the :class:`~repro.engine.SketchEngine` session
API.  Four subcommands cover the offline/online split of the paper's
pipeline plus the reproduction harness:

``repro sketch``
    Build a sketch for one (key column, value column) pair of a CSV file and
    write it to a JSON file (the offline step).

``repro estimate``
    Estimate the mutual information between two previously built sketches, or
    directly between two CSV files (which sketches them on the fly).

``repro config``
    Print the engine configuration that the given flags resolve to, as JSON.
    The output can be fed back to ``sketch``/``estimate`` via
    ``--engine-config`` so the offline and online halves provably agree.

``repro experiment``
    Run one of the paper's experiments at a reduced scale and print the
    regenerated table/figure series.

``repro index``
    Build, grow, inspect and query a persisted discovery index over a set
    of CSV tables.  ``index build`` runs the sharded
    :class:`~repro.discovery.builder.IndexBuilder` (``--workers N`` worker
    processes over ``--shards K`` shards) and writes the index with its
    columnar sketch store; ``index add`` sketches additional tables into an
    existing index directory; ``index ingest`` streams CSV/Parquet tables —
    or a whole lake directory (``--lake DIR``), one logical table per file —
    into a new or existing index in bounded-memory chunks
    (``--chunk-size N``), resolving each file through the pluggable source
    registry (``--format {auto,csv,parquet}``, auto-detection by extension)
    and producing byte-identical indexes to ``build``/``add``; ``index info``
    summarizes one (including its posting-index sidecar, when present);
    ``index query`` evaluates one augmentation query against one and prints
    the ranked results as JSON (``--no-postings`` forces a full candidate
    scan); ``index postings build``/``index postings info`` rebuild and
    inspect the ``postings.npz`` sidecar that drives sublinear candidate
    generation (:mod:`repro.postings`); ``index log``/``index compact``/
    ``index jobs`` initialize and drive durable maintenance — the
    write-ahead delta log, generation compaction and job records of
    :mod:`repro.maintenance` (see ``docs/durability.md``).

``repro serve``
    Run the :mod:`repro.serving` HTTP query service over an index directory
    (``POST /query``, ``GET /healthz``, ``GET /metrics``), with a query
    thread pool, an LRU+TTL result cache and in-flight request coalescing.
    ``--execution process`` swaps the GIL-bound thread pool for N worker
    processes that each memory-map the same index and share results through
    a cross-worker cache (``--shared-cache-entries``).

Examples
--------
.. code-block:: bash

    repro config --capacity 1024 --seed 7 > engine.json
    repro sketch taxi.csv --key date --value num_trips --side base --engine-config engine.json -o taxi.sketch.json
    repro sketch weather.csv --key date --value temp --side candidate --agg avg --engine-config engine.json -o weather.sketch.json
    repro estimate --base-sketch taxi.sketch.json --candidate-sketch weather.sketch.json
    repro index build lake/*.csv --key date --output lake.index --workers 4 --shards 16
    repro index add late_arrival.csv --index lake.index --key date
    repro index ingest huge_table.csv --index lake.index --key date --chunk-size 20000
    repro index ingest staged.parquet --index lake.index --key date
    repro index ingest --lake staging/ --key date -o lake.index
    repro index info lake.index
    repro index postings build lake.index
    repro index query lake.index --csv taxi.csv --key date --target num_trips --top-k 5
    repro serve --index lake.index --workers 8 --port 8765
    repro experiment table1 --scale small
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.engine.config import EngineConfig
from repro.engine.session import SketchEngine
from repro.exceptions import EngineConfigError, ReproError
from repro.relational.csvio import read_csv
from repro.sketches.serialization import load_sketch, save_sketch

__all__ = ["main", "build_parser"]

#: Scale presets for the `experiment` subcommand: name -> keyword overrides.
_EXPERIMENT_SCALES = {
    "small": {
        "fulljoin_accuracy": dict(datasets_per_distribution=3, sample_size=4000),
        "figure2": dict(datasets_per_key_generation=2, sample_size=5000),
        "figure3": dict(num_datasets=8, sample_size=5000),
        "figure4": dict(m_values=(16, 256, 1024), datasets_per_m=2, sample_size=5000),
        "table1": dict(datasets_per_distribution=3, sample_size=5000),
        "table2": dict(num_pairs=12, tables_per_repository=24, sketch_size=512, min_join_size=50),
        "figure5": dict(num_pairs=20, tables_per_repository=24, sketch_size=512),
        "performance": dict(table_sizes=(5000, 10000), repetitions=2),
        "ablation_coordination": dict(datasets_per_key_generation=2, sample_size=5000),
        "ablation_aggregation": dict(num_keys=300),
        "ablation_sketch_size": dict(sketch_sizes=(64, 256, 1024), num_datasets=3, sample_size=5000),
    },
    "paper": {},
}


def _experiment_runners() -> dict[str, Callable]:
    from repro.evaluation import experiments

    return {
        "fulljoin_accuracy": experiments.run_fulljoin_accuracy,
        "figure2": experiments.run_figure2,
        "figure3": experiments.run_figure3,
        "figure4": experiments.run_figure4,
        "table1": experiments.run_table1,
        "table2": experiments.run_table2,
        "figure5": experiments.run_figure5,
        "performance": experiments.run_performance,
        "ablation_coordination": experiments.run_ablation_coordination,
        "ablation_aggregation": experiments.run_ablation_aggregation,
        "ablation_sketch_size": experiments.run_ablation_sketch_size,
    }


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Join-free mutual information estimation between attributes across tables.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_engine_options(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--engine-config",
            help="engine config JSON file (see `repro config`); flags override it",
        )
        subparser.add_argument("--method", help="sketching method (default TUPSK)")
        subparser.add_argument("--capacity", type=int, help="sketch size n (default 1024)")
        subparser.add_argument("--seed", type=int, help="hash seed (default 0)")
        subparser.add_argument(
            "--scalar-hashing",
            action="store_true",
            help="disable the vectorized hashing fast path (same sketches, "
            "useful for debugging and benchmarking the scalar reference)",
        )

    sketch = subparsers.add_parser("sketch", help="build a sketch from a CSV file")
    sketch.add_argument("csv", help="input CSV file (with a header row)")
    sketch.add_argument("--key", required=True, help="join-key column name")
    sketch.add_argument("--value", required=True, help="value column name")
    sketch.add_argument("--side", choices=["base", "candidate"], default="base")
    add_engine_options(sketch)
    sketch.add_argument(
        "--agg",
        help="featurization function (candidate side; default: the engine "
        "config's aggregate for the column type)",
    )
    sketch.add_argument("-o", "--output", required=True, help="output sketch JSON path")

    estimate = subparsers.add_parser(
        "estimate", help="estimate MI between two sketches or two CSV columns"
    )
    estimate.add_argument("--base-sketch", help="base-side sketch JSON")
    estimate.add_argument("--candidate-sketch", help="candidate-side sketch JSON")
    estimate.add_argument("--base-csv", help="base CSV (alternative to --base-sketch)")
    estimate.add_argument("--candidate-csv", help="candidate CSV")
    estimate.add_argument("--base-key", help="base join-key column (CSV mode)")
    estimate.add_argument("--base-value", help="base target column (CSV mode)")
    estimate.add_argument("--candidate-key", help="candidate join-key column (CSV mode)")
    estimate.add_argument("--candidate-value", help="candidate value column (CSV mode)")
    estimate.add_argument(
        "--agg",
        help="featurization function (CSV mode; default: the engine config's "
        "aggregate for the column type)",
    )
    add_engine_options(estimate)
    estimate.add_argument(
        "--min-join-size",
        type=int,
        help="minimum sketch-join size (default: engine config's value, or 16)",
    )

    config = subparsers.add_parser(
        "config", help="resolve and print an engine configuration as JSON"
    )
    add_engine_options(config)
    config.add_argument("--estimator-k", type=int, help="KSG neighbour count")
    config.add_argument("--min-join-size", type=int, help="minimum sketch-join size")

    experiment = subparsers.add_parser(
        "experiment", help="run one of the paper's experiments and print its report"
    )
    experiment.add_argument("name", choices=sorted(_experiment_runners()))
    experiment.add_argument("--scale", choices=sorted(_EXPERIMENT_SCALES), default="small")
    experiment.add_argument("--seed", type=int, default=0)

    evaluate = subparsers.add_parser(
        "eval", help="accuracy and robustness evaluation suites"
    )
    eval_commands = evaluate.add_subparsers(dest="eval_command", required=True)
    scenarios = eval_commands.add_parser(
        "scenarios",
        help="run the scenario accuracy suite (methods × capacities × "
        "scenario families) and print a markdown report",
    )
    scenarios.add_argument(
        "--methods", default=None,
        help="comma-separated sketch methods (default: all five)",
    )
    scenarios.add_argument(
        "--capacities", default="64,256",
        help="comma-separated sketch capacities to sweep (default 64,256)",
    )
    scenarios.add_argument(
        "--families", default=None,
        help="comma-separated scenario families (default: all; see "
        "docs/evaluation.md for the catalog)",
    )
    scenarios.add_argument(
        "--replicates", type=int, default=3,
        help="replicates per scenario variant (default 3)",
    )
    scenarios.add_argument(
        "--sample-size", type=int, default=2000,
        help="rows per synthetic dataset (default 2000)",
    )
    scenarios.add_argument("--seed", type=int, default=0)
    scenarios.add_argument(
        "--ci-replicates", type=int, default=12,
        help="subsampling replicates per confidence interval; 0 disables "
        "CI computation (default 12)",
    )
    scenarios.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="write the gateable JSON report here",
    )
    scenarios.add_argument(
        "--markdown", dest="markdown_out", default=None, metavar="PATH",
        help="write the markdown report here (also printed to stdout)",
    )
    scenarios.add_argument(
        "--run-log", default=None, metavar="PATH",
        help="append one JSONL run-tracking line here",
    )
    scenarios.add_argument(
        "--quiet", action="store_true",
        help="suppress the markdown report on stdout (files still written)",
    )

    index = subparsers.add_parser(
        "index", help="build, grow and inspect a persisted discovery index"
    )
    index_commands = index.add_subparsers(dest="index_command", required=True)

    def add_table_options(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument("csvs", nargs="+", help="candidate CSV tables")
        subparser.add_argument("--key", required=True, help="join-key column name")
        subparser.add_argument(
            "--values",
            help="comma-separated value columns (default: every non-key column)",
        )
        subparser.add_argument(
            "--workers",
            type=int,
            help="worker processes for sketching shards (default: engine "
            "config's build_workers)",
        )

    index_build = index_commands.add_parser(
        "build", help="sketch CSV tables into a new index directory"
    )
    add_table_options(index_build)
    index_build.add_argument(
        "--shards",
        type=int,
        help="shard count for the builder (default: engine config's build_shards)",
    )
    add_engine_options(index_build)
    index_build.add_argument(
        "-o", "--output", required=True, help="output index directory"
    )

    index_add = index_commands.add_parser(
        "add", help="sketch additional CSV tables into an existing index"
    )
    add_table_options(index_add)
    index_add.add_argument("--index", required=True, help="existing index directory")

    from repro.ingest.sources import source_formats

    index_ingest = index_commands.add_parser(
        "ingest",
        help="stream CSV/Parquet tables (or a whole lake directory) into an "
        "index in bounded-memory chunks",
    )
    index_ingest.add_argument(
        "tables", nargs="*", metavar="TABLE",
        help="candidate table files (CSV/Parquet; format auto-detected "
        "from the extension unless --format is given)",
    )
    index_ingest.add_argument(
        "--lake", metavar="DIR",
        help="ingest every recognized table file of a lake/staging "
        "directory, one logical table per file (combinable with "
        "positional TABLE files)",
    )
    index_ingest.add_argument(
        "--format",
        choices=["auto"] + [spec.name for spec in source_formats()],
        default="auto",
        help="table file format (default: auto-detect from the extension)",
    )
    index_ingest.add_argument("--key", required=True, help="join-key column name")
    index_ingest.add_argument(
        "--values",
        help="comma-separated value columns (default: every non-key column)",
    )
    index_ingest.add_argument(
        "--chunk-size", type=int, default=8192,
        help="rows per chunk; peak per-table memory is one chunk plus the "
        "sketch state and exact per-column distinct-value tracking "
        "(default 8192; see docs/ingestion.md for the memory model)",
    )
    index_ingest.add_argument(
        "--index", help="existing index directory to grow (alternative to --output)"
    )
    index_ingest.add_argument(
        "-o", "--output", help="new index directory (alternative to --index)"
    )
    add_engine_options(index_ingest)

    index_info = index_commands.add_parser(
        "info", help="print a JSON summary of an index directory"
    )
    index_info.add_argument("index", help="index directory")

    index_postings = index_commands.add_parser(
        "postings",
        help="rebuild or inspect an index's posting-list sidecar "
        "(sublinear candidate generation)",
    )
    postings_commands = index_postings.add_subparsers(
        dest="postings_command", required=True
    )
    postings_build = postings_commands.add_parser(
        "build",
        help="(re)build postings.npz from the index's persisted KMV key pools",
    )
    postings_build.add_argument("index", help="index directory")
    postings_info = postings_commands.add_parser(
        "info", help="print a JSON summary of an index's posting sidecar"
    )
    postings_info.add_argument("index", help="index directory")

    index_log = index_commands.add_parser(
        "log",
        help="inspect (or initialize) an index's write-ahead delta log "
        "(durable maintenance; see docs/durability.md)",
    )
    index_log.add_argument("index", help="index directory")
    index_log.add_argument(
        "--init", action="store_true",
        help="turn the directory into a maintained one by creating its "
        "write-ahead log (idempotent)",
    )
    index_log.add_argument(
        "--records", action="store_true",
        help="also list every intact delta record (sequence, op, table, "
        "candidate count)",
    )

    index_compact = index_commands.add_parser(
        "compact",
        help="fold pending write-ahead-log deltas into a new atomically "
        "published index generation",
    )
    index_compact.add_argument("index", help="maintained index directory")
    index_compact.add_argument(
        "--force", action="store_true",
        help="publish a new generation even when no deltas are pending",
    )

    index_jobs = index_commands.add_parser(
        "jobs", help="list an index's maintenance job records as JSON"
    )
    index_jobs.add_argument("index", help="maintained index directory")
    index_jobs.add_argument(
        "--last", action="store_true", help="print only the most recent job"
    )

    index_query = index_commands.add_parser(
        "query", help="evaluate an augmentation query against an index directory"
    )
    index_query.add_argument("index", help="index directory")
    index_query.add_argument("--csv", required=True, help="base table CSV file")
    index_query.add_argument("--key", required=True, help="base join-key column")
    index_query.add_argument("--target", required=True, help="base target column")
    index_query.add_argument("--top-k", type=int, default=10)
    index_query.add_argument("--min-containment", type=float, default=0.0)
    index_query.add_argument(
        "--min-join-size", type=int, default=16,
        help="minimum sketch-join size for a candidate to be ranked (default 16)",
    )
    index_query.add_argument(
        "--workers", type=int, default=None,
        help="thread count for the per-candidate MI estimates",
    )
    index_query.add_argument(
        "--no-postings", action="store_true",
        help="scan every candidate instead of probing the posting index "
        "(identical results; useful for benchmarking the scan path)",
    )

    serve = subparsers.add_parser(
        "serve", help="serve discovery queries over HTTP from an index directory"
    )
    serve.add_argument("--index", required=True, help="index directory to serve")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765, help="listen port (0 binds an ephemeral port)"
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="query thread-pool size, or worker-process count under "
        "--execution process (default 4)",
    )
    serve.add_argument(
        "--execution", choices=("thread", "process"), default="thread",
        help="query execution mode: 'thread' runs queries on an in-process "
        "pool; 'process' spawns worker processes that each memory-map the "
        "index (default thread)",
    )
    serve.add_argument(
        "--shared-cache-entries", type=int, default=1024,
        help="cross-worker shared result-cache capacity under --execution "
        "process (0 disables the shared cache; default 1024)",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=256,
        help="result-cache capacity (0 disables caching; default 256)",
    )
    serve.add_argument(
        "--cache-ttl", type=float, default=300.0,
        help="result-cache TTL in seconds (0 disables expiry; default 300)",
    )
    serve.add_argument(
        "--no-mmap", action="store_true",
        help="read the sketch store eagerly instead of memory-mapping it",
    )
    serve.add_argument(
        "--no-postings", action="store_true",
        help="plan queries with full candidate scans instead of posting-"
        "index probes (identical answers; only the plan counters change)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )

    return parser


#: Baseline config when no --engine-config file is given.  The library
#: default min_join_size of 2 is too lax for ad-hoc CSV estimation, so the
#: CLI keeps its historical floor of 16; `repro config` emits the same
#: value, keeping the config round-trip self-consistent.
_CLI_DEFAULT_CONFIG = EngineConfig(min_join_size=16)


def _engine_from_args(args: argparse.Namespace) -> SketchEngine:
    """Resolve the engine config: JSON file first, explicit flags override."""
    if getattr(args, "engine_config", None):
        try:
            with open(args.engine_config, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise EngineConfigError(
                f"could not read engine config {args.engine_config!r}: {exc}"
            ) from exc
        config = EngineConfig.from_dict(document)
    else:
        config = _CLI_DEFAULT_CONFIG
    overrides = {
        name: getattr(args, name, None)
        for name in ("method", "capacity", "seed", "estimator_k", "min_join_size")
        if getattr(args, name, None) is not None
    }
    if getattr(args, "scalar_hashing", False):
        overrides["vectorized"] = False
    if overrides:
        config = config.replace(**overrides)
    return SketchEngine(config)


def _command_sketch(args: argparse.Namespace) -> int:
    table = read_csv(args.csv)
    engine = _engine_from_args(args)
    if args.side == "base":
        sketch = engine.sketch_base(table, args.key, args.value)
    else:
        sketch = engine.sketch_candidate(table, args.key, args.value, agg=args.agg)
    save_sketch(sketch, args.output)
    print(
        f"wrote {sketch.method} {args.side} sketch with {len(sketch)} tuples "
        f"({sketch.table_rows} rows, {sketch.distinct_keys} distinct keys) to {args.output}"
    )
    return 0


def _sketches_from_args(args: argparse.Namespace, engine: SketchEngine):
    if args.base_sketch and args.candidate_sketch:
        return load_sketch(args.base_sketch), load_sketch(args.candidate_sketch)
    csv_mode_fields = (
        args.base_csv, args.candidate_csv,
        args.base_key, args.base_value, args.candidate_key, args.candidate_value,
    )
    if not all(csv_mode_fields):
        raise ReproError(
            "estimate requires either --base-sketch/--candidate-sketch or the six "
            "CSV-mode options (--base-csv, --base-key, --base-value, "
            "--candidate-csv, --candidate-key, --candidate-value)"
        )
    base_table = read_csv(args.base_csv)
    candidate_table = read_csv(args.candidate_csv)
    base_sketch = engine.sketch_base(base_table, args.base_key, args.base_value)
    candidate_sketch = engine.sketch_candidate(
        candidate_table, args.candidate_key, args.candidate_value, agg=args.agg
    )
    return base_sketch, candidate_sketch


def _command_estimate(args: argparse.Namespace) -> int:
    # Precedence is handled by _engine_from_args: explicit flags (including
    # --min-join-size) > engine-config file > the CLI default config.
    engine = _engine_from_args(args)
    base_sketch, candidate_sketch = _sketches_from_args(args, engine)
    estimate = engine.estimate(base_sketch, candidate_sketch)
    print(
        f"MI estimate: {estimate.mi:.4f} nats "
        f"(estimator={estimate.estimator}, sketch join size={estimate.join_size})"
    )
    return 0


def _command_config(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    print(json.dumps(engine.config.to_dict(), indent=2, sort_keys=True))
    return 0


def _value_columns_from_args(args: argparse.Namespace):
    """Parse the shared ``--values`` comma-list (None when not restricted)."""
    if not getattr(args, "values", None):
        return None
    return [name.strip() for name in args.values.split(",") if name.strip()]


def _index_tables(args: argparse.Namespace):
    """Read the CSV tables of an ``index build`` / ``index add`` invocation.

    ``read_csv`` names each table after its file, which is also the unit of
    shard assignment in the builder.
    """
    return [read_csv(csv_path) for csv_path in args.csvs], _value_columns_from_args(args)


def _register_tables(builder, tables, key_column: str, value_columns) -> None:
    for table in tables:
        builder.add_table(table, [key_column], value_columns)


def _command_index_build(args: argparse.Namespace) -> int:
    from repro.discovery.builder import IndexBuilder
    from repro.discovery.persistence import save_index

    engine = _engine_from_args(args)
    overrides = {}
    if args.workers is not None:
        overrides["build_workers"] = args.workers
    if args.shards is not None:
        overrides["build_shards"] = args.shards
    if overrides:
        engine = SketchEngine(engine.config.replace(**overrides))
    tables, value_columns = _index_tables(args)
    builder = IndexBuilder(engine)
    _register_tables(builder, tables, args.key, value_columns)
    index = builder.build()
    save_index(index, args.output)
    print(
        f"indexed {len(index)} candidates from {len(tables)} tables "
        f"({builder.num_shards} shards, {builder.max_workers} workers) "
        f"into {args.output}"
    )
    return 0


def _command_index_add(args: argparse.Namespace) -> int:
    from repro.discovery.builder import IndexBuilder
    from repro.discovery.persistence import load_index, save_index

    index = load_index(args.index)
    before = len(index)
    builder = IndexBuilder(index.engine, max_workers=args.workers)
    tables, value_columns = _index_tables(args)
    _register_tables(builder, tables, args.key, value_columns)
    index = builder.build(into=index)
    save_index(index, args.index)
    print(
        f"added {len(index) - before} candidates from {len(tables)} tables "
        f"to {args.index} ({len(index)} total)"
    )
    return 0


def _command_index_ingest(args: argparse.Namespace) -> int:
    from repro.discovery.index import SketchIndex
    from repro.discovery.persistence import load_index, save_index
    from repro.ingest.sources import open_lake, open_source

    if bool(args.index) == bool(args.output):
        raise ReproError(
            "index ingest writes either into an existing index (--index DIR) "
            "or a new one (--output DIR); pass exactly one of the two"
        )
    if not args.tables and not args.lake:
        raise ReproError(
            "index ingest needs at least one TABLE file or a --lake DIR"
        )
    if args.index:
        if any(
            getattr(args, option, None) is not None
            for option in ("engine_config", "method", "capacity", "seed")
        ) or getattr(args, "scalar_hashing", False):
            raise ReproError(
                "engine options apply only when creating a new index with "
                "--output; an existing index keeps its own configuration"
            )
        index = load_index(args.index)
        target = args.index
    else:
        index = SketchIndex(_engine_from_args(args))
        target = args.output
    value_columns = _value_columns_from_args(args)
    # Restricting --values projects at read time too: non-candidate columns
    # are never parsed or decoded.
    projection = None
    if value_columns is not None:
        projection = [args.key] + [
            column for column in value_columns if column != args.key
        ]
    # Resolve every input through the source registry up front, so a bad
    # extension / unknown format / missing optional dependency fails before
    # any sketching work starts.
    readers = [
        open_source(
            path,
            format=args.format,
            chunk_size=args.chunk_size,
            columns=projection,
        )
        for path in args.tables
    ]
    skipped = 0
    if args.lake:
        lake = open_lake(
            args.lake,
            format=args.format,
            chunk_size=args.chunk_size,
            columns=projection,
        )
        skipped = len(lake.skipped)
        readers.extend(lake.sources())
    before = len(index)
    for reader in readers:
        for candidate in index.engine.ingest_table(reader, [args.key], value_columns):
            index.add_prebuilt(candidate)
    save_index(index, target)
    note = f" ({skipped} unrecognized lake files skipped)" if skipped else ""
    print(
        f"ingested {len(index) - before} candidates from {len(readers)} tables "
        f"(chunks of {args.chunk_size} rows) into {target} "
        f"({len(index)} total){note}"
    )
    return 0


def _postings_summary(directory) -> dict:
    """JSON-able posting-sidecar summary for an index directory.

    Pre-postings directories (no ``postings.npz``) and unreadable sidecars
    degrade to ``{"present": false, ...}`` instead of failing the command —
    the sidecar is derived data and the index works without it.
    """
    import os

    from repro.exceptions import PostingsError
    from repro.postings import load_postings

    path = os.path.join(os.fspath(directory), "postings.npz")
    if not os.path.exists(path):
        return {"present": False}
    try:
        postings = load_postings(path, mmap=True)
    except PostingsError as error:
        return {"present": False, "error": str(error)}
    return {"present": True, **postings.stats()}


def _command_index_info(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.discovery.persistence import load_index

    from repro.discovery.persistence import resolve_index_root
    from repro.maintenance import maintenance_summary

    index = load_index(args.index, mmap=True)
    tables = Counter(
        candidate.profile.table_name for candidate in index.candidates
    )
    print(
        json.dumps(
            {
                "candidates": len(index),
                "tables": dict(sorted(tables.items())),
                "engine_config": index.config.to_dict(),
                # The postings sidecar lives next to the *published* index
                # files (inside the generation directory, for maintained
                # directories), not at the top level.
                "postings": _postings_summary(resolve_index_root(args.index)),
                "maintenance": maintenance_summary(args.index),
            },
            indent=2,
            sort_keys=True,
        )
    )
    return 0


def _command_index_log(args: argparse.Namespace) -> int:
    from repro.discovery.persistence import read_publication
    from repro.maintenance import WriteAheadLog

    if args.init:
        wal = WriteAheadLog.attach(args.index, create=True)
        wal.close()
        print(f"write-ahead log ready under {args.index}/wal")
        return 0
    publication = read_publication(args.index)
    applied = publication["applied_sequence"] if publication else 0
    with WriteAheadLog.attach(args.index, readonly=True) as wal:
        document = dict(wal.stats(applied))
        document["applied_sequence"] = applied
        if args.records:
            document["records"] = [
                {
                    "sequence": record.sequence,
                    "op": record.op,
                    "table": record.name,
                    "candidates": len(record.candidates),
                }
                for record in wal.replay()
            ]
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


def _command_index_compact(args: argparse.Namespace) -> int:
    from repro.maintenance import Compactor, JobTracker, WriteAheadLog

    with WriteAheadLog.attach(args.index) as wal:
        tracker = JobTracker.attach(args.index)
        record = tracker.create("compaction")
        tracker.start(record)
        try:
            detail = Compactor(args.index, wal=wal).compact(force=args.force)
        except Exception as exc:
            tracker.fail(record, exc)
            raise
        tracker.complete(record, detail)
    if detail.get("skipped"):
        print(
            f"nothing to compact: generation {detail['generation']} already "
            f"covers sequence {detail['applied_sequence']}"
        )
    else:
        print(
            f"published generation {detail['generation']} "
            f"({detail['deltas_folded']} deltas folded, "
            f"{detail['candidates']} candidates, "
            f"applied sequence {detail['applied_sequence']})"
        )
    return 0


def _command_index_jobs(args: argparse.Namespace) -> int:
    from repro.maintenance import JobTracker

    tracker = JobTracker.attach(args.index)
    if args.last:
        record = tracker.last()
        print(json.dumps(record.to_document() if record else None, indent=2))
        return 0
    print(
        json.dumps(
            {
                "counts": tracker.counts(),
                "jobs": [record.to_document() for record in tracker.list()],
            },
            indent=2,
        )
    )
    return 0


def _command_index_postings(args: argparse.Namespace) -> int:
    import os

    if args.postings_command == "info":
        print(json.dumps(_postings_summary(args.index), indent=2, sort_keys=True))
        return 0

    from repro.discovery.persistence import load_index
    from repro.postings import PostingsIndex, save_postings

    index = load_index(args.index, mmap=True)
    postings = PostingsIndex.from_entries(
        (candidate.candidate_id, candidate.key_kmv.hashes)
        for candidate in index.candidates
    )
    path = os.path.join(os.fspath(args.index), "postings.npz")
    save_postings(postings, path)
    stats = postings.stats()
    print(
        f"built posting index over {stats['candidates']} candidates "
        f"({stats['key_buckets']} key buckets, {stats['postings']} postings) "
        f"into {path}"
    )
    return 0


def _command_index_query(args: argparse.Namespace) -> int:
    from repro.discovery.persistence import load_index
    from repro.discovery.query import AugmentationQuery
    from repro.serving.http import result_to_dict

    index = load_index(args.index, mmap=True)
    table = read_csv(args.csv)
    results = index.query(
        AugmentationQuery(
            table=table,
            key_column=args.key,
            target_column=args.target,
            top_k=args.top_k,
            min_containment=args.min_containment,
            min_join_size=args.min_join_size,
        ),
        max_workers=args.workers,
        use_postings=not args.no_postings,
    )
    print(json.dumps([result_to_dict(result) for result in results], indent=2))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serving import DiscoveryService, ServiceConfig, serve

    service = DiscoveryService(
        args.index,
        ServiceConfig(
            workers=args.workers,
            execution=args.execution,
            cache_entries=args.cache_entries,
            cache_ttl_seconds=args.cache_ttl if args.cache_ttl > 0 else None,
            shared_cache_entries=args.shared_cache_entries,
            mmap=not args.no_mmap,
            use_postings=not args.no_postings,
        ),
    )
    # A WAL-backed directory recovers first: deltas a crashed predecessor
    # durably logged are folded into a fresh published generation, and the
    # background compactor keeps folding live registrations from here on.
    maintainer = service.start_maintenance()
    # Fail fast on a missing/corrupt index instead of 500-ing every query.
    index = service.ensure_ready()
    # Under process execution, pay worker spawn + mmap cost up front too, so
    # the first request hits a warm pool rather than a cold fork storm.
    service.start_workers()
    server = serve(service, host=args.host, port=args.port, verbose=args.verbose)
    host, port = server.server_address[:2]
    maintained = (
        f", maintained (generation {service.published_generation()})"
        if maintainer is not None
        else ""
    )
    print(
        f"serving {args.index} ({len(index)} candidates, "
        f"{args.execution} execution{maintained}) "
        f"on http://{host}:{port} — POST /query, GET /healthz, GET /metrics",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


def _command_index(args: argparse.Namespace) -> int:
    handlers = {
        "build": _command_index_build,
        "add": _command_index_add,
        "ingest": _command_index_ingest,
        "info": _command_index_info,
        "log": _command_index_log,
        "compact": _command_index_compact,
        "jobs": _command_index_jobs,
        "postings": _command_index_postings,
        "query": _command_index_query,
    }
    return handlers[args.index_command](args)


def _command_experiment(args: argparse.Namespace) -> int:
    runners = _experiment_runners()
    overrides = dict(_EXPERIMENT_SCALES[args.scale].get(args.name, {}))
    overrides["random_state"] = args.seed
    result = runners[args.name](**overrides)
    print(result.report())
    return 0


def _command_eval(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        append_run_log,
        build_report,
        render_markdown,
        run_scenario_suite,
        write_report,
    )

    def split(option: Optional[str]) -> Optional[list[str]]:
        if option is None:
            return None
        return [item.strip() for item in option.split(",") if item.strip()]

    capacities = [int(item) for item in split(args.capacities) or []]
    result = run_scenario_suite(
        methods=split(args.methods),
        capacities=capacities,
        families=split(args.families),
        replicates=args.replicates,
        sample_size=args.sample_size,
        seed=args.seed,
        ci_replicates=args.ci_replicates,
    )
    report = build_report(result)
    if args.json_out or args.markdown_out:
        written = write_report(
            report,
            args.json_out or Path(args.markdown_out).with_suffix(".json"),
            args.markdown_out,
        )
        print(f"wrote {written}", file=sys.stderr)
    if args.run_log:
        append_run_log(report, args.run_log)
    if not args.quiet:
        print(render_markdown(report))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "sketch": _command_sketch,
        "estimate": _command_estimate,
        "config": _command_config,
        "experiment": _command_experiment,
        "eval": _command_eval,
        "index": _command_index,
        "serve": _command_serve,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        # One friendly line (library errors carry their own context, e.g. a
        # StoreError naming the corrupt file) instead of a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
