"""Streaming (one-pass) ingestion: pluggable sources, sketchers, ingestors.

Section IV-A of the paper notes that sketch construction "can be done in a
single pass" over the table.  This package generalizes that claim from the
original TUPSK-only streamers to **every** sketching method and wires it
through the whole pipeline, so tables never have to fit in memory:

* :mod:`repro.ingest.reader` — the chunk-source contract
  (:class:`~repro.ingest.reader.TableReader` +
  :class:`~repro.ingest.reader.SchemaProvider`) and the stdlib sources: an
  in-memory slicer and a two-pass CSV reader, both yielding consistently
  typed :class:`~repro.relational.table.Table` chunks in ``O(chunk)``
  memory;
* :mod:`repro.ingest.parquet` — the Arrow/Parquet-native source (optional
  ``pyarrow`` dependency): dtypes from file metadata with no data pass,
  row-group-aligned chunking, identical value coercion to the CSV path;
* :mod:`repro.ingest.sources` — the pluggable format registry every
  consumer resolves through: :func:`~repro.ingest.sources.open_source`
  (extension auto-detection, ``format=`` override),
  :func:`~repro.ingest.sources.register_source`, and lake directories via
  :class:`~repro.ingest.sources.DirectorySource` /
  :func:`~repro.ingest.sources.open_lake`;
* :mod:`repro.ingest.sketchers` — streaming sketchers per method (base and
  candidate side) plus a streaming KMV path, all **bit-identical** to batch
  construction on the same rows, with mergeable partial states where the
  method's sampling frame allows it;
* :mod:`repro.ingest.ingestor` — :class:`TableIngestor`, which turns a
  stream of chunks into fully-fledged discovery-index candidates (profiles,
  KMV key sketches, MI sketches) without ever materializing the table.

Entry points higher up the stack: ``SketchEngine.sketch_stream`` /
``SketchEngine.ingest_table``, ``IndexBuilder.add_table_stream``,
``DiscoveryService.register_table`` and the ``repro index ingest`` CLI —
each accepts a reader, a ``Table``, a chunk iterable or a plain file path.
See ``docs/ingestion.md`` for the source registry and the memory model per
method.
"""

from repro.ingest.reader import (
    CSVReader,
    InMemoryReader,
    SchemaProvider,
    TableReader,
    iter_chunks,
)
from repro.ingest.sketchers import (
    CandidateFamilyState,
    StreamingBaseSketcher,
    StreamingBufferedBaseSketcher,
    StreamingCandidateSketcher,
    StreamingFirstValueBaseSketcher,
    StreamingTwoLevelBaseSketcher,
    streaming_base_sketcher,
    streaming_candidate_sketcher,
)
from repro.ingest.sources import (
    DirectorySource,
    SourceFormat,
    detect_format,
    open_lake,
    open_source,
    register_source,
    source_formats,
)

__all__ = [
    "SchemaProvider",
    "TableReader",
    "InMemoryReader",
    "CSVReader",
    "ParquetReader",
    "iter_chunks",
    "SourceFormat",
    "register_source",
    "source_formats",
    "detect_format",
    "open_source",
    "open_lake",
    "DirectorySource",
    "CandidateFamilyState",
    "StreamingBaseSketcher",
    "StreamingCandidateSketcher",
    "StreamingFirstValueBaseSketcher",
    "StreamingTwoLevelBaseSketcher",
    "StreamingBufferedBaseSketcher",
    "streaming_base_sketcher",
    "streaming_candidate_sketcher",
    "TableIngestor",
]


def __getattr__(name: str):
    # Resolved lazily (PEP 562): the ingestor builds discovery-index
    # candidates (heavyweight discovery/engine imports), and ParquetReader
    # lives in the optional-dependency module.
    if name == "TableIngestor":
        from repro.ingest.ingestor import TableIngestor

        return TableIngestor
    if name == "ParquetReader":
        from repro.ingest.parquet import ParquetReader

        return ParquetReader
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
