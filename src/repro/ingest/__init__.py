"""Streaming (one-pass) ingestion: chunked sources, sketchers and ingestors.

Section IV-A of the paper notes that sketch construction "can be done in a
single pass" over the table.  This package generalizes that claim from the
original TUPSK-only streamers to **every** sketching method and wires it
through the whole pipeline, so tables never have to fit in memory:

* :mod:`repro.ingest.reader` — chunked table sources: an in-memory slicer
  and a two-pass stdlib-CSV reader, both yielding consistently typed
  :class:`~repro.relational.table.Table` chunks in ``O(chunk)`` memory;
* :mod:`repro.ingest.sketchers` — streaming sketchers per method (base and
  candidate side) plus a streaming KMV path, all **bit-identical** to batch
  construction on the same rows, with mergeable partial states where the
  method's sampling frame allows it;
* :mod:`repro.ingest.ingestor` — :class:`TableIngestor`, which turns a
  stream of chunks into fully-fledged discovery-index candidates (profiles,
  KMV key sketches, MI sketches) without ever materializing the table.

Entry points higher up the stack: ``SketchEngine.sketch_stream`` /
``SketchEngine.ingest_table``, ``IndexBuilder.add_table_stream``,
``DiscoveryService.register_table`` and the ``repro index ingest`` CLI.
See ``docs/ingestion.md`` for the memory model per method.
"""

from repro.ingest.reader import CSVReader, InMemoryReader, TableReader, iter_chunks
from repro.ingest.sketchers import (
    CandidateFamilyState,
    StreamingBaseSketcher,
    StreamingBufferedBaseSketcher,
    StreamingCandidateSketcher,
    StreamingFirstValueBaseSketcher,
    StreamingTwoLevelBaseSketcher,
    streaming_base_sketcher,
    streaming_candidate_sketcher,
)

__all__ = [
    "TableReader",
    "InMemoryReader",
    "CSVReader",
    "iter_chunks",
    "CandidateFamilyState",
    "StreamingBaseSketcher",
    "StreamingCandidateSketcher",
    "StreamingFirstValueBaseSketcher",
    "StreamingTwoLevelBaseSketcher",
    "StreamingBufferedBaseSketcher",
    "streaming_base_sketcher",
    "streaming_candidate_sketcher",
    "TableIngestor",
]


def __getattr__(name: str):
    # Resolved lazily (PEP 562): the ingestor builds discovery-index
    # candidates, and the discovery/engine layers are heavyweight imports
    # this package's sketchers and readers do not need.
    if name == "TableIngestor":
        from repro.ingest.ingestor import TableIngestor

        return TableIngestor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
