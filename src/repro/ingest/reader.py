"""Chunked table sources for streaming ingestion.

A :class:`TableReader` yields a table as a sequence of
:class:`~repro.relational.table.Table` chunks that share one schema — every
chunk's columns carry the dtype the *whole* table would infer, so values are
coerced exactly as a one-shot load would coerce them and sketches built from
the chunks are bit-identical to sketches built from the materialized table.

The two halves of that contract are separable:

* :class:`SchemaProvider` — the schema-resolution protocol.  How a source
  learns its column dtypes is format-specific: CSV needs a whole-file
  inference pass (:class:`CSVReader` streams the file once through the
  shared :class:`~repro.relational.dtypes.DtypeFolder` rule), Parquet reads
  dtypes straight from file metadata with **no** data pass
  (:class:`~repro.ingest.parquet.ParquetReader`), and in-memory tables
  already carry theirs (:class:`InMemoryReader`).
* :class:`TableReader` — the chunk-iteration contract every consumer
  (engine, builder, serving, CLI) relies on.

Concrete readers are registered with, and resolved through, the pluggable
source registry in :mod:`repro.ingest.sources` (``open_source`` /
``open_lake``) — consumers never hard-wire a format.  This module provides
the two stdlib-only sources:

* :class:`InMemoryReader` — slices an existing ``Table`` (chunk columns
  inherit the parent column dtypes); useful for tests, for retrofitting
  chunked APIs onto in-memory data, and as the reference behaviour.
* :class:`CSVReader` — reads a CSV file through the stdlib ``csv`` module in
  two passes: a type-inference pass that folds each column's dtype with the
  same rule :func:`~repro.relational.dtypes.infer_column_dtype` applies
  (``O(columns)`` state), then a chunking pass that yields typed chunks.
  Peak memory is ``O(chunk)`` regardless of file size, and the resulting
  chunks coerce identically to :func:`~repro.relational.csvio.read_csv`
  loading the whole file.
"""

from __future__ import annotations

import csv
import os
from typing import (
    Iterable,
    Iterator,
    Optional,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

from repro.exceptions import IngestError, SchemaError
from repro.relational.column import Column
from repro.relational.dtypes import DType, DtypeFolder
from repro.relational.table import Table

__all__ = [
    "SchemaProvider",
    "TableReader",
    "InMemoryReader",
    "CSVReader",
    "iter_chunks",
]

#: Default number of rows per chunk.
DEFAULT_CHUNK_SIZE = 8192

PathLike = Union[str, os.PathLike]


@runtime_checkable
class SchemaProvider(Protocol):
    """Anything that can declare a table's column-name → dtype mapping.

    The schema must describe *every* chunk the provider will yield (one
    consistent mapping for the whole table), and resolving it should be as
    cheap as the format allows: metadata-only for self-describing formats
    (Parquet), one inference pass for untyped text (CSV), free for
    in-memory tables.
    """

    def schema(self) -> dict[str, DType]:
        """Column name to dtype mapping every yielded chunk adheres to."""
        ...  # pragma: no cover - protocol

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        ...  # pragma: no cover - protocol


class TableReader:
    """Iterable of consistently-typed :class:`Table` chunks of one table.

    Subclasses implement :meth:`chunks` and the :class:`SchemaProvider`
    protocol; iteration, the table ``name`` and the declared ``schema``
    (column name to :class:`DType`) are the shared contract the ingestion
    layer relies on.
    """

    def __init__(self, name: str, chunk_size: int):
        if chunk_size < 1:
            raise IngestError(f"chunk_size must be at least 1, got {chunk_size}")
        self.name = name
        self.chunk_size = int(chunk_size)

    def schema(self) -> dict[str, DType]:
        """Column name to dtype mapping every yielded chunk adheres to."""
        raise NotImplementedError

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self.schema())

    def chunks(self) -> Iterator[Table]:
        """Yield the table as chunks of at most ``chunk_size`` rows."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Table]:
        return self.chunks()


class InMemoryReader(TableReader):
    """Chunked view over an existing in-memory :class:`Table`.

    Chunk columns are sliced from the parent columns, so they inherit the
    parent dtypes (no re-inference) and the concatenation of all chunks
    reproduces the table exactly.
    """

    def __init__(
        self,
        table: Table,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        *,
        name: Optional[str] = None,
    ):
        super().__init__(name if name is not None else table.name, chunk_size)
        self.table = table

    def schema(self) -> dict[str, DType]:
        return self.table.schema()

    def chunks(self) -> Iterator[Table]:
        num_rows = self.table.num_rows
        for start in range(0, num_rows, self.chunk_size):
            stop = min(start + self.chunk_size, num_rows)
            yield Table(
                [column[start:stop] for column in self.table.columns],
                name=self.name,
            )


class CSVReader(TableReader):
    """Two-pass chunked CSV source with whole-file type inference.

    The first pass streams the file once to fold each column's dtype
    through the shared :class:`~repro.relational.dtypes.DtypeFolder`
    (constant memory); :meth:`chunks` then streams it again, yielding typed
    chunks whose values coerce exactly as a whole-file
    :func:`~repro.relational.csvio.read_csv` would coerce them.  Join keys
    in particular hash identically to the batch path — a column of numeric
    strings becomes numeric in every chunk, not just in chunks that happen
    to lack outliers.
    """

    def __init__(
        self,
        path: PathLike,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        *,
        name: str = "",
        delimiter: str = ",",
        columns: Optional[Sequence[str]] = None,
    ):
        table_name = name or os.path.splitext(os.path.basename(os.fspath(path)))[0]
        super().__init__(table_name, chunk_size)
        self.path = os.fspath(path)
        self.delimiter = delimiter
        self._projection = list(columns) if columns is not None else None
        self._schema: Optional[dict[str, DType]] = None

    def _rows(self) -> Iterator[list[str]]:
        """Stream (header-checked) data rows, mirroring ``read_csv``'s parse."""
        with open(self.path, "r", newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle, delimiter=self.delimiter)
            try:
                header = next(reader)
            except StopIteration:
                raise SchemaError("CSV input is empty (no header row)") from None
            header = [field.strip() for field in header]
            yield header
            for row in reader:
                if not row:
                    continue
                if len(row) != len(header):
                    raise SchemaError(
                        f"CSV row has {len(row)} fields, header has {len(header)}"
                    )
                yield row

    def schema(self) -> dict[str, DType]:
        if self._schema is None:
            rows = self._rows()
            header = next(rows)
            folders = [DtypeFolder() for _ in header]
            for row in rows:
                for folder, value in zip(folders, row):
                    folder.observe(value)
            schema = {
                column: folder.dtype for column, folder in zip(header, folders)
            }
            if self._projection is not None:
                missing = [name for name in self._projection if name not in schema]
                if missing:
                    raise SchemaError(
                        f"CSV {self.path} has no column(s): {', '.join(missing)}"
                    )
                schema = {name: schema[name] for name in self._projection}
            self._schema = schema
        return dict(self._schema)

    def chunks(self) -> Iterator[Table]:
        schema = self.schema()
        rows = self._rows()
        header = next(rows)
        keep = [position for position, name in enumerate(header) if name in schema]
        buffer: list[list[str]] = []
        for row in rows:
            buffer.append(row)
            if len(buffer) >= self.chunk_size:
                yield self._chunk(buffer, header, keep, schema)
                buffer = []
        if buffer:
            yield self._chunk(buffer, header, keep, schema)

    def _chunk(
        self,
        rows: list[list[str]],
        header: list[str],
        keep: list[int],
        schema: dict[str, DType],
    ) -> Table:
        columns = [
            Column(
                header[position],
                [row[position] for row in rows],
                dtype=schema[header[position]],
            )
            for position in keep
        ]
        table = Table(columns, name=self.name)
        if self._projection is not None:
            table = table.select(self._projection)
        return table


def iter_chunks(
    source: "TableReader | Table | PathLike | Iterable[Table]",
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> tuple[str, Iterator[Table]]:
    """Normalize a chunk source into ``(table name, chunk iterator)``.

    Accepts a :class:`TableReader`, a plain :class:`Table` (wrapped in an
    :class:`InMemoryReader`), a path to a table file (resolved through the
    :func:`~repro.ingest.sources.open_source` registry, with format
    auto-detection by extension) or any iterable of ``Table`` chunks (the
    name is then taken from the first chunk).  This is the coercion every
    streaming entry point (engine, builder, service) applies to its
    ``source`` argument.  Anything else raises :class:`IngestError` naming
    the supported source kinds.
    """
    if isinstance(source, (TableReader, Table, str, os.PathLike)):
        # Paths, tables and readers all resolve through the pluggable
        # source registry, so every entry point honors the same formats.
        from repro.ingest.sources import open_source

        reader = open_source(source, chunk_size=chunk_size)
        return reader.name, reader.chunks()
    try:
        iterator = iter(source)
    except TypeError:
        from repro.ingest.sources import supported_source_kinds

        raise IngestError(
            f"cannot ingest {type(source).__name__!r}: expected "
            f"{supported_source_kinds()}"
        ) from None
    try:
        first = next(iterator)
    except StopIteration:
        raise IngestError("cannot ingest an empty chunk stream") from None
    if not isinstance(first, Table):
        from repro.ingest.sources import supported_source_kinds

        raise IngestError(
            f"chunk sources must yield Table chunks, got "
            f"{type(first).__name__}; expected {supported_source_kinds()}"
        )

    def _chain() -> Iterator[Table]:
        yield first
        for chunk in iterator:
            if not isinstance(chunk, Table):
                raise IngestError(
                    f"chunk sources must yield Table chunks, "
                    f"got {type(chunk).__name__}"
                )
            yield chunk

    return first.name, _chain()
