"""Chunked construction of discovery-index candidates for one table.

The batch path (:meth:`IndexBuilder.add_table` / ``_build_shard``) profiles,
KMV-sketches and MI-sketches every (key column, value column) pair of a
materialized :class:`~repro.relational.table.Table`.  A
:class:`TableIngestor` produces the same
:class:`~repro.discovery.index.IndexedCandidate` objects — profiles
included — from a stream of table chunks, holding only

* one streaming candidate sketcher per (key, value) pair (see the memory
  table in :mod:`repro.ingest`),
* one incrementally-updated KMV key sketch per key column, and
* exact distinct-value sets and null counters for the profiles

in memory at any time.  Finalized candidates are bit-identical to batch
construction over the concatenated chunks, provided the chunks share one
schema (which the :mod:`~repro.ingest.reader` sources guarantee).  Feeding
hand-built chunks is diagnosed where it breaks equivalence: renamed columns
and categorical-vs-numeric dtype drift raise at the first mismatching chunk
(a column that hashes ints in one chunk and strings in another can never
match a whole-table load); INT/FLOAT drift is harmless — int and float keys
of equal value hash identically, and values are coerced to the folded
column dtype at finalize.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.discovery.index import IndexedCandidate
from repro.discovery.profile import ColumnPairProfile
from repro.discovery.query import candidate_identifier
from repro.engine.config import EngineConfig
from repro.engine.session import SketchEngine
from repro.exceptions import IngestError
from repro.ingest.sketchers import (
    CandidateFamilyState,
    StreamingCandidateSketcher,
    streaming_candidate_sketcher,
)
from repro.relational.aggregate import AggregateFunction, get_aggregate
from repro.relational.dtypes import DType, join_dtypes
from repro.relational.table import Table
from repro.sketches.kmv import KMVSketch

__all__ = ["TableIngestor"]


class _ColumnStats:
    """Exact distinct/null counters a profile needs, folded chunk by chunk.

    Exactness is the point — profiles must match the batch builder's — so
    the distinct sets are real sets: memory is ``O(distinct values)`` per
    column, which for near-unique columns approaches the column size even
    though the sketch state stays bounded (documented in
    ``docs/ingestion.md``).
    """

    __slots__ = ("dtype", "distinct", "nulls")

    def __init__(self) -> None:
        self.dtype = DType.MISSING
        self.distinct: set = set()
        self.nulls = 0

    def observe(self, values: list, dtype: DType) -> None:
        self.dtype = join_dtypes(self.dtype, dtype)
        self.nulls += values.count(None)
        self.distinct.update(values)

    def distinct_count(self) -> int:
        return len(self.distinct) - (1 if None in self.distinct else 0)


class TableIngestor:
    """Builds one table's index candidates from chunks, without the table.

    Parameters
    ----------
    engine:
        The :class:`SketchEngine` session (or :class:`EngineConfig`) whose
        method, capacity, seed, ``vectorized`` flag and featurization
        defaults every produced candidate follows — the same contract the
        batch :class:`~repro.discovery.builder.IndexBuilder` has.
    key_columns:
        Join-key columns to index the table under.
    value_columns:
        Candidate value columns; defaults to every non-key column of the
        first chunk, mirroring ``add_table``.
    name:
        Table name used in candidate identifiers and profiles.
    agg:
        Featurization function for every pair; defaults per column to the
        engine config's aggregate for the column's dtype.
    """

    def __init__(
        self,
        engine: "SketchEngine | EngineConfig | None" = None,
        key_columns: Iterable[str] = (),
        value_columns: Optional[Iterable[str]] = None,
        *,
        name: str = "",
        agg: "str | AggregateFunction | None" = None,
        metadata: Optional[dict[str, object]] = None,
    ):
        if isinstance(engine, EngineConfig):
            engine = SketchEngine(engine)
        elif engine is None:
            engine = SketchEngine(EngineConfig())
        elif not isinstance(engine, SketchEngine):
            raise IngestError(
                f"engine must be a SketchEngine or EngineConfig, "
                f"got {type(engine).__name__}"
            )
        self._engine = engine
        self.name = name
        self._key_columns = list(key_columns)
        if not self._key_columns:
            raise IngestError(f"table {name!r} needs at least one key column")
        self._requested_values = (
            list(value_columns) if value_columns is not None else None
        )
        self._agg = get_aggregate(agg) if agg is not None else None
        self._metadata = dict(metadata or {})
        self._rows = 0
        self._column_names: Optional[tuple[str, ...]] = None
        self._value_columns: list[str] = []
        self._key_stats: dict[str, _ColumnStats] = {}
        self._key_kmv: dict[str, KMVSketch] = {}
        self._value_stats: dict[str, _ColumnStats] = {}
        # (key column, value column) -> (sketcher, aggregate)
        self._sketchers: dict[
            tuple[str, str], tuple[StreamingCandidateSketcher, AggregateFunction]
        ] = {}

    @property
    def engine(self) -> SketchEngine:
        return self._engine

    @property
    def rows(self) -> int:
        """Rows consumed so far (including null-key rows)."""
        return self._rows

    # ------------------------------------------------------------------ #
    # Consumption
    # ------------------------------------------------------------------ #
    def _initialize(self, chunk: Table) -> None:
        config = self._engine.config
        for key_column in self._key_columns:
            chunk.column(key_column)  # raises ColumnNotFoundError early
        if self._requested_values is None:
            value_list = [
                column
                for column in chunk.column_names
                if column not in self._key_columns
            ]
        else:
            value_list = list(self._requested_values)
            for value_column in value_list:
                chunk.column(value_column)
        self._column_names = chunk.column_names
        self._value_columns = value_list
        for key_column in self._key_columns:
            self._key_stats[key_column] = _ColumnStats()
            self._key_kmv[key_column] = KMVSketch(
                capacity=config.capacity, seed=config.seed
            )
            # One shared selection memo per column family, like the batch
            # builder's KeyGroups: candidate keys are ranked (and hashed)
            # once per family, not once per value column.
            family = CandidateFamilyState()
            for value_column in value_list:
                if value_column == key_column:
                    continue
                # The default aggregate follows the column's dtype; chunks
                # share one schema, so the first chunk's dtype is the
                # table's dtype (the readers guarantee this).
                agg = self._agg
                if agg is None:
                    agg = config.default_aggregate_for(
                        chunk.column(value_column).dtype
                    )
                self._sketchers[(key_column, value_column)] = (
                    streaming_candidate_sketcher(
                        config.method,
                        config.capacity,
                        config.seed,
                        agg=agg,
                        vectorized=config.vectorized,
                        family=family,
                    ),
                    agg,
                )
        if not self._sketchers:
            raise IngestError(
                f"table {self.name!r} has no candidate (key, value) column pairs"
            )
        for value_column in value_list:
            self._value_stats[value_column] = _ColumnStats()

    def add_chunk(self, chunk: Table) -> "TableIngestor":
        """Consume one chunk; returns ``self`` for chaining."""
        if self._column_names is None:
            self._initialize(chunk)
        elif chunk.column_names != self._column_names:
            raise IngestError(
                f"chunk schema drifted for table {self.name!r}: expected columns "
                f"{', '.join(self._column_names)}, got {', '.join(chunk.column_names)}"
            )
        total_rows = chunk.num_rows
        self._rows += total_rows
        # Normalize the key side once per key column (the chunk's columns
        # are already coerced, so missing keys are exactly the Nones), then
        # feed every value column through the trusted pre-filtered path.
        kept_keys: dict[str, list] = {}
        kept_rows: dict[str, "list[int] | None"] = {}
        for key_column in self._key_columns:
            column = chunk.column(key_column)
            keys = column.values
            self._check_dtype_drift(key_column, self._key_stats[key_column], column.dtype)
            self._key_stats[key_column].observe(keys, column.dtype)
            self._key_kmv[key_column].update_many(
                keys, vectorized=self._engine.config.vectorized
            )
            if None in keys:
                rows = [row for row, key in enumerate(keys) if key is not None]
                kept_keys[key_column] = [keys[row] for row in rows]
                kept_rows[key_column] = rows
            else:
                kept_keys[key_column] = keys
                kept_rows[key_column] = None
        for value_column in self._value_columns:
            column = chunk.column(value_column)
            values = column.values
            self._check_dtype_drift(
                value_column, self._value_stats[value_column], column.dtype
            )
            self._value_stats[value_column].observe(values, column.dtype)
            for key_column in self._key_columns:
                sketcher_entry = self._sketchers.get((key_column, value_column))
                if sketcher_entry is None:
                    continue
                rows = kept_rows[key_column]
                sketcher_entry[0].add_filtered_chunk(
                    kept_keys[key_column],
                    values if rows is None else [values[row] for row in rows],
                    total_rows=total_rows,
                    value_dtype=column.dtype,
                )
        return self

    def _check_dtype_drift(
        self, column_name: str, stats: _ColumnStats, dtype: DType
    ) -> None:
        """Reject categorical-vs-numeric dtype drift between chunks.

        Unrecoverable: earlier chunks already hashed/aggregated under the
        other coercion, and a whole-table load would have coerced them
        differently.  (INT/FLOAT drift is harmless — equal-valued int and
        float keys hash identically, and values coerce to the folded dtype
        at finalize — and all-missing chunks join with anything.)
        """
        if (
            dtype is not DType.MISSING
            and stats.dtype is not DType.MISSING
            and (dtype is DType.STRING) != (stats.dtype is DType.STRING)
        ):
            raise IngestError(
                f"chunk schema drifted for table {self.name!r}: column "
                f"{column_name!r} was {stats.dtype.value} in earlier chunks "
                f"but {dtype.value} in this chunk; re-chunk the source with "
                f"one consistent schema (the repro.ingest readers guarantee one)"
            )

    def extend(self, chunks: Iterable[Table]) -> "TableIngestor":
        """Consume many chunks; returns ``self`` for chaining."""
        for chunk in chunks:
            self.add_chunk(chunk)
        return self

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #
    def finalize(self) -> list[IndexedCandidate]:
        """Produce the table's candidates, in ``add_table`` registration order."""
        if self._column_names is None:
            raise IngestError(
                f"cannot finalize table {self.name!r}: no chunks were consumed"
            )
        candidates = []
        for key_column in self._key_columns:
            key_stats = self._key_stats[key_column]
            key_kmv = self._key_kmv[key_column]
            for value_column in self._value_columns:
                if value_column == key_column:
                    continue
                sketcher, agg = self._sketchers[(key_column, value_column)]
                value_stats = self._value_stats[value_column]
                profile = ColumnPairProfile(
                    table_name=self.name,
                    key_column=key_column,
                    value_column=value_column,
                    num_rows=self._rows,
                    key_distinct=key_stats.distinct_count(),
                    key_nulls=key_stats.nulls,
                    value_dtype=value_stats.dtype,
                    value_distinct=value_stats.distinct_count(),
                    value_nulls=value_stats.nulls,
                )
                sketch = sketcher.finalize(
                    key_column=key_column,
                    value_column=value_column,
                    table_name=self.name,
                    input_dtype=value_stats.dtype,
                )
                candidates.append(
                    IndexedCandidate(
                        candidate_id=candidate_identifier(
                            self.name, key_column, value_column, agg.value
                        ),
                        profile=profile,
                        aggregate=agg.value,
                        sketch=sketch,
                        key_kmv=key_kmv,
                        metadata=dict(self._metadata),
                    )
                )
        return candidates
