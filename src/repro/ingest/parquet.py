"""Arrow/Parquet-native chunked table source.

:class:`ParquetReader` is the columnar twin of
:class:`~repro.ingest.reader.CSVReader`: it yields a Parquet file as
consistently-typed :class:`~repro.relational.table.Table` chunks.  Unlike
CSV — untyped text that needs a whole-file inference pass — Parquet is
self-describing, so :meth:`ParquetReader.schema` resolves column dtypes
from the file footer's Arrow schema with **zero** data passes, and
:meth:`ParquetReader.chunks` performs the single data pass, reading
row-group-aligned record batches through
:meth:`pyarrow.parquet.ParquetFile.iter_batches` (a batch never spans a
row-group boundary, so I/O stays sequential per column chunk).

Arrow values are converted to the relational layer's Python representation
through the same :class:`~repro.relational.column.Column` coercion the CSV
path applies — Arrow nulls and float NaN both normalize to ``None``,
integers stay exact Python ints — so the same logical rows produce
bit-identical sketches regardless of which on-disk format carried them.

``pyarrow`` is an **optional** dependency: this module imports without it,
and constructing a :class:`ParquetReader` raises
:class:`~repro.exceptions.IngestError` with install instructions when it is
missing.  Everything here talks to pyarrow through a narrow surface
(``ParquetFile``, ``schema_arrow``, ``iter_batches``, ``pyarrow.types``
predicates, ``Array.to_pylist``) so tests can substitute a counting stub.
"""

from __future__ import annotations

import os
from typing import Any, Iterator, Optional, Sequence

from repro.exceptions import IngestError, SchemaError
from repro.ingest.reader import DEFAULT_CHUNK_SIZE, PathLike, TableReader
from repro.relational.column import Column
from repro.relational.dtypes import DType
from repro.relational.table import Table

__all__ = ["ParquetReader", "PYARROW_INSTALL_HINT"]

#: One-line remedy surfaced whenever pyarrow is needed but absent.
PYARROW_INSTALL_HINT = (
    "reading Parquet requires the optional pyarrow dependency; "
    "install it with `pip install pyarrow`"
)


def load_pyarrow() -> Any:
    """Import and return the ``pyarrow`` module, or raise :class:`IngestError`.

    Centralizing the import keeps the optional-dependency failure mode in
    one place (a typed error with the install hint, exit code 2 at the
    CLI) and gives tests a single seam to stub.
    """
    try:
        import pyarrow
        import pyarrow.parquet  # noqa: F401  (attaches the .parquet submodule)
    except ImportError:
        raise IngestError(PYARROW_INSTALL_HINT) from None
    return pyarrow


def _dtype_from_arrow(arrow_type: Any, types: Any, column: str) -> DType:
    """Map an Arrow type to the relational layer's logical :class:`DType`.

    The mapping mirrors what CSV inference would conclude for the textual
    rendering of the same values: integers are INT, floating point and
    decimals are FLOAT, strings are STRING, booleans and temporals are
    categorical STRING (matching ``infer_dtype``'s treatment of ``bool``
    and of date-like text), and all-null columns are MISSING.  Dictionary
    encodings resolve to their value type.
    """
    if types.is_dictionary(arrow_type):
        arrow_type = arrow_type.value_type
    if types.is_null(arrow_type):
        return DType.MISSING
    if types.is_boolean(arrow_type):
        return DType.STRING
    if types.is_integer(arrow_type):
        return DType.INT
    if types.is_floating(arrow_type) or types.is_decimal(arrow_type):
        return DType.FLOAT
    if types.is_string(arrow_type) or types.is_large_string(arrow_type):
        return DType.STRING
    if types.is_temporal(arrow_type):
        return DType.STRING
    raise IngestError(
        f"Parquet column {column!r} has unsupported Arrow type {arrow_type}; "
        f"supported: integer, floating, decimal, string, boolean, temporal "
        f"and null columns"
    )


class ParquetReader(TableReader):
    """Chunked Parquet source with metadata-only schema resolution.

    Parameters
    ----------
    path:
        Parquet file path.
    chunk_size:
        Upper bound on rows per yielded chunk (batches are additionally
        bounded by row-group size — a chunk never spans row groups).
    name:
        Table name; defaults to the file's base name, like ``CSVReader``.
    columns:
        Optional subset of columns to keep (projection pushed down to the
        Parquet column reader — unprojected columns are never decoded).
    """

    def __init__(
        self,
        path: PathLike,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        *,
        name: str = "",
        columns: Optional[Sequence[str]] = None,
    ):
        table_name = name or os.path.splitext(os.path.basename(os.fspath(path)))[0]
        super().__init__(table_name, chunk_size)
        # Fail fast: a reader that cannot possibly yield data should not
        # get as far as an engine/builder entry point before erroring.
        self._pyarrow = load_pyarrow()
        self.path = os.fspath(path)
        self._projection = list(columns) if columns is not None else None
        self._schema: Optional[dict[str, DType]] = None
        self._file: Optional[Any] = None

    def _parquet_file(self) -> Any:
        if self._file is None:
            try:
                self._file = self._pyarrow.parquet.ParquetFile(self.path)
            except FileNotFoundError:
                raise
            except Exception as exc:
                raise IngestError(
                    f"could not open Parquet file {self.path!r}: {exc}"
                ) from exc
        return self._file

    def schema(self) -> dict[str, DType]:
        """Column dtypes, resolved from file metadata — **no** data pass.

        Only the footer (Arrow schema) is consulted; no row group is read
        and no values are decoded, so resolving the schema of an arbitrarily
        large file is O(footer).
        """
        if self._schema is None:
            parquet_file = self._parquet_file()
            types = self._pyarrow.types
            schema = {
                field.name: _dtype_from_arrow(field.type, types, field.name)
                for field in parquet_file.schema_arrow
            }
            if self._projection is not None:
                missing = [name for name in self._projection if name not in schema]
                if missing:
                    raise SchemaError(
                        f"Parquet {self.path} has no column(s): "
                        f"{', '.join(missing)}"
                    )
                schema = {name: schema[name] for name in self._projection}
            self._schema = schema
        return dict(self._schema)

    @property
    def num_rows(self) -> int:
        """Total row count, from file metadata (no data pass)."""
        return int(self._parquet_file().metadata.num_rows)

    def chunks(self) -> Iterator[Table]:
        """Yield row-group-aligned chunks of at most ``chunk_size`` rows.

        Each Arrow record batch converts to a ``Table`` whose columns carry
        the metadata-declared dtype; values go through the same ``Column``
        coercion as every other source, so nulls/NaN normalize to ``None``
        and numeric representations match the CSV path exactly.
        """
        schema = self.schema()
        names = list(schema)
        parquet_file = self._parquet_file()
        for batch in parquet_file.iter_batches(
            batch_size=self.chunk_size, columns=names, use_threads=False
        ):
            if batch.num_rows == 0:
                continue
            by_name = dict(zip(batch.schema.names, batch.columns))
            yield Table(
                [
                    Column(name, by_name[name].to_pylist(), dtype=schema[name])
                    for name in names
                ],
                name=self.name,
            )
