"""Pluggable table-source registry: formats, ``open_source`` and lakes.

Every consumer of tabular input — ``SketchEngine.ingest_table`` /
``sketch_stream``, ``IndexBuilder.add_table_stream``,
``DiscoveryService.register_table`` and the ``repro index ingest`` CLI —
resolves its source through this module instead of instantiating a concrete
reader.  The seam has three pieces:

* :class:`SourceFormat` — a registered on-disk table format: its name, the
  file extensions it claims, a factory producing a
  :class:`~repro.ingest.reader.TableReader`, how it resolves schemas (the
  :class:`~repro.ingest.reader.SchemaProvider` cost class) and its optional
  dependency, if any.  :func:`register_source` adds new formats;
  the built-ins are ``csv`` (stdlib, two-pass inference) and ``parquet``
  (pyarrow, metadata-only schema — see :mod:`repro.ingest.parquet`).
* :func:`open_source` — the one factory everything funnels through: give
  it a path (format auto-detected by extension, or forced), a ``Table``
  (wrapped in an :class:`~repro.ingest.reader.InMemoryReader`) or an
  already-open reader, get a ``TableReader`` back.  Unknown extensions,
  missing files, directories and unsupported inputs all raise a typed
  :class:`~repro.exceptions.IngestError` naming the supported formats.
* :class:`DirectorySource` / :func:`open_lake` — a staging/lake directory
  of data files, one logical table per file (named after the file stem):
  the unit ``repro index ingest --lake DIR`` and live registration consume.
  Hidden files, ``_``-prefixed markers (``_SUCCESS``) and unrecognized
  extensions are skipped (and reported via :attr:`DirectorySource.skipped`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence, Union

from repro.exceptions import IngestError
from repro.ingest.reader import (
    DEFAULT_CHUNK_SIZE,
    CSVReader,
    InMemoryReader,
    PathLike,
    TableReader,
)
from repro.relational.table import Table

__all__ = [
    "SourceFormat",
    "register_source",
    "source_formats",
    "get_format",
    "detect_format",
    "supported_source_kinds",
    "open_source",
    "open_lake",
    "DirectorySource",
]


@dataclass(frozen=True)
class SourceFormat:
    """A registered on-disk table format.

    Parameters
    ----------
    name:
        Registry key (``"csv"``, ``"parquet"``, ...), also the value the
        CLI's ``--format`` accepts.
    extensions:
        Lower-case file extensions (with the dot) auto-detection claims.
    factory:
        ``factory(path, chunk_size=..., name=..., columns=...)`` returning
        a :class:`~repro.ingest.reader.TableReader` for one file.
    schema_inference:
        Human-readable schema-resolution cost (surfaced in docs/errors),
        e.g. ``"two-pass (whole-file dtype fold)"`` or
        ``"metadata-only (no data pass)"``.
    requires:
        Optional dependency the factory needs at open time (``None`` for
        stdlib-only formats).  Registration never imports it — the factory
        raises a typed error with install instructions when it is missing.
    """

    name: str
    extensions: tuple[str, ...]
    factory: Callable[..., TableReader] = field(repr=False)
    schema_inference: str = ""
    requires: Optional[str] = None


_REGISTRY: dict[str, SourceFormat] = {}


def register_source(format_spec: SourceFormat) -> None:
    """Register (or replace) a table format in the source registry.

    Extensions must be unambiguous: claiming an extension another format
    already owns raises :class:`IngestError`.
    """
    for extension in format_spec.extensions:
        if not extension.startswith("."):
            raise IngestError(
                f"format {format_spec.name!r} extension {extension!r} must "
                f"start with a dot"
            )
        owner = _REGISTRY.get(_extension_owner(extension) or "")
        if owner is not None and owner.name != format_spec.name:
            raise IngestError(
                f"extension {extension!r} is already registered to format "
                f"{owner.name!r}"
            )
    _REGISTRY[format_spec.name] = format_spec


def _extension_owner(extension: str) -> Optional[str]:
    for format_spec in _REGISTRY.values():
        if extension.lower() in format_spec.extensions:
            return format_spec.name
    return None


def source_formats() -> tuple[SourceFormat, ...]:
    """Registered formats, in registration order."""
    return tuple(_REGISTRY.values())


def supported_extensions() -> dict[str, str]:
    """Mapping of registered file extension to format name."""
    return {
        extension: format_spec.name
        for format_spec in _REGISTRY.values()
        for extension in format_spec.extensions
    }


def get_format(name: str) -> SourceFormat:
    """Look up a registered format by name, with a naming error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise IngestError(
            f"unknown table format {name!r}; registered formats: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def detect_format(path: PathLike) -> SourceFormat:
    """Resolve a file path's format from its extension.

    Raises :class:`IngestError` naming the supported extensions when the
    extension is unknown (pass an explicit ``format=`` to override).
    """
    text = os.fspath(path)
    extension = os.path.splitext(text)[1].lower()
    owner = _extension_owner(extension) if extension else None
    if owner is None:
        known = ", ".join(
            f"{ext} ({name})" for ext, name in sorted(supported_extensions().items())
        )
        raise IngestError(
            f"cannot detect the table format of {text!r} from its extension "
            f"{extension or '(none)'!r}; supported extensions: {known} — "
            f"or pass the format explicitly"
        )
    return _REGISTRY[owner]


def supported_source_kinds() -> str:
    """One-line description of every accepted source kind (for errors)."""
    formats = ", ".join(
        f"{spec.name} ({'/'.join(spec.extensions)})" for spec in source_formats()
    )
    return (
        f"a Table, a TableReader, an iterable of Table chunks, or a path "
        f"to a table file in a registered format: {formats}"
    )


def open_source(
    source: Union[TableReader, Table, PathLike],
    *,
    format: str = "auto",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    name: Optional[str] = None,
    columns: Optional[Sequence[str]] = None,
) -> TableReader:
    """Resolve any supported table input into a :class:`TableReader`.

    * an existing ``TableReader`` passes through unchanged;
    * a ``Table`` wraps in an :class:`InMemoryReader` (``columns`` projects
      it first);
    * a ``str``/``os.PathLike`` resolves through the format registry —
      auto-detected from the extension, or forced via ``format=``.

    Everything else — and unknown extensions, unknown format names, missing
    files, directories — raises :class:`IngestError` with the supported
    alternatives spelled out.
    """
    if isinstance(source, TableReader):
        if format != "auto":
            raise IngestError(
                "format= applies to path sources; got an already-open "
                f"{type(source).__name__}"
            )
        return source
    if isinstance(source, Table):
        if format != "auto":
            raise IngestError(
                "format= applies to path sources; got an in-memory Table"
            )
        table = source.select(columns) if columns is not None else source
        return InMemoryReader(table, chunk_size, name=name)
    if isinstance(source, (str, os.PathLike)):
        path = os.fspath(source)
        if os.path.isdir(path):
            raise IngestError(
                f"{path!r} is a directory; open lake directories with "
                f"open_lake()/DirectorySource (CLI: repro index ingest "
                f"--lake {path})"
            )
        format_spec = detect_format(path) if format == "auto" else get_format(format)
        if not os.path.exists(path):
            raise IngestError(f"no such table file: {path!r}")
        kwargs: dict = {"chunk_size": chunk_size}
        if name is not None:
            kwargs["name"] = name
        if columns is not None:
            kwargs["columns"] = columns
        return format_spec.factory(path, **kwargs)
    raise IngestError(
        f"cannot open {type(source).__name__!r} as a table source: "
        f"expected {supported_source_kinds()}"
    )


class DirectorySource:
    """A staging/lake directory of table files — one logical table each.

    Files are discovered non-recursively, sorted by name for deterministic
    registration order, and each resolves through :func:`open_source` under
    this source's ``format``/``chunk_size``/``columns`` settings.  Hidden
    (``.``-prefixed) and marker (``_``-prefixed, e.g. ``_SUCCESS``) files
    are ignored; files with unrecognized extensions are skipped and listed
    in :attr:`skipped` rather than failing the whole lake.  Two files that
    would produce the same table name (``a.csv`` + ``a.parquet``) are
    ambiguous and raise :class:`IngestError`.
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        format: str = "auto",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        columns: Optional[Sequence[str]] = None,
    ):
        self.directory = os.fspath(directory)
        if not os.path.isdir(self.directory):
            raise IngestError(f"lake directory not found: {self.directory!r}")
        self.format = format
        self.chunk_size = int(chunk_size)
        self._columns = list(columns) if columns is not None else None
        if format == "auto":
            accepted = set(supported_extensions())
        else:
            accepted = set(get_format(format).extensions)
        paths: list[str] = []
        skipped: list[str] = []
        for entry in sorted(os.listdir(self.directory)):
            full = os.path.join(self.directory, entry)
            if not os.path.isfile(full) or entry.startswith((".", "_")):
                continue
            if os.path.splitext(entry)[1].lower() in accepted:
                paths.append(full)
            else:
                skipped.append(full)
        self.paths: tuple[str, ...] = tuple(paths)
        self.skipped: tuple[str, ...] = tuple(skipped)
        if not self.paths:
            known = ", ".join(sorted(accepted))
            raise IngestError(
                f"lake directory {self.directory!r} contains no recognized "
                f"table files (looked for: {known})"
            )
        stems: dict[str, str] = {}
        for path in self.paths:
            stem = os.path.splitext(os.path.basename(path))[0]
            if stem in stems:
                raise IngestError(
                    f"lake directory {self.directory!r} has two files for "
                    f"table {stem!r}: {stems[stem]!r} and "
                    f"{os.path.basename(path)!r}"
                )
            stems[stem] = os.path.basename(path)

    def __len__(self) -> int:
        return len(self.paths)

    def sources(self) -> Iterator[TableReader]:
        """Yield one :class:`TableReader` per data file, in name order."""
        for path in self.paths:
            yield open_source(
                path,
                format=self.format,
                chunk_size=self.chunk_size,
                columns=self._columns,
            )

    def __iter__(self) -> Iterator[TableReader]:
        return self.sources()


def open_lake(
    directory: PathLike,
    *,
    format: str = "auto",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    columns: Optional[Sequence[str]] = None,
) -> DirectorySource:
    """Open a lake/staging directory as a :class:`DirectorySource`."""
    return DirectorySource(
        directory, format=format, chunk_size=chunk_size, columns=columns
    )


def _parquet_factory(path: PathLike, **kwargs) -> TableReader:
    # Imported lazily so registering the format never touches pyarrow; the
    # reader's constructor raises the install-hint IngestError if absent.
    from repro.ingest.parquet import ParquetReader

    return ParquetReader(path, **kwargs)


register_source(
    SourceFormat(
        name="csv",
        extensions=(".csv",),
        factory=CSVReader,
        schema_inference="two-pass (whole-file dtype-inference pass, then chunking)",
        requires=None,
    )
)
register_source(
    SourceFormat(
        name="parquet",
        extensions=(".parquet", ".pq"),
        factory=_parquet_factory,
        schema_inference="metadata-only (dtypes from the file footer, no data pass)",
        requires="pyarrow",
    )
)
