"""Streaming sketch construction for every sketching method.

The batch builders (:mod:`repro.sketches`) consume a whole
:class:`~repro.relational.table.Table`; the sketchers here consume
``(key, value)`` rows — one at a time (:meth:`add`), many at a time
(:meth:`extend`), or one aligned chunk at a time (:meth:`add_chunk`, which
routes hashing through the batched NumPy fast paths when ``vectorized``).
Every sketcher's :meth:`finalize` produces a sketch **bit-identical** to the
batch builder run over the same rows, which the property suite asserts.

Matching the batch path exactly requires reproducing the relational layer's
column semantics on a stream:

* missing entries (``None``, NaN, tokens like ``"na"``) are normalized the
  way :class:`~repro.relational.column.Column` coercion normalizes them —
  missing keys drop the row, missing values become ``None``;
* the value column's logical dtype is inferred *incrementally* over every
  consumed row (the same join rule as
  :func:`~repro.relational.dtypes.infer_column_dtype`), and the retained /
  aggregated values are coerced to it at finalize time, exactly as a
  ``Column`` coerces before the batch builder ever sees the values;
* incremental aggregation state mirrors
  :func:`~repro.relational.aggregate.aggregate_values` — including mixed
  int/float streams, numeric-looking strings, ``MIN``/``MAX`` over columns
  that only later turn out to be categorical, and the exact left-to-right
  float accumulation order of ``sum()``.

Memory model (``n`` = sketch capacity, ``d`` = distinct non-null keys,
``N`` = non-null-key rows):

=========  ===========================  ==========================================
method     base side                    candidate side
=========  ===========================  ==========================================
TUPSK      ``O(n + d)``                 ``O(d)`` (+ per-key lists for MODE/MEDIAN)
CSK        ``O(d)``                     ``O(d)``
LV2SK      ``O(d + rows of n keys)``    ``O(d)`` (+ per-key lists for MODE/MEDIAN)
PRISK      ``O(N)`` (buffered)          ``O(d)`` (+ per-key lists for MODE/MEDIAN)
INDSK      ``O(N)`` (buffered)          ``O(d)`` (+ per-key lists for MODE/MEDIAN)
=========  ===========================  ==========================================

PRISK's priority-sampling weights and INDSK's uniform draws depend on the
*final* key frequencies / row count, so their base side cannot prune rows
online; the buffered sketcher keeps the stream and delegates to the batch
builder at finalize, which still lets chunked sources avoid materializing a
``Table`` and keeps every other method bounded.

Partial states built over disjoint row ranges can be combined with
:meth:`merge` (earlier state first) for every sketcher except the TUPSK base
side, whose ``(key, occurrence)`` sampling frame is prefix-dependent — a
partial's dropped rows would need re-hashing under renumbered occurrences,
so ``merge`` raises :class:`~repro.exceptions.IngestError` there; feed TUPSK
chunks sequentially instead.  ``SUM``/``AVG`` merge adds the two float
accumulators, which can differ from single-stream ingestion in the final
ulps; every other aggregate merges exactly.
"""

from __future__ import annotations

import heapq
from typing import Any, Hashable, Iterable, Optional

import numpy as np

from repro.exceptions import AggregationError, IngestError, SketchError
from repro.hashing.unit import KeyHasher
from repro.relational.aggregate import (
    AggregateFunction,
    aggregate_values,
    get_aggregate,
)
from repro.relational.dtypes import (
    DType,
    DtypeFolder,
    coerce_value,
    is_missing_value,
)
from repro.sketches.base import Sketch, SketchSide, available_methods, get_builder
from repro.sketches.sampling import uniform_sample_without_replacement

__all__ = [
    "CandidateFamilyState",
    "StreamingBaseSketcher",
    "StreamingCandidateSketcher",
    "StreamingFirstValueBaseSketcher",
    "StreamingTwoLevelBaseSketcher",
    "StreamingBufferedBaseSketcher",
    "streaming_base_sketcher",
    "streaming_candidate_sketcher",
]


# The streaming sketchers fold value dtypes through the relational layer's
# shared incremental-inference helper, so a streamed column always infers
# the same dtype a batch `Column` (or the CSV schema pass) would infer.
_DtypeTracker = DtypeFolder


def _numeric(value: Any) -> Any:
    """The exact number a numeric ``Column`` would coerce ``value`` to.

    Integers (and integer-looking strings) stay exact Python ints so bigint
    comparisons and sums never round; the finalize step coerces the final
    aggregate to the column's dtype, and int/float comparisons in Python are
    exact-value comparisons, so tracking in this mixed space selects the
    same elements the batch path selects over fully coerced values.
    """
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            return float(value)
    if isinstance(value, (int, float)):
        return value
    as_float = float(value)  # numpy scalars and other numeric-likes
    if as_float.is_integer() and not isinstance(value, float):
        return int(value)
    return as_float


#: Sentinel distinguishing "no present value yet" from a stored ``None``.
_MISSING = object()


def _better(candidate: Any, incumbent: Any, keep_low: bool) -> bool:
    """Whether ``candidate`` displaces ``incumbent`` as the running extremum.

    Ties keep the incumbent — the first-seen value — matching ``min()`` /
    ``max()`` over the group in stream order.
    """
    if incumbent is None:
        return True
    if candidate == incumbent:
        return False
    return candidate < incumbent if keep_low else candidate > incumbent


class _StreamingSketcherBase:
    """Row plumbing shared by every streaming sketcher (both sides)."""

    #: Sketching method the finalized sketch reports.
    method: str = "abstract"

    def __init__(self, capacity: int = 256, seed: int = 0, vectorized: bool = True):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self.seed = int(seed)
        self.vectorized = bool(vectorized)
        self._hasher = KeyHasher(seed=self.seed)
        self._rows_total = 0
        self._rows_seen = 0
        self._value_tracker = _DtypeTracker()

    # ------------------------------------------------------------------ #
    # Consumption
    # ------------------------------------------------------------------ #
    def add(self, key: Hashable, value: Any) -> None:
        """Consume one row.  Rows with a missing key are ignored.

        Missing entries — ``None``, NaN, missing tokens like ``"na"`` — are
        normalized exactly as table-column coercion normalizes them: a
        missing key drops the row (it can never join), a missing value is
        recorded as ``None``.  Keys are expected in their canonical
        (column-coerced) representation, which the chunked readers and the
        engine's streaming paths guarantee.
        """
        self._rows_total += 1
        if is_missing_value(value):
            value = None
        self._value_tracker.observe(value)
        if is_missing_value(key):
            return
        self._rows_seen += 1
        self._consume(key, value)

    def extend(self, rows: Iterable[tuple[Hashable, Any]]):
        """Consume many rows; returns ``self`` for chaining."""
        for key, value in rows:
            self.add(key, value)
        return self

    def add_chunk(self, keys: Iterable[Hashable], values: Iterable[Any]):
        """Consume one aligned chunk of rows; returns ``self`` for chaining.

        Methods that hash during consumption override ``_consume_chunk`` to
        run the chunk through the batched hashing fast paths when
        ``vectorized`` — bit-identical to row-at-a-time consumption.
        """
        keys = list(keys)
        values = list(values)
        if len(keys) != len(values):
            raise IngestError(
                f"chunk keys and values must align, got {len(keys)} and {len(values)}"
            )
        kept_keys: list[Hashable] = []
        kept_values: list[Any] = []
        for key, value in zip(keys, values):
            self._rows_total += 1
            if is_missing_value(value):
                value = None
            self._value_tracker.observe(value)
            if is_missing_value(key):
                continue
            self._rows_seen += 1
            kept_keys.append(key)
            kept_values.append(value)
        if kept_keys:
            self._consume_chunk(kept_keys, kept_values)
        return self

    def add_filtered_chunk(
        self,
        keys: list[Hashable],
        values: list[Any],
        *,
        total_rows: int,
        value_dtype: Optional[DType] = None,
    ):
        """Trusted chunk path: pre-normalized rows with null keys removed.

        The caller vouches that missing entries are already ``None`` (true
        for any coerced :class:`~repro.relational.column.Column`), that rows
        with null keys were dropped, and that ``total_rows`` counts them.
        ``value_dtype`` folds the chunk column's declared dtype instead of
        per-value inference.  The :class:`~repro.ingest.ingestor.
        TableIngestor` feeds every sketcher of a column family through this
        path, normalizing each chunk once instead of once per value column.
        """
        self._rows_total += total_rows
        self._rows_seen += len(keys)
        if value_dtype is None:
            observe = self._value_tracker.observe
            for value in values:
                observe(value)
        else:
            self._value_tracker.observe_dtype(value_dtype)
        if keys:
            self._consume_chunk(keys, values, value_dtype=value_dtype)
        return self

    def _consume_chunk(
        self,
        keys: list[Hashable],
        values: list[Any],
        *,
        value_dtype: Optional[DType] = None,
    ) -> None:
        # value_dtype is a pure optimization hint (trusted chunks declare
        # their column dtype); consumption must not depend on it.
        for key, value in zip(keys, values):
            self._consume(key, value)

    def _consume(self, key: Hashable, value: Any) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def rows_seen(self) -> int:
        """Number of non-null-key rows consumed so far."""
        return self._rows_seen

    @property
    def rows_total(self) -> int:
        """Number of rows consumed so far, *including* null-key rows.

        This is what the finalized sketch reports as ``table_rows`` — the
        size of the sketched table — matching the batch builders.
        """
        return self._rows_total

    def _check_mergeable(self, other: "_StreamingSketcherBase") -> None:
        if type(other) is not type(self):
            raise IngestError(
                f"cannot merge a {type(other).__name__} into a {type(self).__name__}"
            )
        if (other.capacity, other.seed) != (self.capacity, self.seed):
            raise IngestError(
                f"cannot merge sketchers with different configurations "
                f"(capacity {self.capacity} vs {other.capacity}, "
                f"seed {self.seed} vs {other.seed})"
            )

    def _merge_counters(self, other: "_StreamingSketcherBase") -> None:
        self._rows_total += other._rows_total
        self._rows_seen += other._rows_seen
        self._value_tracker.combine(other._value_tracker)

    def _resolve_value_dtype(self, override: Optional[DType]) -> DType:
        return self._value_tracker.dtype if override is None else override

    def _key_ids(self, keys: list[Hashable]) -> list[int]:
        if self.vectorized and len(keys) > 1:
            return [int(key_id) for key_id in self._hasher.key_id_many(keys)]
        return [self._hasher.key_id(key) for key in keys]


class _StreamingBaseSketcherBase(_StreamingSketcherBase):
    """Base-side scaffolding: metadata assembly around per-method selection."""

    def merge(self, other: "_StreamingBaseSketcherBase"):
        """Fold another partial state (covering *later* rows) into this one."""
        raise IngestError(
            f"{self.method} base sketcher does not support merging partial states"
        )

    def finalize(
        self,
        *,
        key_column: str = "",
        value_column: str = "",
        table_name: str = "",
        value_dtype: Optional[DType] = None,
    ) -> Sketch:
        """Produce the base-side sketch for the rows consumed so far.

        The sketcher can keep consuming rows afterwards; ``finalize`` simply
        snapshots the current state.  ``value_dtype`` overrides the tracked
        column dtype (pass the declared dtype when the source columns carry
        one, e.g. a ``STRING`` column of numeric-looking strings).
        """
        if self._rows_seen == 0:
            raise SketchError("cannot finalize a streaming sketch with no rows")
        value_dtype = self._resolve_value_dtype(value_dtype)
        keys, raw_values = self._selected_rows()
        return Sketch(
            method=self.method,
            side=SketchSide.BASE,
            seed=self.seed,
            capacity=self.capacity,
            key_ids=self._key_ids(keys),
            values=[coerce_value(value, value_dtype) for value in raw_values],
            value_dtype=value_dtype,
            table_rows=self._rows_total,
            distinct_keys=self._distinct_keys(),
            key_column=key_column,
            value_column=value_column,
            table_name=table_name,
        )

    def _selected_rows(self) -> tuple[list[Hashable], list[Any]]:
        raise NotImplementedError

    def _distinct_keys(self) -> int:
        raise NotImplementedError


class StreamingBaseSketcher(_StreamingBaseSketcherBase):
    """Streaming TUPSK base side: a bounded heap over ``(key, occurrence)`` hashes.

    Memory is ``O(capacity + distinct keys)`` — the per-key occurrence
    counters are the only state besides the bounded heap.  Heap entries
    order by ``(-unit, -row)`` so that rows tying on an exact 32-bit hash
    collision keep the *earliest* rows, matching the batch path's stable
    argsort (and the batch scalar heap, which negates the row index for the
    same reason).

    Partial states cannot merge: the ``(key, occurrence)`` tuple of a row
    depends on how many earlier rows shared its key, so a later partial's
    retained rows were hashed under occurrence numbers that renumbering
    would invalidate — and its *dropped* rows (unrecoverable) could re-enter
    under the corrected numbers.  Feed chunks sequentially instead.
    """

    method = "TUPSK"

    def __init__(self, capacity: int = 256, seed: int = 0, vectorized: bool = True):
        super().__init__(capacity=capacity, seed=seed, vectorized=vectorized)
        self._heap: list[tuple[float, int, Hashable, Any]] = []  # (-unit, -row, k, v)
        self._occurrences: dict[Hashable, int] = {}
        self._row_counter = 0

    def _consume(self, key: Hashable, value: Any) -> None:
        occurrence = self._occurrences.get(key, 0) + 1
        self._occurrences[key] = occurrence
        self._push(self._hasher.tuple_unit(key, occurrence), key, value)

    def _consume_chunk(
        self,
        keys: list[Hashable],
        values: list[Any],
        *,
        value_dtype: Optional[DType] = None,
    ) -> None:
        if not (self.vectorized and len(keys) > 1):
            super()._consume_chunk(keys, values)
            return
        occurrences = []
        for key in keys:
            occurrence = self._occurrences.get(key, 0) + 1
            self._occurrences[key] = occurrence
            occurrences.append(occurrence)
        units = self._hasher.tuple_unit_many(keys, occurrences)
        for unit, key, value in zip(units, keys, values):
            self._push(float(unit), key, value)

    def _push(self, unit: float, key: Hashable, value: Any) -> None:
        entry = (-unit, -self._row_counter, key, value)
        self._row_counter += 1
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
        elif unit < -self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)

    def _selected_rows(self) -> tuple[list[Hashable], list[Any]]:
        # Restore stream order so the result matches the batch builder.
        ordered = sorted(self._heap, key=lambda entry: -entry[1])
        return [entry[2] for entry in ordered], [entry[3] for entry in ordered]

    def _distinct_keys(self) -> int:
        return len(self._occurrences)


class StreamingFirstValueBaseSketcher(_StreamingBaseSketcherBase):
    """Streaming CSK base side: first value per key, minwise key selection.

    CSK keeps the first value seen per key on both sides, so the streaming
    state is one ``O(distinct keys)`` dict; selection (minwise ranking of
    the keys) runs at finalize through the batch builder's own selection
    hook.  Partial states merge exactly (the earlier state's first values
    win).
    """

    method = "CSK"

    def __init__(self, capacity: int = 256, seed: int = 0, vectorized: bool = True):
        super().__init__(capacity=capacity, seed=seed, vectorized=vectorized)
        self._first: dict[Hashable, Any] = {}

    def _consume(self, key: Hashable, value: Any) -> None:
        if key not in self._first:
            self._first[key] = value

    def merge(self, other: "StreamingFirstValueBaseSketcher"):
        self._check_mergeable(other)
        for key, value in other._first.items():
            self._first.setdefault(key, value)
        self._merge_counters(other)
        return self

    def _selected_rows(self) -> tuple[list[Hashable], list[Any]]:
        builder = get_builder(
            self.method, capacity=self.capacity, seed=self.seed,
            vectorized=self.vectorized,
        )
        return builder._select_candidate(self._first)

    def _distinct_keys(self) -> int:
        return len(self._first)


class StreamingTwoLevelBaseSketcher(_StreamingBaseSketcherBase):
    """Streaming LV2SK base side: incremental minwise key selection.

    The first sampling level keeps the ``capacity`` keys with the smallest
    unit hashes — a monotone threshold, so the candidate key set can be
    maintained online exactly like a KMV sketch: rows of evicted keys are
    dropped for good (an evicted key is provably outside the final
    selection), and only the currently selected keys retain their row lists.
    Memory is ``O(distinct keys + rows of the selected keys)``.  The second
    level (per-key quota subsampling) runs at finalize, where the final row
    count and key frequencies are known, reproducing the batch builder's
    deterministic per-key RNG streams bit for bit.

    Partial states merge exactly, except when two distinct keys collide on
    the full 32-bit key hash at a partial's eviction boundary (probability
    ``~2**-32``); sequential chunk feeding has no such caveat.
    """

    method = "LV2SK"

    def __init__(self, capacity: int = 256, seed: int = 0, vectorized: bool = True):
        super().__init__(capacity=capacity, seed=seed, vectorized=vectorized)
        self._frequencies: dict[Hashable, int] = {}
        # key -> [row indices, values, unit, appearance] for selected keys.
        self._retained: dict[Hashable, list] = {}
        self._eviction: list[tuple[float, int, Hashable]] = []  # (-unit, -appearance)
        self._row_counter = 0

    def _consume(self, key: Hashable, value: Any) -> None:
        freq = self._frequencies.get(key)
        if freq is None:
            appearance = len(self._frequencies)
            self._frequencies[key] = 1
            self._admit(key, self._hasher.unit(key), appearance, value)
        else:
            self._frequencies[key] = freq + 1
            entry = self._retained.get(key)
            if entry is not None:
                entry[0].append(self._row_counter)
                entry[1].append(value)
        self._row_counter += 1

    def _consume_chunk(
        self,
        keys: list[Hashable],
        values: list[Any],
        *,
        value_dtype: Optional[DType] = None,
    ) -> None:
        if not (self.vectorized and len(keys) > 1):
            super()._consume_chunk(keys, values)
            return
        # Hash the chunk's first-appearance keys in one batched pass, then
        # replay the rows through the scalar admission logic.
        new_keys = [
            key
            for key in dict.fromkeys(keys)
            if key not in self._frequencies
        ]
        units = dict(
            zip(new_keys, (float(unit) for unit in self._hasher.unit_many(new_keys)))
        ) if len(new_keys) > 1 else {key: self._hasher.unit(key) for key in new_keys}
        for key, value in zip(keys, values):
            freq = self._frequencies.get(key)
            if freq is None:
                appearance = len(self._frequencies)
                self._frequencies[key] = 1
                self._admit(key, units[key], appearance, value)
            else:
                self._frequencies[key] = freq + 1
                entry = self._retained.get(key)
                if entry is not None:
                    entry[0].append(self._row_counter)
                    entry[1].append(value)
            self._row_counter += 1

    def _admit(self, key: Hashable, unit: float, appearance: int, value: Any) -> None:
        if len(self._retained) < self.capacity:
            self._retained[key] = [[self._row_counter], [value], unit, appearance]
            heapq.heappush(self._eviction, (-unit, -appearance, key))
            return
        # A tie keeps the earlier-appearing (already retained) key, matching
        # the batch ranking's stable sort.
        if unit >= -self._eviction[0][0]:
            return
        _, _, evicted = heapq.heapreplace(self._eviction, (-unit, -appearance, key))
        del self._retained[evicted]
        self._retained[key] = [[self._row_counter], [value], unit, appearance]

    def merge(self, other: "StreamingTwoLevelBaseSketcher"):
        self._check_mergeable(other)
        offset = self._row_counter
        appearance_base = len(self._frequencies)
        appearances: dict[Hashable, int] = {}
        new_rank = 0
        for key, freq in other._frequencies.items():
            if key in self._frequencies:
                self._frequencies[key] += freq
                continue
            self._frequencies[key] = freq
            appearances[key] = appearance_base + new_rank
            new_rank += 1
        # A key evicted by either partial is provably outside that partial's
        # capacity-smallest units, hence outside the merged selection too —
        # its rows are gone, and correctly so.
        merged: dict[Hashable, list] = {}
        for key, entry in self._retained.items():
            if key in other._frequencies and key not in other._retained:
                continue
            rows, values = list(entry[0]), list(entry[1])
            theirs = other._retained.get(key)
            if theirs is not None:
                rows.extend(row + offset for row in theirs[0])
                values.extend(theirs[1])
            merged[key] = [rows, values, entry[2], entry[3]]
        for key, entry in other._retained.items():
            if key in merged:
                continue
            if key not in appearances:
                # The key also appears in self's rows, where it was evicted
                # (had self retained it, the first loop would have merged it).
                continue
            merged[key] = [
                [row + offset for row in entry[0]],
                list(entry[1]),
                entry[2],
                appearances[key],
            ]
        heap = [(-entry[2], -entry[3], key) for key, entry in merged.items()]
        heapq.heapify(heap)
        while len(merged) > self.capacity:
            _, _, evicted = heapq.heappop(heap)
            del merged[evicted]
        self._retained = merged
        self._eviction = heap
        self._row_counter += other._row_counter
        self._merge_counters(other)
        return self

    def _selected_rows(self) -> tuple[list[Hashable], list[Any]]:
        total_rows = self._row_counter
        selected_keys = list(self._retained)
        key_ids = dict(zip(selected_keys, self._key_ids(selected_keys)))
        chosen: list[tuple[int, Hashable, Any]] = []
        for key in selected_keys:
            rows, values = self._retained[key][0], self._retained[key][1]
            quota = max(1, int(np.floor(self.capacity * len(rows) / total_rows)))
            if quota >= len(rows):
                kept = list(zip(rows, values))
            else:
                rng = np.random.default_rng((self.seed, key_ids[key]))
                kept = uniform_sample_without_replacement(
                    list(zip(rows, values)), quota, rng
                )
            chosen.extend((row, key, value) for row, value in kept)
        chosen.sort(key=lambda item: item[0])
        return [key for _, key, _ in chosen], [value for _, _, value in chosen]

    def _distinct_keys(self) -> int:
        return len(self._frequencies)


class StreamingBufferedBaseSketcher(_StreamingBaseSketcherBase):
    """Streaming shim for methods whose base selection needs the whole stream.

    PRISK weights its first-level sampling by final key frequencies and
    INDSK draws uniformly over the final row count, so neither can discard
    rows online.  This sketcher buffers the non-null-key rows (``O(rows)``
    memory — documented in :mod:`repro.ingest`) and delegates to the batch
    builder at finalize, so chunked sources still avoid materializing a
    ``Table`` and the result is bit-identical by construction.  Partial
    states merge exactly (concatenation).
    """

    def __init__(
        self,
        method: str,
        capacity: int = 256,
        seed: int = 0,
        vectorized: bool = True,
    ):
        super().__init__(capacity=capacity, seed=seed, vectorized=vectorized)
        self.method = method.upper()
        self._keys: list[Hashable] = []
        self._values: list[Any] = []

    def _consume(self, key: Hashable, value: Any) -> None:
        self._keys.append(key)
        self._values.append(value)

    def merge(self, other: "StreamingBufferedBaseSketcher"):
        self._check_mergeable(other)
        if other.method != self.method:
            raise IngestError(
                f"cannot merge a {other.method} sketcher into a {self.method} one"
            )
        self._keys.extend(other._keys)
        self._values.extend(other._values)
        self._merge_counters(other)
        return self

    def finalize(
        self,
        *,
        key_column: str = "",
        value_column: str = "",
        table_name: str = "",
        value_dtype: Optional[DType] = None,
    ) -> Sketch:
        if self._rows_seen == 0:
            raise SketchError("cannot finalize a streaming sketch with no rows")
        value_dtype = self._resolve_value_dtype(value_dtype)
        builder = get_builder(
            self.method, capacity=self.capacity, seed=self.seed,
            vectorized=self.vectorized,
        )
        # Coerce before selection, exactly like the batch path's column
        # coercion (a fresh builder also replays INDSK's RNG streams).
        key_list, value_list = builder._select_base(
            self._keys, [coerce_value(value, value_dtype) for value in self._values]
        )
        return Sketch(
            method=self.method,
            side=SketchSide.BASE,
            seed=self.seed,
            capacity=self.capacity,
            key_ids=self._key_ids(key_list),
            values=value_list,
            value_dtype=value_dtype,
            table_rows=self._rows_total,
            distinct_keys=len(set(self._keys)),
            key_column=key_column,
            value_column=value_column,
            table_name=table_name,
        )


class CandidateFamilyState:
    """Shared selection memo for one table's candidate column family.

    The streaming twin of :class:`~repro.sketches.base.KeyGroups`'s
    selection cache: every candidate sketcher of one (table, key column)
    family sees the same key stream, and the bundled methods select
    candidate keys independently of the aggregated values, so the ranked
    selection and the selected keys' hashes can be computed once per family
    instead of once per value column.  Pass one instance to each sketcher
    of the family (the :class:`~repro.ingest.ingestor.TableIngestor` does);
    sharing a state between sketchers that consumed *different* key streams
    is a caller error.
    """

    __slots__ = ("selection", "key_ids")

    def __init__(self) -> None:
        self.selection: Optional[list[Hashable]] = None
        self.key_ids: Optional[list[int]] = None


class StreamingCandidateSketcher(_StreamingSketcherBase):
    """Streaming candidate side for **every** sketching method.

    Values sharing a key are aggregated incrementally; ``AVG``, ``SUM``,
    ``COUNT``, ``MIN``, ``MAX`` and ``FIRST`` use constant per-key state,
    while ``MODE`` and ``MEDIAN`` retain the per-key value lists (the same
    memory the batch builder needs).  Candidate-side *selection* operates on
    the finished per-key aggregates, so finalize delegates it to the batch
    builder registered for ``method`` — TUPSK's ``(key, 1)`` tuple ranking,
    CSK/LV2SK/PRISK's minwise ranking (with the same stable first-appearance
    tie-break, exercised by the adversarial-collision tests) or INDSK's
    seeded uniform draw — making the sketch bit-identical by construction.

    Two streams of the batch semantics are reproduced exactly:

    * the value column's dtype is inferred from the whole aggregated column
      (not the first value), and aggregates are reported in that dtype —
      a ``[1, 2.5]`` stream declares FLOAT and sums to ``3.5``, matching
      :func:`~repro.relational.dtypes.infer_column_dtype` + coercion;
    * ``MIN``/``MAX`` track both a numeric-space and a string-space
      extremum, so a column that only later turns out to be categorical
      still reports the batch path's (string-ordered) answer, and ``SUM``/
      ``AVG`` keep exact integer totals alongside the left-to-right float
      accumulation that ``sum()`` performs over a float column.
    """

    _CONSTANT_STATE = {
        AggregateFunction.AVG,
        AggregateFunction.SUM,
        AggregateFunction.COUNT,
        AggregateFunction.MIN,
        AggregateFunction.MAX,
        AggregateFunction.FIRST,
    }

    def __init__(
        self,
        capacity: int = 256,
        seed: int = 0,
        agg: "str | AggregateFunction" = AggregateFunction.AVG,
        *,
        method: str = "TUPSK",
        vectorized: bool = True,
        family: Optional[CandidateFamilyState] = None,
    ):
        super().__init__(capacity=capacity, seed=seed, vectorized=vectorized)
        self.method = method.upper()
        if self.method not in available_methods():
            raise IngestError(
                f"unknown sketching method {method!r}; "
                f"available: {', '.join(available_methods())}"
            )
        self.agg = get_aggregate(agg)
        # CSK ignores the featurization function and keeps the first value
        # seen per key, missing or not (see repro.sketches.csk).
        self._first_value_semantics = self.method == "CSK"
        self._state: dict[Hashable, Any] = {}
        self._family = family

    # ------------------------------------------------------------------ #
    # Incremental aggregation
    # ------------------------------------------------------------------ #
    def _consume(self, key: Hashable, value: Any) -> None:
        if self._first_value_semantics:
            if key not in self._state:
                self._state[key] = value
            return
        agg = self.agg
        if agg is AggregateFunction.COUNT:
            self._state[key] = self._state.get(key, 0) + (0 if value is None else 1)
            return
        if agg is AggregateFunction.FIRST:
            if key not in self._state:
                self._state[key] = _MISSING
            if value is not None and self._state[key] is _MISSING:
                self._state[key] = value
            return
        if agg in (AggregateFunction.MIN, AggregateFunction.MAX):
            record = self._state.get(key)
            if record is None:
                record = self._state[key] = [None, None]
            if value is None:
                return
            keep_low = agg is AggregateFunction.MIN
            # The string-space extremum is maintained from the first row so
            # that a column revealed as categorical only later still reports
            # the batch answer; the numeric space goes dormant (and unused)
            # as soon as a categorical value appears.
            text = coerce_value(value, DType.STRING)
            if _better(text, record[1], keep_low):
                record[1] = text
            if not self._value_tracker.saw_string:
                number = _numeric(value)
                if _better(number, record[0], keep_low):
                    record[0] = number
            return
        if agg in (AggregateFunction.SUM, AggregateFunction.AVG):
            record = self._state.get(key)
            if record is None:
                # [exact numeric total, left-to-right float total, count]
                record = self._state[key] = [0, 0.0, 0]
            if value is None:
                return
            record[2] += 1
            if not self._value_tracker.saw_string:
                number = _numeric(value)
                record[0] += number
                record[1] = record[1] + float(number)
            return
        self._state.setdefault(key, []).append(value)

    def _consume_chunk(
        self,
        keys: list[Hashable],
        values: list[Any],
        *,
        value_dtype: Optional[DType] = None,
    ) -> None:
        """Per-aggregate tight loops over one (pre-observed) chunk.

        Semantically identical to looping :meth:`_consume`; the aggregate
        dispatch and the ``saw_string`` flag are hoisted out of the row loop
        (the whole chunk was observed before consumption, so the flag is
        stable here — and once a string has appeared, the numeric-space
        state is dead anyway).  ``value_dtype`` is the trusted chunk path's
        declared column dtype — a pure optimization hint enabling the
        float-column fast loop.
        """
        agg = self.agg
        state = self._state
        if self._first_value_semantics:
            for key, value in zip(keys, values):
                if key not in state:
                    state[key] = value
            return
        if agg is AggregateFunction.COUNT:
            get = state.get
            for key, value in zip(keys, values):
                state[key] = get(key, 0) + (0 if value is None else 1)
            return
        if agg in (AggregateFunction.SUM, AggregateFunction.AVG):
            get = state.get
            if value_dtype is DType.FLOAT and None not in values:
                # Declared-FLOAT chunk with no missing entries: every value
                # is a Python float, so the per-row type and None checks
                # fold away (the integer-exact accumulator is dead once a
                # float exists — the dtype can never resolve back to INT).
                for key, value in zip(keys, values):
                    record = get(key)
                    if record is None:
                        record = state[key] = [0, 0.0, 0]
                    record[2] += 1
                    record[1] = record[1] + value
                return
            tracker = self._value_tracker
            numeric_space = not tracker.saw_string
            # Once a float (or string) value has appeared, the column's
            # dtype can never resolve back to INT, so the exact-integer
            # accumulator is dead and can be skipped for the whole chunk.
            int_space = not (tracker.saw_float or tracker.saw_string)
            for key, value in zip(keys, values):
                record = get(key)
                if record is None:
                    record = state[key] = [0, 0.0, 0]
                if value is None:
                    continue
                record[2] += 1
                if type(value) is float:
                    record[1] = record[1] + value
                elif numeric_space:
                    number = _numeric(value)
                    if int_space:
                        record[0] += number
                    record[1] = record[1] + float(number)
            return
        if agg in (AggregateFunction.MIN, AggregateFunction.MAX):
            get = state.get
            keep_low = agg is AggregateFunction.MIN
            numeric_space = not self._value_tracker.saw_string
            for key, value in zip(keys, values):
                record = get(key)
                if record is None:
                    record = state[key] = [None, None]
                if value is None:
                    continue
                text = value if type(value) is str else coerce_value(value, DType.STRING)
                if _better(text, record[1], keep_low):
                    record[1] = text
                if numeric_space:
                    number = value if type(value) is float else _numeric(value)
                    if _better(number, record[0], keep_low):
                        record[0] = number
            return
        if agg is AggregateFunction.FIRST:
            for key, value in zip(keys, values):
                self._consume(key, value)
            return
        setdefault = state.setdefault
        for key, value in zip(keys, values):
            setdefault(key, []).append(value)

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #
    def _finalize_selected(
        self, selected: list[Hashable], input_dtype: DType
    ) -> list[Any]:
        """Per-key final aggregates for ``selected``, hot aggregates inlined.

        Same results as mapping :meth:`_final_value`; ``AVG``/``SUM`` over
        numeric columns skip the per-key dispatch chain (they dominate
        default-configuration index builds).
        """
        state = self._state
        agg = self.agg
        if not self._first_value_semantics and input_dtype in (
            DType.INT,
            DType.FLOAT,
        ):
            if agg is AggregateFunction.AVG:
                if input_dtype is DType.FLOAT:
                    # float() of a float total is value-identical: s[1]/s[2]
                    # equals the batch path's float(sum(...))/len(...).
                    return [
                        record[1] / record[2] if record[2] else None
                        for record in map(state.__getitem__, selected)
                    ]
                return [
                    float(record[0]) / record[2] if record[2] else None
                    for record in map(state.__getitem__, selected)
                ]
            if agg is AggregateFunction.SUM:
                slot = 1 if input_dtype is DType.FLOAT else 0
                return [
                    record[slot] if record[2] else None
                    for record in map(state.__getitem__, selected)
                ]
        return [self._final_value(state[key], input_dtype) for key in selected]

    def _final_value(self, state: Any, input_dtype: DType) -> Any:
        agg = self.agg
        if self._first_value_semantics:
            return coerce_value(state, input_dtype)
        if agg is AggregateFunction.COUNT:
            return state
        if agg is AggregateFunction.FIRST:
            return None if state is _MISSING else coerce_value(state, input_dtype)
        if agg in (AggregateFunction.MIN, AggregateFunction.MAX):
            if input_dtype is DType.STRING:
                return state[1]
            if state[0] is None:
                return None
            return coerce_value(state[0], input_dtype)
        if agg in (AggregateFunction.SUM, AggregateFunction.AVG):
            if state[2] == 0:
                return None
            if input_dtype is DType.STRING:
                raise AggregationError(
                    f"aggregate {agg.value.upper()} requires numeric values, "
                    f"got strings"
                )
            total = state[1] if input_dtype is DType.FLOAT else state[0]
            if agg is AggregateFunction.AVG:
                return float(total) / state[2]
            return total
        return aggregate_values(
            [coerce_value(value, input_dtype) for value in state], agg
        )

    def merge(self, other: "StreamingCandidateSketcher"):
        """Fold another partial state (covering *later* rows) into this one.

        Exact for every aggregate except the float accumulators of ``SUM``/
        ``AVG`` over float columns, which add per-partial subtotals and may
        therefore differ from single-stream ingestion in the final ulps.
        """
        self._check_mergeable(other)
        if (other.method, other.agg) != (self.method, self.agg):
            raise IngestError(
                f"cannot merge a {other.method}/{other.agg.value} sketcher into "
                f"a {self.method}/{self.agg.value} one"
            )
        agg = self.agg
        for key, state in other._state.items():
            if key not in self._state:
                self._state[key] = list(state) if isinstance(state, list) else state
                continue
            mine = self._state[key]
            if self._first_value_semantics:
                continue  # the earlier stream's first value wins
            if agg is AggregateFunction.COUNT:
                self._state[key] = mine + state
            elif agg is AggregateFunction.FIRST:
                if mine is _MISSING:
                    self._state[key] = state
            elif agg in (AggregateFunction.MIN, AggregateFunction.MAX):
                keep_low = agg is AggregateFunction.MIN
                for slot in (0, 1):
                    theirs = state[slot]
                    if theirs is not None and _better(theirs, mine[slot], keep_low):
                        mine[slot] = theirs
            elif agg in (AggregateFunction.SUM, AggregateFunction.AVG):
                mine[0] += state[0]
                mine[1] = mine[1] + state[1]
                mine[2] += state[2]
            else:
                mine.extend(state)
        self._merge_counters(other)
        return self

    def finalize(
        self,
        *,
        key_column: str = "",
        value_column: str = "",
        table_name: str = "",
        input_dtype: Optional[DType] = None,
    ) -> Sketch:
        """Produce the candidate-side sketch for the rows consumed so far.

        ``input_dtype`` overrides the tracked dtype of the *input* value
        column (pass the declared column dtype when the source carries one);
        the sketch's ``value_dtype`` is derived from it and the aggregate,
        exactly as in the batch path.
        """
        if self._rows_seen == 0:
            raise SketchError("cannot finalize a streaming sketch with no rows")
        input_dtype = self._resolve_value_dtype(input_dtype)
        builder = get_builder(
            self.method, capacity=self.capacity, seed=self.seed,
            vectorized=self.vectorized,
        )
        family = self._family if builder.candidate_selection_key_only else None
        if builder.candidate_selection_key_only:
            # Select-then-finalize, like the batch KeyGroups fast path: the
            # bundled methods rank candidate keys independently of the
            # aggregated values, so only the selected keys' aggregates are
            # ever materialized — and a family of sketchers over one shared
            # key stream reuses the ranked keys and their hashes.
            if family is not None and family.selection is not None:
                selected = family.selection
            else:
                selected = builder._candidate_key_order(list(self._state))
                if family is not None:
                    family.selection = selected
            values = self._finalize_selected(selected, input_dtype)
        else:
            aggregated = {
                key: self._final_value(state, input_dtype)
                for key, state in self._state.items()
            }
            selected, values = builder._select_candidate(aggregated)
        if family is not None and family.key_ids is not None:
            key_ids = family.key_ids
        else:
            key_ids = self._key_ids(selected)
            if family is not None:
                family.key_ids = key_ids
        return Sketch(
            method=self.method,
            side=SketchSide.CANDIDATE,
            seed=self.seed,
            capacity=self.capacity,
            key_ids=list(key_ids),
            values=values,
            value_dtype=builder._candidate_value_dtype(self.agg, input_dtype, values),
            table_rows=self._rows_total,
            distinct_keys=len(self._state),
            key_column=key_column,
            value_column=value_column,
            table_name=table_name,
            aggregate=self.agg.value,
        )


# --------------------------------------------------------------------------- #
# Factories
# --------------------------------------------------------------------------- #
_BASE_SKETCHERS = {
    "TUPSK": StreamingBaseSketcher,
    "CSK": StreamingFirstValueBaseSketcher,
    "LV2SK": StreamingTwoLevelBaseSketcher,
}


def streaming_base_sketcher(
    method: str = "TUPSK",
    capacity: int = 256,
    seed: int = 0,
    *,
    vectorized: bool = True,
) -> _StreamingBaseSketcherBase:
    """A streaming base-side sketcher for ``method`` (see the memory table)."""
    name = method.upper()
    if name in _BASE_SKETCHERS:
        return _BASE_SKETCHERS[name](
            capacity=capacity, seed=seed, vectorized=vectorized
        )
    if name in available_methods():
        return StreamingBufferedBaseSketcher(
            name, capacity=capacity, seed=seed, vectorized=vectorized
        )
    raise IngestError(
        f"unknown sketching method {method!r}; "
        f"available: {', '.join(available_methods())}"
    )


def streaming_candidate_sketcher(
    method: str = "TUPSK",
    capacity: int = 256,
    seed: int = 0,
    *,
    agg: "str | AggregateFunction" = AggregateFunction.AVG,
    vectorized: bool = True,
    family: Optional[CandidateFamilyState] = None,
) -> StreamingCandidateSketcher:
    """A streaming candidate-side sketcher for ``method``."""
    return StreamingCandidateSketcher(
        capacity=capacity,
        seed=seed,
        agg=agg,
        method=method,
        vectorized=vectorized,
        family=family,
    )
