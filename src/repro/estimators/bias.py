"""Analytic bias formulas for the plug-in MI estimator.

Equation 6 of the paper (following Roulston, 1999) approximates the bias of
the maximum-likelihood MI estimator as

``I(X, Y) - E[I_hat_MLE(X, Y)] ≈ (m_X + m_Y - m_XY - 1) / (2N)``

where ``m_X``, ``m_Y`` and ``m_XY`` are the numbers of distinct values of
``X``, ``Y`` and of the joint ``(X, Y)``, and ``N`` is the sample size.  The
same quantity appears (with opposite sign) in the Miller–Madow correction.
"""

from __future__ import annotations

from typing import Hashable, Sequence

__all__ = ["mle_mi_bias", "miller_madow_correction"]


def mle_mi_bias(
    distinct_x: int, distinct_y: int, distinct_joint: int, sample_size: int
) -> float:
    """Analytic first-order bias of the plug-in MI estimator (Eq. 6).

    A *negative* return value means the estimator over-estimates the MI on
    average (the common case, because the joint support is under-sampled).
    """
    if sample_size <= 0:
        raise ValueError("sample_size must be positive")
    if min(distinct_x, distinct_y, distinct_joint) < 1:
        raise ValueError("distinct counts must be at least 1")
    return (distinct_x + distinct_y - distinct_joint - 1) / (2.0 * sample_size)


def miller_madow_correction(
    x_values: Sequence[Hashable], y_values: Sequence[Hashable]
) -> float:
    """First-order additive correction to apply to a plug-in MI estimate.

    Computed from the observed supports of a sample: subtracting this value
    from the raw plug-in MI estimate removes its first-order bias.
    """
    if len(x_values) != len(y_values):
        raise ValueError("x and y must be aligned")
    if not x_values:
        raise ValueError("cannot compute a correction from an empty sample")
    distinct_x = len(set(x_values))
    distinct_y = len(set(y_values))
    distinct_joint = len(set(zip(x_values, y_values)))
    # The plug-in MI over-estimates by (m_XY - m_X - m_Y + 1) / (2N).
    return (distinct_joint - distinct_x - distinct_y + 1) / (2.0 * len(x_values))
