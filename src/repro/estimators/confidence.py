"""Confidence intervals for MI estimates via subsampling.

The paper's accuracy discussion (Section IV-B) leans on subsampling-based
error bounds for empirical entropy and MI (Wang & Ding 2019; Chen & Wang
2021): the deviation between an estimate computed on a subsample and the
estimate computed on the full data shrinks at a near square-root rate in the
subsample size, which allows confidence intervals around sketch-based
estimates that tighten as the sketch-join size grows.

This module provides a practical, estimator-agnostic version of that idea:

* :func:`subsampled_estimates` — MI estimates on repeated random subsamples,
* :func:`estimate_mi_with_confidence` — a point estimate plus a percentile
  interval obtained from the subsample distribution, with the interval width
  scaled by ``sqrt(subsample_size / sample_size)`` so it reflects the error
  at the *full* sample size rather than at the subsample size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.exceptions import InsufficientSamplesError
from repro.estimators.base import MIEstimator
from repro.estimators.selection import select_estimator
from repro.relational.dtypes import infer_column_dtype
from repro.util.rng import RandomState, ensure_rng

__all__ = ["MIConfidenceInterval", "subsampled_estimates", "estimate_mi_with_confidence"]


@dataclass(frozen=True)
class MIConfidenceInterval:
    """An MI point estimate with a subsampling-based confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    estimator: str
    sample_size: int
    subsample_size: int
    replicates: int

    @property
    def width(self) -> float:
        """Width of the interval (upper - lower)."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper


def subsampled_estimates(
    x_values: Sequence[Any],
    y_values: Sequence[Any],
    estimator: MIEstimator,
    *,
    subsample_size: int,
    replicates: int = 30,
    random_state: RandomState = None,
) -> np.ndarray:
    """MI estimates on ``replicates`` random subsamples (without replacement)."""
    if len(x_values) != len(y_values):
        raise ValueError("x_values and y_values must be aligned")
    n = len(x_values)
    if subsample_size < 2 or subsample_size > n:
        raise ValueError("subsample_size must lie in [2, len(sample)]")
    if replicates < 2:
        raise ValueError("replicates must be at least 2")
    rng = ensure_rng(random_state)
    x_array = list(x_values)
    y_array = list(y_values)
    estimates = np.empty(replicates, dtype=np.float64)
    for index in range(replicates):
        chosen = rng.choice(n, size=subsample_size, replace=False)
        estimates[index] = estimator.estimate(
            [x_array[i] for i in chosen], [y_array[i] for i in chosen]
        )
    return estimates


def estimate_mi_with_confidence(
    x_values: Sequence[Any],
    y_values: Sequence[Any],
    *,
    estimator: Optional[MIEstimator] = None,
    confidence: float = 0.95,
    subsample_fraction: float = 0.5,
    replicates: int = 30,
    random_state: RandomState = None,
) -> MIConfidenceInterval:
    """Estimate MI and a subsampling confidence interval around it.

    Parameters
    ----------
    x_values, y_values:
        Aligned sample (e.g. the pairs recovered by a sketch join).
    estimator:
        MI estimator; selected from the data types when omitted.
    confidence:
        Coverage level of the percentile interval (e.g. 0.95).
    subsample_fraction:
        Fraction of the sample used per replicate (at least 16 samples).
    replicates:
        Number of subsample replicates.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly between 0 and 1")
    if not 0.0 < subsample_fraction <= 1.0:
        raise ValueError("subsample_fraction must lie in (0, 1]")
    n = len(x_values)
    if n < 8:
        raise InsufficientSamplesError(8, n, "confidence interval")
    if estimator is None:
        estimator = select_estimator(
            infer_column_dtype(x_values), infer_column_dtype(y_values)
        )
    rng = ensure_rng(random_state)
    point_estimate = estimator.estimate(x_values, y_values)

    subsample_size = min(n, max(16, int(round(subsample_fraction * n))))
    replicate_estimates = subsampled_estimates(
        x_values,
        y_values,
        estimator,
        subsample_size=subsample_size,
        replicates=replicates,
        random_state=rng,
    )
    # Deviations of subsample estimates around the full-sample estimate,
    # shrunk by sqrt(m/n): the subsampling error-bound literature gives a
    # near square-root dependence of the deviation on the subsample size.
    scale = float(np.sqrt(subsample_size / n))
    deviations = (replicate_estimates - point_estimate) * scale
    alpha = 1.0 - confidence
    lower_quantile = float(np.quantile(deviations, alpha / 2.0))
    upper_quantile = float(np.quantile(deviations, 1.0 - alpha / 2.0))
    return MIConfidenceInterval(
        estimate=point_estimate,
        lower=max(0.0, point_estimate - max(upper_quantile, 0.0)),
        upper=point_estimate - min(lower_quantile, 0.0),
        confidence=confidence,
        estimator=estimator.name,
        sample_size=n,
        subsample_size=subsample_size,
        replicates=replicates,
    )
