"""Mixed-KSG estimator of Gao, Kannan, Oh and Viswanath (NeurIPS 2017).

The estimator handles variables whose distributions are *mixtures* of
discrete and continuous components — exactly the situation created by the
paper's left joins on non-unique keys, where a continuous feature column ends
up with repeated values following the join-key frequency distribution.

For every sample ``i``:

* ``rho_i`` is the Chebyshev distance to its ``k``-th nearest neighbour in
  the joint space;
* if ``rho_i == 0`` (the point has at least ``k`` exact copies) the estimator
  falls back to the plug-in behaviour by setting ``k_i`` to the number of
  joint ties and counting marginal ties, otherwise ``k_i = k`` and marginal
  neighbours within distance ``rho_i`` (inclusive) are counted;
* the estimate is ``mean_i [ psi(k_i) + log N - log(n_x,i + 1) - log(n_y,i + 1) ]``.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy.spatial import cKDTree
from scipy.special import digamma

from repro.exceptions import InsufficientSamplesError
from repro.estimators.base import (
    MIEstimator,
    VariableKind,
    as_float_array,
    clip_non_negative,
    encode_discrete,
)

__all__ = ["MixedKSGEstimator"]


def _coerce_numeric(values: list[Any], name: str) -> np.ndarray:
    """Return a float array, encoding non-numeric (string) values as codes.

    MixedKSG is designed for numeric data, but the discovery pipeline may
    route a categorical column through it (e.g. after aggregation with MODE);
    encoding categories as integer codes reproduces the plug-in behaviour on
    the discrete component.
    """
    if any(isinstance(value, str) for value in values):
        return encode_discrete(values).astype(np.float64)
    return as_float_array(values, name)


class MixedKSGEstimator(MIEstimator):
    """Gao et al. (2017) MI estimator for discrete-continuous mixtures.

    Parameters
    ----------
    k:
        Number of nearest neighbours (default 3).
    """

    name = "Mixed-KSG"
    x_kind = VariableKind.CONTINUOUS
    y_kind = VariableKind.CONTINUOUS

    def __init__(self, k: int = 3):
        if k < 1:
            raise ValueError("k must be a positive integer")
        self.k = int(k)
        self.min_samples = k + 2

    def _estimate(self, x_values: list[Any], y_values: list[Any]) -> float:
        x = _coerce_numeric(x_values, "x")
        y = _coerce_numeric(y_values, "y")
        n = x.shape[0]
        if n <= self.k:
            raise InsufficientSamplesError(self.k + 1, n, "Mixed-KSG")

        joint = np.column_stack([x, y])
        joint_tree = cKDTree(joint)
        x_tree = cKDTree(x.reshape(-1, 1))
        y_tree = cKDTree(y.reshape(-1, 1))

        distances, _ = joint_tree.query(joint, k=self.k + 1, p=np.inf)
        rho = distances[:, self.k]
        zero_rho = rho == 0.0

        # Counting radius: strictly inside rho for regular points (nudge the
        # radius down by one ulp, mirroring Gao et al.'s reference code which
        # uses rho - 1e-15), and exactly zero for tied points.
        counting_radius = np.where(zero_rho, 0.0, np.nextafter(rho, 0.0))

        # k_tilde: k for regular points, the number of exact joint copies
        # (including the point itself) for points with at least k ties.
        k_tilde = np.full(n, float(self.k))
        if np.any(zero_rho):
            zero_indices = np.nonzero(zero_rho)[0]
            joint_ties = joint_tree.query_ball_point(
                joint[zero_indices], r=0.0, p=np.inf, return_length=True
            )
            k_tilde[zero_indices] = np.asarray(joint_ties, dtype=np.float64)

        # Marginal neighbour counts within the counting radius, including the
        # point itself (Gao et al. use log(n_x) with this convention, which is
        # equivalent to the paper's log(n_x + 1) with self excluded).
        n_x = np.asarray(
            x_tree.query_ball_point(
                x.reshape(-1, 1), r=counting_radius, p=np.inf, return_length=True
            ),
            dtype=np.float64,
        )
        n_y = np.asarray(
            y_tree.query_ball_point(
                y.reshape(-1, 1), r=counting_radius, p=np.inf, return_length=True
            ),
            dtype=np.float64,
        )
        n_x = np.maximum(n_x, 1.0)
        n_y = np.maximum(n_y, 1.0)

        estimate = np.mean(digamma(k_tilde) + np.log(n) - np.log(n_x) - np.log(n_y))
        return clip_non_negative(float(estimate))
