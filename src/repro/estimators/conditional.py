"""Conditional mutual information for discrete variables.

The paper motivates MI-based discovery partly through feature selection:
"regression and classification errors are minimized when features having the
largest *conditional* MI with the target are selected" (Section I).  This
module provides the plug-in conditional MI estimator

``I(X; Y | Z) = H(X, Z) + H(Y, Z) - H(X, Y, Z) - H(Z)``

for discrete (or discretized) variables, which is what the greedy
augmentation-selection helper in :mod:`repro.discovery.selection` uses to
avoid picking redundant candidate features.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Sequence

import numpy as np

from repro.exceptions import EstimationError, InsufficientSamplesError
from repro.estimators.base import clip_non_negative
from repro.estimators.entropy import entropy_mle

__all__ = ["conditional_mutual_information", "discretize_equal_width"]


def discretize_equal_width(values: Sequence[Any], bins: int = 16) -> list[Hashable]:
    """Discretize a numeric sequence into equal-width bins (labels as ints).

    Non-numeric values are returned unchanged (they are already discrete);
    missing values map to the sentinel label ``"__missing__"``.
    """
    if bins < 1:
        raise ValueError("bins must be a positive integer")
    present = [value for value in values if isinstance(value, (int, float)) and value is not None]
    if not present or any(isinstance(value, str) for value in values):
        return [
            "__missing__" if value is None else value  # type: ignore[misc]
            for value in values
        ]
    low, high = float(min(present)), float(max(present))
    if low == high:
        return [0 if value is not None else "__missing__" for value in values]
    edges = np.linspace(low, high, bins + 1)[1:-1]
    labels: list[Hashable] = []
    for value in values:
        if value is None:
            labels.append("__missing__")
        else:
            labels.append(int(np.digitize(float(value), edges)))
    return labels


def conditional_mutual_information(
    x_values: Sequence[Hashable],
    y_values: Sequence[Hashable],
    z_values: Optional[Sequence[Hashable]] = None,
    *,
    clip_negative: bool = True,
) -> float:
    """Plug-in estimate of ``I(X; Y | Z)`` for discrete variables (nats).

    With ``z_values=None`` this reduces to the unconditional plug-in MI.
    """
    if len(x_values) != len(y_values):
        raise EstimationError("x and y must be aligned")
    if z_values is not None and len(z_values) != len(x_values):
        raise EstimationError("z must be aligned with x and y")
    if len(x_values) < 1:
        raise InsufficientSamplesError(1, 0, "conditional MI")

    if z_values is None:
        value = (
            entropy_mle(list(x_values))
            + entropy_mle(list(y_values))
            - entropy_mle(list(zip(x_values, y_values)))
        )
    else:
        xz = list(zip(x_values, z_values))
        yz = list(zip(y_values, z_values))
        xyz = list(zip(x_values, y_values, z_values))
        value = (
            entropy_mle(xz)
            + entropy_mle(yz)
            - entropy_mle(xyz)
            - entropy_mle(list(z_values))
        )
    return clip_non_negative(value) if clip_negative else float(value)
