"""Entropy estimators.

Implements the entropy estimators referenced in Section II of the paper:

* the maximum-likelihood (plug-in / empirical) entropy for discrete data,
* the Miller–Madow bias-corrected variant,
* the Laplace-smoothed plug-in entropy,
* the joint plug-in entropy of two discrete variables,
* the Kozachenko–Leonenko k-nearest-neighbour differential entropy for
  continuous data (the building block of the KSG family of MI estimators).

All entropies are in nats.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Sequence

import numpy as np
from scipy.spatial import cKDTree
from scipy.special import digamma

from repro.exceptions import EstimationError, InsufficientSamplesError
from repro.estimators.base import as_float_array

__all__ = [
    "entropy_mle",
    "entropy_mle_from_counts",
    "entropy_miller_madow",
    "entropy_laplace",
    "joint_entropy_mle",
    "entropy_knn",
]


def entropy_mle_from_counts(counts: Iterable[int]) -> float:
    """Plug-in (MLE) entropy from a sequence of category counts.

    ``H = -sum_i (N_i/N) log(N_i/N)``; zero counts are ignored.
    """
    counts_array = np.asarray([c for c in counts if c > 0], dtype=np.float64)
    if counts_array.size == 0:
        raise EstimationError("cannot compute entropy from empty counts")
    total = counts_array.sum()
    probabilities = counts_array / total
    return float(-np.sum(probabilities * np.log(probabilities)))


def entropy_mle(values: Sequence[Hashable]) -> float:
    """Plug-in (MLE) entropy of a sample of discrete values."""
    if len(values) == 0:
        raise InsufficientSamplesError(1, 0, "entropy_mle")
    return entropy_mle_from_counts(Counter(values).values())


def entropy_miller_madow(values: Sequence[Hashable]) -> float:
    """Miller–Madow bias-corrected entropy: ``H_MLE + (K - 1) / (2N)``.

    ``K`` is the number of observed distinct values.  This corrects (to first
    order) the systematic downward bias of the plug-in estimator discussed in
    Section II.
    """
    if len(values) == 0:
        raise InsufficientSamplesError(1, 0, "entropy_miller_madow")
    counts = Counter(values)
    correction = (len(counts) - 1) / (2.0 * len(values))
    return entropy_mle_from_counts(counts.values()) + correction


def entropy_laplace(values: Sequence[Hashable], alpha: float = 1.0) -> float:
    """Laplace-smoothed plug-in entropy.

    Each observed category's count is increased by ``alpha`` before
    normalisation.  Smoothing shrinks the estimate toward the uniform
    distribution over the observed support, which controls false discoveries
    when the estimate feeds a dependency test (see the paper's conclusion).
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    if len(values) == 0:
        raise InsufficientSamplesError(1, 0, "entropy_laplace")
    counts = np.asarray(list(Counter(values).values()), dtype=np.float64)
    smoothed = counts + alpha
    probabilities = smoothed / smoothed.sum()
    return float(-np.sum(probabilities * np.log(probabilities)))


def joint_entropy_mle(
    x_values: Sequence[Hashable], y_values: Sequence[Hashable]
) -> float:
    """Plug-in entropy of the joint distribution of two discrete variables."""
    if len(x_values) != len(y_values):
        raise EstimationError("x and y must be aligned for joint entropy")
    if len(x_values) == 0:
        raise InsufficientSamplesError(1, 0, "joint_entropy_mle")
    return entropy_mle_from_counts(Counter(zip(x_values, y_values)).values())


def entropy_knn(
    values: Sequence[float] | np.ndarray,
    k: int = 3,
) -> float:
    """Kozachenko–Leonenko k-NN differential entropy of a continuous sample.

    Uses the max-norm formulation of Kraskov et al. (2004):

    ``H ≈ psi(N) - psi(k) + (d/N) * sum_i log(eps_i)``

    where ``eps_i`` is twice the distance from sample ``i`` to its ``k``-th
    nearest neighbour.  Exact ties produce ``eps_i = 0``; a tiny floor keeps
    the logarithm finite (callers that expect heavy ties should use the
    mixture-aware estimators instead).
    """
    array = as_float_array(values, "values")
    n = array.shape[0]
    if n <= k:
        raise InsufficientSamplesError(k + 1, n, "entropy_knn")
    points = array.reshape(-1, 1)
    tree = cKDTree(points)
    # k+1 because the query point itself is its own nearest neighbour.
    distances, _ = tree.query(points, k=k + 1, p=np.inf)
    epsilon = 2.0 * distances[:, k]
    epsilon = np.maximum(epsilon, np.finfo(np.float64).tiny)
    return float(digamma(n) - digamma(k) + np.mean(np.log(epsilon)))
