"""Common infrastructure for MI estimators.

Every estimator consumes two aligned sequences of values (one per variable)
and returns an MI estimate in *nats*.  The helpers here normalise inputs:
pairs with a missing value on either side are dropped (the paper discards
NULL-producing rows from the join before estimation), categorical values are
encoded as integer codes, and numeric values become float arrays.
"""

from __future__ import annotations

import abc
import math
from enum import Enum
from typing import Any, Hashable, Iterable, Sequence

import numpy as np

from repro.exceptions import EstimationError, InsufficientSamplesError

__all__ = [
    "VariableKind",
    "MIEstimator",
    "prepare_pairs",
    "encode_discrete",
    "as_float_array",
    "clip_non_negative",
]


class VariableKind(Enum):
    """Statistical kind of a variable as seen by an estimator."""

    DISCRETE = "discrete"
    CONTINUOUS = "continuous"


def _is_missing(value: Any) -> bool:
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    return False


def prepare_pairs(
    x_values: Iterable[Any],
    y_values: Iterable[Any],
    *,
    min_samples: int = 2,
) -> tuple[list[Any], list[Any]]:
    """Align two value sequences, dropping pairs with a missing side.

    Raises
    ------
    InsufficientSamplesError
        If fewer than ``min_samples`` complete pairs remain.
    EstimationError
        If the two sequences have different lengths.
    """
    x_list = list(x_values)
    y_list = list(y_values)
    if len(x_list) != len(y_list):
        raise EstimationError(
            f"variables must be aligned, got {len(x_list)} and {len(y_list)} values"
        )
    pairs = [
        (x, y)
        for x, y in zip(x_list, y_list)
        if not _is_missing(x) and not _is_missing(y)
    ]
    if len(pairs) < min_samples:
        raise InsufficientSamplesError(min_samples, len(pairs), "after dropping missing pairs")
    xs, ys = zip(*pairs)
    return list(xs), list(ys)


def encode_discrete(values: Sequence[Hashable]) -> np.ndarray:
    """Encode arbitrary hashable values as dense integer codes.

    MI is invariant under bijections of discrete values, so the encoding does
    not change the estimate; it only gives k-NN based estimators a numeric
    representation of the discrete variable.
    """
    codes: dict[Hashable, int] = {}
    encoded = np.empty(len(values), dtype=np.int64)
    for index, value in enumerate(values):
        code = codes.setdefault(value, len(codes))
        encoded[index] = code
    return encoded


def as_float_array(values: Sequence[Any], name: str = "variable") -> np.ndarray:
    """Convert values to a 1-D float array, rejecting non-numeric entries."""
    try:
        array = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise EstimationError(
            f"{name} contains non-numeric values and cannot be used by a continuous estimator"
        ) from exc
    if array.ndim != 1:
        array = array.reshape(len(values), -1)
        if array.shape[1] != 1:
            raise EstimationError(f"{name} must be one-dimensional")
        array = array[:, 0]
    return array


def clip_non_negative(value: float) -> float:
    """Clamp tiny negative estimates (sampling noise) to zero.

    MI is non-negative; k-NN estimators can return slightly negative values
    for (nearly) independent variables.  Clamping keeps downstream rankings
    sane while not hiding genuinely wrong estimates (large negatives are not
    produced by the implemented estimators).
    """
    return 0.0 if value < 0.0 else float(value)


class MIEstimator(abc.ABC):
    """Abstract base class for sample-based MI estimators.

    Subclasses implement :meth:`_estimate` on cleaned inputs; the public
    :meth:`estimate` handles missing-value removal and validation.  Estimates
    are in nats.
    """

    #: Short name used in experiment reports (e.g. ``"MLE"``, ``"Mixed-KSG"``).
    name: str = "estimator"

    #: Kinds of the (X, Y) variables this estimator is designed for.
    x_kind: VariableKind = VariableKind.DISCRETE
    y_kind: VariableKind = VariableKind.DISCRETE

    #: Minimum number of complete sample pairs required.
    min_samples: int = 2

    def estimate(self, x_values: Iterable[Any], y_values: Iterable[Any]) -> float:
        """Estimate the mutual information I(X; Y) in nats."""
        xs, ys = prepare_pairs(x_values, y_values, min_samples=self.min_samples)
        return float(self._estimate(xs, ys))

    @abc.abstractmethod
    def _estimate(self, x_values: list[Any], y_values: list[Any]) -> float:
        """Estimate MI on cleaned, aligned samples."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
