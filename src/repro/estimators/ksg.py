"""KSG mutual-information estimator for continuous variables.

Implements algorithm 1 of Kraskov, Stögbauer and Grassberger (2004):

``I_hat(X; Y) = psi(k) + psi(N) - < psi(n_x + 1) + psi(n_y + 1) >``

where, for each sample ``i``, ``eps_i`` is twice the Chebyshev (max-norm)
distance to its ``k``-th nearest neighbour in the joint (X, Y) space, and
``n_x``/``n_y`` count the samples whose marginal distance to ``i`` is
*strictly* smaller than ``eps_i / 2``.

The estimator assumes continuous marginals without ties; repeated values make
``eps_i`` collapse to zero and the estimate unreliable (Section V of the
paper demonstrates this breakdown).  Use :class:`MixedKSGEstimator` for data
with repeated values or :func:`repro.estimators.perturbation.perturb_ties`
to break ties explicitly.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy.spatial import cKDTree
from scipy.special import digamma

from repro.exceptions import InsufficientSamplesError
from repro.estimators.base import (
    MIEstimator,
    VariableKind,
    as_float_array,
    clip_non_negative,
)

__all__ = ["KSGEstimator", "marginal_neighbor_counts"]


def marginal_neighbor_counts(values: np.ndarray, radii: np.ndarray, *, strict: bool = True) -> np.ndarray:
    """Count, for every sample, the other samples within a per-sample radius.

    Parameters
    ----------
    values:
        1-D array of marginal values.
    radii:
        Per-sample radius (same length as ``values``).
    strict:
        Count neighbours at distance strictly smaller than the radius (the
        KSG convention) rather than smaller-or-equal.
    """
    order = np.argsort(values, kind="mergesort")
    sorted_values = values[order]
    counts = np.empty(values.shape[0], dtype=np.int64)
    if strict:
        # Number of points with value in (v - r, v + r), excluding the point itself.
        left = np.searchsorted(sorted_values, values - radii, side="right")
        right = np.searchsorted(sorted_values, values + radii, side="left")
    else:
        left = np.searchsorted(sorted_values, values - radii, side="left")
        right = np.searchsorted(sorted_values, values + radii, side="right")
    counts = right - left - 1
    return np.maximum(counts, 0)


class KSGEstimator(MIEstimator):
    """Kraskov et al. (2004) k-NN MI estimator (algorithm 1).

    Parameters
    ----------
    k:
        Number of nearest neighbours (default 3, the value used throughout
        the paper's experiments and by scikit-learn).
    """

    name = "KSG"
    x_kind = VariableKind.CONTINUOUS
    y_kind = VariableKind.CONTINUOUS

    def __init__(self, k: int = 3):
        if k < 1:
            raise ValueError("k must be a positive integer")
        self.k = int(k)
        self.min_samples = k + 2

    def _estimate(self, x_values: list[Any], y_values: list[Any]) -> float:
        x = as_float_array(x_values, "x")
        y = as_float_array(y_values, "y")
        n = x.shape[0]
        if n <= self.k:
            raise InsufficientSamplesError(self.k + 1, n, "KSG")
        joint = np.column_stack([x, y])
        tree = cKDTree(joint)
        distances, _ = tree.query(joint, k=self.k + 1, p=np.inf)
        # eps_i / 2 is the distance to the k-th neighbour in the joint space.
        half_eps = distances[:, self.k]
        n_x = marginal_neighbor_counts(x, half_eps, strict=True)
        n_y = marginal_neighbor_counts(y, half_eps, strict=True)
        estimate = (
            digamma(self.k)
            + digamma(n)
            - np.mean(digamma(n_x + 1) + digamma(n_y + 1))
        )
        return clip_non_negative(float(estimate))
