"""Maximum-likelihood (plug-in) MI estimator for discrete variables.

This is the classical estimator used in the paper for string/string
(discrete-discrete) column pairs:

``I_hat(X; Y) = H_hat(X) + H_hat(Y) - H_hat(X, Y)``

with each entropy estimated by the empirical plug-in formula.  The estimator
is systematically biased upward for MI (Eq. 6 of the paper quantifies the
bias as roughly ``(m_X + m_Y - m_XY - 1) / (2N)``); an optional Miller–Madow
correction is provided for callers that want the first-order correction.
"""

from __future__ import annotations

from typing import Any

from repro.estimators.base import MIEstimator, VariableKind, clip_non_negative
from repro.estimators.entropy import (
    entropy_mle,
    entropy_miller_madow,
    joint_entropy_mle,
)

__all__ = ["MLEEstimator"]


class MLEEstimator(MIEstimator):
    """Plug-in MI estimator for discrete/discrete pairs.

    Parameters
    ----------
    miller_madow:
        Apply the Miller–Madow bias correction to each entropy term.  The
        paper's experiments use the uncorrected plug-in estimator (the
        default); the corrected variant is exposed for the bias ablation.
    clip_negative:
        Clamp small negative results (possible with the Miller–Madow
        correction) to zero.
    """

    name = "MLE"
    x_kind = VariableKind.DISCRETE
    y_kind = VariableKind.DISCRETE
    min_samples = 1

    def __init__(self, *, miller_madow: bool = False, clip_negative: bool = True):
        self.miller_madow = miller_madow
        self.clip_negative = clip_negative

    def _estimate(self, x_values: list[Any], y_values: list[Any]) -> float:
        # Hashability: lists/float NaN already removed by prepare_pairs.
        if self.miller_madow:
            h_x = entropy_miller_madow(x_values)
            h_y = entropy_miller_madow(y_values)
            # Joint Miller-Madow: correct the joint term with its own support size.
            joint = list(zip(x_values, y_values))
            h_xy = entropy_miller_madow(joint)
        else:
            h_x = entropy_mle(x_values)
            h_y = entropy_mle(y_values)
            h_xy = joint_entropy_mle(x_values, y_values)
        estimate = h_x + h_y - h_xy
        return clip_non_negative(estimate) if self.clip_negative else estimate
