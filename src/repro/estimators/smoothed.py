"""Laplace-smoothed plug-in MI estimator.

The paper's conclusion points out that the plain MLE estimator has high
recall but also a high false-discovery rate when used to flag dependent
column pairs, and suggests smoothed estimators (Pennerath et al., 2020) as an
alternative.  This estimator applies additive (Laplace) smoothing to the
joint contingency table before plugging the smoothed distribution into the
MI formula, shrinking estimates of weakly-supported cells toward
independence.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.estimators.base import MIEstimator, VariableKind, clip_non_negative

__all__ = ["SmoothedMLEEstimator"]


class SmoothedMLEEstimator(MIEstimator):
    """Additively smoothed plug-in MI estimator for discrete pairs.

    Parameters
    ----------
    alpha:
        Pseudo-count added to every cell of the observed joint contingency
        table (``alpha = 1`` is classic Laplace smoothing; ``alpha = 0``
        recovers the plain MLE estimator).
    """

    name = "Smoothed-MLE"
    x_kind = VariableKind.DISCRETE
    y_kind = VariableKind.DISCRETE
    min_samples = 1

    def __init__(self, alpha: float = 0.5):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = float(alpha)

    def _estimate(self, x_values: list[Any], y_values: list[Any]) -> float:
        x_levels = {value: index for index, value in enumerate(dict.fromkeys(x_values))}
        y_levels = {value: index for index, value in enumerate(dict.fromkeys(y_values))}
        joint = np.zeros((len(x_levels), len(y_levels)), dtype=np.float64)
        for x, y in zip(x_values, y_values):
            joint[x_levels[x], y_levels[y]] += 1.0
        joint += self.alpha
        joint /= joint.sum()
        p_x = joint.sum(axis=1, keepdims=True)
        p_y = joint.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(joint > 0, joint / (p_x * p_y), 1.0)
            terms = np.where(joint > 0, joint * np.log(ratio), 0.0)
        return clip_non_negative(float(terms.sum()))
