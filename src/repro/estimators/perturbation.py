"""Tie-breaking perturbation for continuous estimators.

Section V-A of the paper notes that a marginal variable with repeated values
can be made continuous "via perturbation, by breaking ties using random
Gaussian noise of low magnitude without any significant impact on the MI".
This module implements that transformation so experiments can route
discrete-valued numeric data through estimators that assume continuous,
tie-free marginals (e.g. DC-KSG on the continuous side, or plain KSG).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.estimators.base import as_float_array
from repro.util.rng import RandomState, ensure_rng

__all__ = ["perturb_ties"]


def perturb_ties(
    values: Sequence[float],
    *,
    relative_scale: float = 1e-10,
    random_state: RandomState = None,
) -> np.ndarray:
    """Add low-magnitude Gaussian noise to break exact ties.

    The noise standard deviation is ``relative_scale`` times the spread of
    the data (its standard deviation, or 1.0 for constant data), so the
    perturbation is negligible relative to real structure but sufficient to
    make every value unique with probability one.

    Parameters
    ----------
    values:
        Numeric sample, possibly with repeated values.
    relative_scale:
        Noise scale relative to the sample's standard deviation.
    random_state:
        Seed or generator for reproducibility.
    """
    array = as_float_array(values, "values")
    if relative_scale <= 0:
        raise ValueError("relative_scale must be positive")
    rng = ensure_rng(random_state)
    spread = float(np.std(array))
    if spread == 0.0 or not np.isfinite(spread):
        spread = 1.0
    noise = rng.normal(0.0, relative_scale * spread, size=array.shape)
    return array + noise
