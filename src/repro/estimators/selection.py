"""Data-type driven estimator selection.

Section V of the paper describes the estimator-selection policy used when
dealing with real data:

1. both columns are strings (discrete/discrete) → :class:`MLEEstimator`;
2. both columns are numeric → :class:`MixedKSGEstimator` (it handles pure
   continuous data as well as the discrete-continuous mixtures created by
   left joins on repeated keys);
3. one column is a string and the other numeric → :class:`DCKSGEstimator`
   with the string side treated as the discrete variable.

:func:`estimate_mi` is the one-call convenience wrapper: it infers column
types when they are not supplied and dispatches accordingly.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.relational.dtypes import DType, infer_column_dtype
from repro.estimators.base import MIEstimator, VariableKind
from repro.estimators.dc_ksg import DCKSGEstimator
from repro.estimators.mixed_ksg import MixedKSGEstimator
from repro.estimators.mle import MLEEstimator

__all__ = ["select_estimator", "estimator_for_kinds", "estimate_mi"]


def select_estimator(x_dtype: DType, y_dtype: DType, *, k: int = 3) -> MIEstimator:
    """Return the estimator prescribed by the paper for a pair of column types.

    Parameters
    ----------
    x_dtype, y_dtype:
        Logical types of the feature and target columns.
    k:
        Neighbour count for the KSG-family estimators.
    """
    x_categorical = not x_dtype.is_numeric
    y_categorical = not y_dtype.is_numeric
    if x_categorical and y_categorical:
        return MLEEstimator()
    if not x_categorical and not y_categorical:
        return MixedKSGEstimator(k=k)
    discrete_side = "x" if x_categorical else "y"
    return DCKSGEstimator(k=k, discrete=discrete_side)


def estimator_for_kinds(
    x_kind: VariableKind, y_kind: VariableKind, *, k: int = 3
) -> MIEstimator:
    """Like :func:`select_estimator` but from statistical kinds instead of dtypes."""
    x_dtype = DType.FLOAT if x_kind is VariableKind.CONTINUOUS else DType.STRING
    y_dtype = DType.FLOAT if y_kind is VariableKind.CONTINUOUS else DType.STRING
    return select_estimator(x_dtype, y_dtype, k=k)


def estimate_mi(
    x_values: Sequence[Any],
    y_values: Sequence[Any],
    *,
    x_dtype: Optional[DType] = None,
    y_dtype: Optional[DType] = None,
    estimator: Optional[MIEstimator] = None,
    k: int = 3,
) -> float:
    """Estimate I(X; Y) in nats from two aligned value sequences.

    Types are inferred from the data when not supplied; an explicit
    ``estimator`` bypasses the dispatch entirely.
    """
    if estimator is None:
        x_dtype = x_dtype if x_dtype is not None else infer_column_dtype(x_values)
        y_dtype = y_dtype if y_dtype is not None else infer_column_dtype(y_values)
        estimator = select_estimator(x_dtype, y_dtype, k=k)
    return estimator.estimate(x_values, y_values)
