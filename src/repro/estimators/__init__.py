"""Mutual-information and entropy estimators.

This package implements the estimators discussed in Section II of the paper
and used throughout its evaluation:

* :class:`MLEEstimator` — maximum-likelihood (plug-in) estimator for
  discrete/discrete pairs, plus Miller–Madow bias correction and the analytic
  bias formula (Eq. 6).
* :class:`SmoothedMLEEstimator` — Laplace-smoothed plug-in estimator (the
  false-discovery-controlling alternative mentioned in the conclusion).
* :class:`KSGEstimator` — Kraskov–Stögbauer–Grassberger estimator for
  continuous/continuous pairs.
* :class:`MixedKSGEstimator` — Gao et al. (2017) estimator for variables that
  are mixtures of discrete and continuous distributions (the post-left-join
  feature columns of the paper).
* :class:`DCKSGEstimator` — Ross (2014) estimator for discrete/continuous
  pairs.
* entropy estimators (plug-in, Miller–Madow, Kozachenko–Leonenko) on which
  the MI estimators are built.
* :func:`select_estimator` / :func:`estimate_mi` — data-type driven estimator
  dispatch exactly as described in Section V ("Mutual Information
  Estimators").
"""

from repro.estimators.base import (
    MIEstimator,
    VariableKind,
    prepare_pairs,
    encode_discrete,
    as_float_array,
)
from repro.estimators.entropy import (
    entropy_mle,
    entropy_mle_from_counts,
    entropy_miller_madow,
    joint_entropy_mle,
    entropy_knn,
    entropy_laplace,
)
from repro.estimators.mle import MLEEstimator
from repro.estimators.smoothed import SmoothedMLEEstimator
from repro.estimators.ksg import KSGEstimator
from repro.estimators.mixed_ksg import MixedKSGEstimator
from repro.estimators.dc_ksg import DCKSGEstimator
from repro.estimators.perturbation import perturb_ties
from repro.estimators.bias import mle_mi_bias, miller_madow_correction
from repro.estimators.selection import select_estimator, estimate_mi, estimator_for_kinds
from repro.estimators.confidence import (
    MIConfidenceInterval,
    estimate_mi_with_confidence,
    subsampled_estimates,
)
from repro.estimators.conditional import (
    conditional_mutual_information,
    discretize_equal_width,
)

__all__ = [
    "MIEstimator",
    "VariableKind",
    "prepare_pairs",
    "encode_discrete",
    "as_float_array",
    "entropy_mle",
    "entropy_mle_from_counts",
    "entropy_miller_madow",
    "joint_entropy_mle",
    "entropy_knn",
    "entropy_laplace",
    "MLEEstimator",
    "SmoothedMLEEstimator",
    "KSGEstimator",
    "MixedKSGEstimator",
    "DCKSGEstimator",
    "perturb_ties",
    "mle_mi_bias",
    "miller_madow_correction",
    "select_estimator",
    "estimator_for_kinds",
    "estimate_mi",
    "MIConfidenceInterval",
    "estimate_mi_with_confidence",
    "subsampled_estimates",
    "conditional_mutual_information",
    "discretize_equal_width",
]
