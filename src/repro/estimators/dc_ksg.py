"""Ross (2014) MI estimator for discrete/continuous variable pairs.

The paper refers to this estimator as *DC-KSG*: it handles the case where one
variable is discrete (categorical) and the other is continuous, without
binning either.  For every sample ``i`` with discrete value ``x_i``:

* ``N_{x_i}`` is the number of samples sharing the discrete value;
* ``d_i`` is the distance from ``y_i`` to its ``k_i``-th nearest neighbour
  *among samples with the same discrete value*, where
  ``k_i = min(k, N_{x_i} - 1)``;
* ``m_i`` is the number of samples (over the full data) whose continuous
  value lies within ``d_i`` of ``y_i``.

``I_hat = psi(N) - <psi(N_x)> + <psi(k_i)> - <psi(m_i)>``

Samples whose discrete value occurs only once carry no neighbourhood
information and are excluded from the averages, following Ross's reference
implementation (and scikit-learn's).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any

import numpy as np
from scipy.spatial import cKDTree
from scipy.special import digamma

from repro.exceptions import EstimationError, InsufficientSamplesError
from repro.estimators.base import (
    MIEstimator,
    VariableKind,
    as_float_array,
    clip_non_negative,
)

__all__ = ["DCKSGEstimator"]


class DCKSGEstimator(MIEstimator):
    """Discrete/continuous MI estimator (Ross, PLoS ONE 2014).

    Parameters
    ----------
    k:
        Number of nearest neighbours (default 3).
    discrete:
        Which side is the discrete variable: ``"x"`` (default) or ``"y"``.
        The estimator is symmetric in MI terms, the flag only tells it which
        input to treat as categorical.
    degenerate_value:
        Value returned when *every* discrete value occurs exactly once, in
        which case no neighbourhood carries information and the estimator is
        known to break down (Section V of the paper).  Defaults to ``0.0``
        (the paper observes estimates collapsing to zero); pass ``None`` to
        raise :class:`~repro.exceptions.InsufficientSamplesError` instead.
    """

    name = "DC-KSG"
    x_kind = VariableKind.DISCRETE
    y_kind = VariableKind.CONTINUOUS

    def __init__(
        self,
        k: int = 3,
        *,
        discrete: str = "x",
        degenerate_value: "float | None" = 0.0,
    ):
        if k < 1:
            raise ValueError("k must be a positive integer")
        if discrete not in ("x", "y"):
            raise ValueError("discrete must be 'x' or 'y'")
        self.k = int(k)
        self.discrete = discrete
        self.degenerate_value = degenerate_value
        self.min_samples = k + 2

    def _estimate(self, x_values: list[Any], y_values: list[Any]) -> float:
        if self.discrete == "x":
            discrete_values, continuous_values = x_values, y_values
        else:
            discrete_values, continuous_values = y_values, x_values
        continuous = as_float_array(continuous_values, "continuous variable")
        n = continuous.shape[0]
        if n <= self.k:
            raise InsufficientSamplesError(self.k + 1, n, "DC-KSG")

        label_counts = Counter(discrete_values)
        if len(label_counts) < 1:
            raise EstimationError("discrete variable has no values")

        # Group sample indices by discrete label.
        groups: dict[Any, list[int]] = defaultdict(list)
        for index, label in enumerate(discrete_values):
            groups[label].append(index)

        # Per-sample radius: distance to the k_i-th nearest neighbour among
        # samples sharing the discrete value, nudged just below so the
        # neighbour itself falls outside the counting ball (Ross's convention).
        radii = np.full(n, np.nan)
        label_size = np.zeros(n)
        k_per_sample = np.zeros(n)
        for label, indices in groups.items():
            count = len(indices)
            if count < 2:
                # Singleton labels carry no neighbourhood information.
                continue
            k_i = min(self.k, count - 1)
            group_values = continuous[indices]
            group_sorted = np.sort(group_values, kind="mergesort")
            positions = np.searchsorted(group_sorted, group_values)
            for index, value, position in zip(indices, group_values, positions):
                distance = _kth_neighbor_distance(group_sorted, value, position, k_i)
                radii[index] = np.nextafter(distance, 0.0)
                label_size[index] = count
                k_per_sample[index] = k_i

        valid = ~np.isnan(radii)
        if not np.any(valid):
            if self.degenerate_value is not None:
                return float(self.degenerate_value)
            raise InsufficientSamplesError(
                2, 0, "DC-KSG: every discrete value occurs only once"
            )

        # Count, for every valid sample, the points of the *full* sample whose
        # continuous value lies within its radius.  Using the same distance
        # computation as the neighbour search (via the KD-tree) avoids the
        # floating-point asymmetry of interval arithmetic on shifted values.
        tree = cKDTree(continuous.reshape(-1, 1))
        m_counts = tree.query_ball_point(
            continuous[valid].reshape(-1, 1),
            r=radii[valid],
            p=np.inf,
            return_length=True,
        )
        m_counts = np.maximum(np.asarray(m_counts, dtype=np.float64), 1.0)

        estimate = (
            digamma(int(np.sum(valid)))
            - float(np.mean(digamma(label_size[valid])))
            + float(np.mean(digamma(k_per_sample[valid])))
            - float(np.mean(digamma(m_counts)))
        )
        return clip_non_negative(estimate)


def _kth_neighbor_distance(
    sorted_values: np.ndarray, value: float, position: int, k: int
) -> float:
    """Distance from ``value`` to its ``k``-th nearest neighbour in a sorted array.

    ``position`` is the index of ``value`` (or of its first occurrence) in
    ``sorted_values``.  The point itself is not its own neighbour.
    """
    n = sorted_values.shape[0]
    left = position - 1
    right = position + 1
    # Skip the query point itself: `position` points at one occurrence of it.
    distance = 0.0
    found = 0
    # The query point occupies exactly one slot; when duplicates exist the
    # remaining duplicates are genuine neighbours at distance zero.
    while found < k:
        left_distance = value - sorted_values[left] if left >= 0 else np.inf
        right_distance = sorted_values[right] - value if right < n else np.inf
        if left_distance <= right_distance:
            distance = left_distance
            left -= 1
        else:
            distance = right_distance
            right += 1
        found += 1
    return float(distance)
