"""Simulated open-data repositories.

Section V-C of the paper evaluates the sketches on snapshots of two real
open-data portals (NYC Open Data and the World Bank Finances collection)
harvested through the Socrata API in 2019.  Those snapshots are not
redistributable and cannot be downloaded in this offline environment, so this
package provides the documented substitution (see DESIGN.md): a deterministic
*repository simulator* that produces corpora of two-column tables
``T_A[K_A, A]`` with

* string join keys drawn from realistic domains (dates, ZIP codes, country
  and agency codes, category vocabularies),
* Zipf-skewed key frequency distributions (repeated join keys),
* value columns of mixed types (strings and numbers),
* *planted* cross-table dependencies of varying strength through shared
  latent variables attached to the key domains.

The real-data experiments compare sketch estimates against full-join
estimates (not against a ground truth), so a simulated corpus with a similar
diversity of overlaps, skew, types and dependence strengths exercises the
same code paths and supports the same comparisons.
"""

from repro.opendata.domains import (
    KeyDomain,
    zipcode_domain,
    date_domain,
    country_code_domain,
    agency_code_domain,
    category_domain,
    zipf_weights,
)
from repro.opendata.repository import (
    RepositoryProfile,
    TwoColumnTable,
    OpenDataRepository,
    generate_repository,
    NYC_PROFILE,
    WBF_PROFILE,
    profile_by_name,
)
from repro.opendata.pairs import TablePair, sample_table_pairs

__all__ = [
    "KeyDomain",
    "zipcode_domain",
    "date_domain",
    "country_code_domain",
    "agency_code_domain",
    "category_domain",
    "zipf_weights",
    "RepositoryProfile",
    "TwoColumnTable",
    "OpenDataRepository",
    "generate_repository",
    "NYC_PROFILE",
    "WBF_PROFILE",
    "profile_by_name",
    "TablePair",
    "sample_table_pairs",
]
