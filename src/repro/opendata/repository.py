"""Generator of simulated open-data repositories.

A repository is a collection of two-column tables ``T_A[key, value]`` built
the same way the paper prepares its real-data experiments (Section V-C): for
each source table, every (join-key attribute, data attribute) pair becomes a
two-column table whose key is a string and whose value is a string or a
number.  Cross-table statistical dependence is *planted* through latent
variables attached to the join-key domains: tables that derive their value
column from the same latent variable (with different strengths) end up with
a non-trivial MI after joining on their shared keys, while tables with
dependence close to zero are effectively independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import SyntheticDataError
from repro.opendata.domains import (
    KeyDomain,
    agency_code_domain,
    category_domain,
    country_code_domain,
    date_domain,
    zipcode_domain,
    zipf_weights,
)
from repro.relational.column import Column
from repro.relational.dtypes import DType
from repro.relational.table import Table
from repro.util.rng import RandomState, ensure_rng

__all__ = [
    "RepositoryProfile",
    "TwoColumnTable",
    "OpenDataRepository",
    "generate_repository",
    "NYC_PROFILE",
    "WBF_PROFILE",
    "profile_by_name",
]

_DOMAIN_FACTORIES = {
    "zipcode": zipcode_domain,
    "date": date_domain,
    "country": country_code_domain,
    "agency": agency_code_domain,
    "category": category_domain,
}


@dataclass(frozen=True)
class RepositoryProfile:
    """Shape parameters of a simulated repository.

    Attributes
    ----------
    name:
        Profile name (``"nyc"`` / ``"wbf"`` mimic the two collections used in
        the paper, at laptop scale).
    num_tables:
        Number of two-column tables to generate.
    domain_sizes:
        Mapping from key-domain kind to the number of distinct keys.
    rows_range:
        Inclusive range of table sizes (rows are sampled per table).
    key_skew_range:
        Range of the Zipf exponent of the key-frequency distribution
        (0 = uniform keys, larger = heavier repetition of popular keys).
    dependence_range:
        Range of the latent-dependence strength of value columns.
    numeric_fraction:
        Fraction of tables whose value column is numeric (the rest are
        categorical strings).
    unique_key_fraction:
        Fraction of tables whose key column is (nearly) unique, i.e. one row
        per key, like reference/dimension tables.
    categorical_levels:
        Number of levels used when a value column is categorical.
    coverage_range:
        Range of the fraction of the key domain each table actually uses;
        partial coverage produces pairs with partial key overlap, as in real
        repositories where tables cover different time windows or regions.
    """

    name: str
    num_tables: int
    domain_sizes: dict[str, int]
    rows_range: tuple[int, int] = (200, 2000)
    key_skew_range: tuple[float, float] = (0.0, 1.1)
    dependence_range: tuple[float, float] = (0.0, 1.0)
    numeric_fraction: float = 0.6
    unique_key_fraction: float = 0.3
    categorical_levels: int = 12
    coverage_range: tuple[float, float] = (0.35, 1.0)


#: Laptop-scale stand-in for the NYC Open Data snapshot used in the paper.
NYC_PROFILE = RepositoryProfile(
    name="nyc",
    num_tables=80,
    domain_sizes={"zipcode": 280, "date": 365, "agency": 120, "category": 60},
    rows_range=(200, 3000),
    key_skew_range=(0.2, 1.2),
    numeric_fraction=0.55,
    unique_key_fraction=0.25,
)

#: Laptop-scale stand-in for the World Bank Finances snapshot used in the paper.
WBF_PROFILE = RepositoryProfile(
    name="wbf",
    num_tables=60,
    domain_sizes={"country": 200, "date": 240, "agency": 150},
    rows_range=(500, 4000),
    key_skew_range=(0.0, 0.8),
    numeric_fraction=0.7,
    unique_key_fraction=0.35,
)


def profile_by_name(name: str) -> RepositoryProfile:
    """Return one of the built-in repository profiles (``"nyc"`` or ``"wbf"``)."""
    profiles = {"nyc": NYC_PROFILE, "wbf": WBF_PROFILE}
    try:
        return profiles[name.strip().lower()]
    except KeyError:
        raise SyntheticDataError(
            f"unknown repository profile {name!r}; available: {', '.join(sorted(profiles))}"
        ) from None


@dataclass
class TwoColumnTable:
    """A two-column table ``[key, value]`` of a simulated repository."""

    table: Table
    domain_name: str
    value_kind: str  # "numeric" or "string"
    dependence: float
    key_skew: float
    key_column: str = "key"
    value_column: str = "value"

    @property
    def name(self) -> str:
        """Name of the underlying table."""
        return self.table.name

    @property
    def num_rows(self) -> int:
        """Number of rows of the underlying table."""
        return self.table.num_rows


@dataclass
class OpenDataRepository:
    """A simulated open-data repository: a named collection of two-column tables."""

    name: str
    profile: RepositoryProfile
    tables: list[TwoColumnTable]
    domains: dict[str, KeyDomain] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.tables)

    def tables_for_domain(self, domain_name: str) -> list[TwoColumnTable]:
        """All tables keyed on the given domain."""
        return [table for table in self.tables if table.domain_name == domain_name]


def _sample_keys(
    domain: KeyDomain,
    rows: int,
    skew: float,
    unique: bool,
    coverage: float,
    rng: np.random.Generator,
) -> list[str]:
    # Each table only covers part of the key domain (different time windows,
    # regions, agencies, ...), so random pairs overlap only partially.
    covered_size = max(2, int(round(coverage * len(domain))))
    covered = list(domain.subset(covered_size, rng))
    if unique:
        size = min(rows, len(covered))
        indices = rng.choice(len(covered), size=size, replace=False)
        return [covered[int(i)] for i in indices]
    weights = zipf_weights(len(covered), exponent=skew)
    # Randomize which keys are the popular ones for this table.
    permutation = rng.permutation(len(covered))
    indices = rng.choice(len(covered), size=rows, replace=True, p=weights)
    return [covered[int(permutation[int(i)])] for i in indices]


def _numeric_values(
    keys: list[str],
    latent: dict[str, float],
    dependence: float,
    rng: np.random.Generator,
) -> list[float]:
    scale = float(rng.uniform(0.5, 50.0))
    offset = float(rng.uniform(-100.0, 100.0))
    noise_scale = float(np.sqrt(max(1.0 - dependence**2, 0.0)))
    values = []
    for key in keys:
        signal = dependence * latent[key]
        noise = noise_scale * rng.normal()
        values.append(offset + scale * (signal + noise))
    return values


def _categorical_values(
    keys: list[str],
    latent: dict[str, float],
    dependence: float,
    levels: int,
    rng: np.random.Generator,
) -> list[str]:
    noise_scale = float(np.sqrt(max(1.0 - dependence**2, 0.0)))
    scores = np.array(
        [dependence * latent[key] + noise_scale * rng.normal() for key in keys]
    )
    # Bucket scores into `levels` quantile bins; each bin is a category label.
    edges = np.quantile(scores, np.linspace(0.0, 1.0, levels + 1)[1:-1]) if len(scores) > 1 else []
    codes = np.digitize(scores, edges) if len(scores) > 1 else np.zeros(len(scores), dtype=int)
    return [f"level_{int(code):02d}" for code in codes]


def generate_repository(
    profile: "str | RepositoryProfile" = "nyc",
    *,
    random_state: RandomState = None,
    num_tables: Optional[int] = None,
) -> OpenDataRepository:
    """Generate a simulated open-data repository.

    Parameters
    ----------
    profile:
        A :class:`RepositoryProfile` or the name of a built-in profile
        (``"nyc"`` or ``"wbf"``).
    random_state:
        Seed or generator; the whole repository is reproducible from it.
    num_tables:
        Optional override of the profile's table count (useful to keep unit
        tests fast while benches use the full profile).
    """
    if isinstance(profile, str):
        profile = profile_by_name(profile)
    rng = ensure_rng(random_state)

    domains: dict[str, KeyDomain] = {}
    latents: dict[str, dict[str, float]] = {}
    for kind, size in profile.domain_sizes.items():
        factory = _DOMAIN_FACTORIES.get(kind)
        if factory is None:
            raise SyntheticDataError(f"unknown key-domain kind {kind!r}")
        domain = factory(size)
        domains[kind] = domain
        latents[kind] = {key: float(rng.normal()) for key in domain.values}

    table_count = num_tables if num_tables is not None else profile.num_tables
    domain_names = list(domains)
    tables: list[TwoColumnTable] = []
    for index in range(table_count):
        domain_name = domain_names[int(rng.integers(0, len(domain_names)))]
        domain = domains[domain_name]
        latent = latents[domain_name]
        rows = int(rng.integers(profile.rows_range[0], profile.rows_range[1] + 1))
        skew = float(rng.uniform(*profile.key_skew_range))
        unique = bool(rng.random() < profile.unique_key_fraction)
        dependence = float(rng.uniform(*profile.dependence_range))
        numeric = bool(rng.random() < profile.numeric_fraction)
        coverage = float(rng.uniform(*profile.coverage_range))

        keys = _sample_keys(domain, rows, skew, unique, coverage, rng)
        if numeric:
            values = _numeric_values(keys, latent, dependence, rng)
            value_kind = "numeric"
        else:
            values = _categorical_values(
                keys, latent, dependence, profile.categorical_levels, rng
            )
            value_kind = "string"

        table = Table(
            # Join keys are always strings (ZIP codes, dates, codes), even when
            # they look numeric -- mirroring how the paper treats such values.
            [Column("key", keys, dtype=DType.STRING), Column("value", values)],
            name=f"{profile.name}_table_{index:04d}_{domain_name}",
        )
        tables.append(
            TwoColumnTable(
                table=table,
                domain_name=domain_name,
                value_kind=value_kind,
                dependence=dependence,
                key_skew=skew,
            )
        )
    return OpenDataRepository(
        name=profile.name, profile=profile, tables=tables, domains=domains
    )
