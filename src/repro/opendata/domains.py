"""Join-key domains for the simulated open-data repositories.

Open-data tables are typically joinable on a handful of recurring key kinds:
geographies (ZIP codes, boroughs), time (dates), administrative codes
(countries, agencies) and controlled vocabularies (categories).  Each
generator below produces a :class:`KeyDomain` — a named list of distinct
string keys — from which the repository simulator draws table key columns
with configurable skew.
"""

from __future__ import annotations

import itertools
import string
from dataclasses import dataclass
from datetime import date, timedelta

import numpy as np

from repro.util.rng import RandomState, ensure_rng

__all__ = [
    "KeyDomain",
    "zipcode_domain",
    "date_domain",
    "country_code_domain",
    "agency_code_domain",
    "category_domain",
    "zipf_weights",
]


@dataclass(frozen=True)
class KeyDomain:
    """A named universe of distinct string join-key values."""

    name: str
    values: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.values)

    def subset(self, size: int, random_state: RandomState = None) -> tuple[str, ...]:
        """A uniform random subset of the domain (without replacement)."""
        rng = ensure_rng(random_state)
        size = min(size, len(self.values))
        indices = rng.choice(len(self.values), size=size, replace=False)
        return tuple(self.values[int(i)] for i in indices)


def zipcode_domain(size: int = 250, start: int = 10001) -> KeyDomain:
    """US-style 5-digit ZIP codes (``"10001"``, ``"10002"``, ...)."""
    values = tuple(f"{start + offset:05d}" for offset in range(size))
    return KeyDomain("zipcode", values)


def date_domain(size: int = 365, start: date = date(2019, 1, 1)) -> KeyDomain:
    """ISO dates starting at ``start`` (``"2019-01-01"``, ...)."""
    values = tuple((start + timedelta(days=offset)).isoformat() for offset in range(size))
    return KeyDomain("date", values)


def country_code_domain(size: int = 200) -> KeyDomain:
    """Synthetic 3-letter country/ISO-style codes (``"AAA"``, ``"AAB"``, ...)."""
    letters = string.ascii_uppercase
    codes = ("".join(combo) for combo in itertools.product(letters, repeat=3))
    values = tuple(itertools.islice(codes, size))
    return KeyDomain("country", values)


def agency_code_domain(size: int = 120, prefix: str = "AG") -> KeyDomain:
    """Agency/department codes (``"AG-001"``, ``"AG-002"``, ...)."""
    values = tuple(f"{prefix}-{index:03d}" for index in range(1, size + 1))
    return KeyDomain("agency", values)


def category_domain(size: int = 60, prefix: str = "category") -> KeyDomain:
    """Controlled-vocabulary category labels (``"category_01"``, ...)."""
    values = tuple(f"{prefix}_{index:02d}" for index in range(1, size + 1))
    return KeyDomain("category", values)


def zipf_weights(size: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized Zipf weights ``w_i ∝ 1 / i^exponent`` over ``size`` items.

    ``exponent = 0`` degenerates to uniform weights; larger exponents skew
    the key-frequency distribution more heavily (a common property of real
    join keys such as boroughs or agencies).
    """
    if size < 1:
        raise ValueError("size must be a positive integer")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()
