"""Sampling of base/candidate table pairs from a simulated repository.

Section V-C draws a uniform sample of pairwise combinations of the
repository's two-column tables and uses each pair as ``(T_train, T_aug)``.
Most uniformly drawn pairs in a real repository do not share join-key
values; those pairs are filtered out later by the minimum sketch-join-size
threshold.  :func:`sample_table_pairs` supports both behaviours: fully
uniform pairs (faithful, mostly empty joins) and same-domain pairs (the
subset that survives the filter, which is what the accuracy experiments
measure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import SyntheticDataError
from repro.opendata.repository import OpenDataRepository, TwoColumnTable
from repro.util.rng import RandomState, ensure_rng

__all__ = ["TablePair", "sample_table_pairs"]


@dataclass
class TablePair:
    """A (base, candidate) pair of two-column tables drawn from a repository."""

    base: TwoColumnTable
    candidate: TwoColumnTable

    @property
    def shares_domain(self) -> bool:
        """Whether both tables are keyed on the same domain (hence joinable)."""
        return self.base.domain_name == self.candidate.domain_name

    def describe(self) -> dict[str, object]:
        """Small dict used in experiment reports."""
        return {
            "base": self.base.name,
            "candidate": self.candidate.name,
            "domain": self.base.domain_name if self.shares_domain else "mixed",
            "base_rows": self.base.num_rows,
            "candidate_rows": self.candidate.num_rows,
            "base_value_kind": self.base.value_kind,
            "candidate_value_kind": self.candidate.value_kind,
        }


def sample_table_pairs(
    repository: OpenDataRepository,
    count: int,
    *,
    same_domain_only: bool = True,
    random_state: RandomState = None,
) -> list[TablePair]:
    """Draw ``count`` (base, candidate) table pairs from a repository.

    Parameters
    ----------
    repository:
        The simulated repository to draw from.
    count:
        Number of pairs to return.
    same_domain_only:
        Restrict to pairs keyed on the same domain (the pairs that can
        actually join).  Set to ``False`` for a fully uniform sample of all
        pairwise combinations, as in the paper's corpus statistics.
    random_state:
        Seed or generator.
    """
    if count < 1:
        raise SyntheticDataError("count must be a positive integer")
    if len(repository.tables) < 2:
        raise SyntheticDataError("repository must contain at least two tables")
    rng = ensure_rng(random_state)
    pairs: list[TablePair] = []
    max_attempts = count * 50
    attempts = 0
    while len(pairs) < count and attempts < max_attempts:
        attempts += 1
        first, second = rng.choice(len(repository.tables), size=2, replace=False)
        pair = TablePair(
            base=repository.tables[int(first)],
            candidate=repository.tables[int(second)],
        )
        if same_domain_only and not pair.shares_domain:
            continue
        pairs.append(pair)
    if len(pairs) < count:
        raise SyntheticDataError(
            f"could only sample {len(pairs)} of {count} requested pairs "
            f"(same_domain_only={same_domain_only})"
        )
    return pairs


def iter_all_pairs(repository: OpenDataRepository) -> Iterator[TablePair]:
    """Iterate over every ordered pair of distinct tables in the repository."""
    for base_index, base in enumerate(repository.tables):
        for candidate_index, candidate in enumerate(repository.tables):
            if base_index == candidate_index:
                continue
            yield TablePair(base=base, candidate=candidate)
