"""repro: join-free mutual-information estimation between attributes across tables.

A faithful, from-scratch reproduction of

    A. Santos, F. Korn, J. Freire.
    "Efficiently Estimating Mutual Information Between Attributes Across
    Tables", ICDE 2024.

The library answers the question the paper poses: *given a base table and a
candidate external table, how informative would a feature derived from the
candidate be about a target column of the base table — without materializing
the join between them?*  It provides:

* a relational substrate (tables, typed columns, joins, featurization),
* the full family of MI estimators the paper evaluates (MLE, smoothed MLE,
  KSG, Mixed-KSG, DC-KSG),
* the sketching methods TUPSK (proposed), LV2SK, PRISK, INDSK and CSK,
* the synthetic benchmark with analytically known MI (Trinomial, CDUnif,
  KeyInd/KeyDep decompositions),
* a simulated open-data repository and a data-discovery layer that ranks
  candidate augmentations by sketch-estimated MI,
* an evaluation harness that regenerates every table and figure of the
  paper's experimental section.

Quickstart
----------
The canonical entry point is a :class:`SketchEngine` session bound to one
immutable :class:`EngineConfig` — every sketch the engine builds shares the
config's method, capacity and hash seed, so the two sides are joinable by
construction:

>>> from repro import EngineConfig, SketchEngine, Table
>>> zips = ["a", "b", "c", "d", "e", "f"]
>>> train = Table.from_dict({"zip": zips * 2, "trips": [5, 7, 1, 3, 9, 4] * 2})
>>> weather = Table.from_dict({"zip": zips, "temp": [20.0, 9.0, 11.0, 15.0, 2.0, 17.0]})
>>> engine = SketchEngine(EngineConfig(method="TUPSK", capacity=128))
>>> s_train = engine.sketch_base(train, "zip", "trips")
>>> s_cand = engine.sketch_candidate(weather, "zip", "temp")  # AVG(temp) per zip
>>> estimate = engine.estimate(s_train, s_cand)
>>> estimate.mi >= 0.0
True

Batch workloads use ``engine.sketch_pairs`` (many sketches) and
``engine.estimate_many`` (one base against many candidates), both of which
accept ``max_workers`` for thread-pooled execution; ``SketchIndex`` builds
its discovery index on top of an engine.

Migrating from the pre-engine functions (still available as thin wrappers
over a module-level default engine):

* ``build_sketch(t, k, v, side=SketchSide.BASE)``
  → ``engine.sketch_base(t, k, v)``
* ``build_sketch(t, k, v, side=SketchSide.CANDIDATE, agg="avg")``
  → ``engine.sketch_candidate(t, k, v, agg="avg")``
* ``get_builder(method, capacity, seed)``
  → ``SketchEngine(EngineConfig(...)).builder()``
* ``estimate_mi_from_sketches(s1, s2)``
  → ``engine.estimate(s1, s2)``
* ``SketchIndex(method=..., capacity=..., seed=...)``
  → ``SketchIndex(EngineConfig(...))``
"""

from repro.exceptions import (
    ReproError,
    SchemaError,
    ColumnNotFoundError,
    TypeInferenceError,
    AggregationError,
    JoinError,
    SketchError,
    IncompatibleSketchError,
    EstimationError,
    InsufficientSamplesError,
    SyntheticDataError,
    DiscoveryError,
    EngineError,
    EngineConfigError,
)
from repro.relational import (
    Column,
    DType,
    Table,
    AggregateFunction,
    featurize,
    augment,
    inner_join,
    left_outer_join,
    read_csv,
    write_csv,
)
from repro.estimators import (
    MIEstimator,
    MLEEstimator,
    SmoothedMLEEstimator,
    KSGEstimator,
    MixedKSGEstimator,
    DCKSGEstimator,
    select_estimator,
    estimate_mi,
)
from repro.sketches import (
    Sketch,
    SketchSide,
    SketchBuilder,
    TupleSketchBuilder,
    TwoLevelSketchBuilder,
    PrioritySketchBuilder,
    IndependentSketchBuilder,
    CorrelationSketchBuilder,
    KMVSketch,
    build_sketch,
    join_sketches,
    estimate_mi_from_sketches,
    available_methods,
)
from repro.synthetic import (
    KeyGeneration,
    SyntheticDataset,
    generate_dataset,
    generate_trinomial_dataset,
    generate_cdunif_dataset,
)
from repro.discovery import SketchIndex, AugmentationQuery, AugmentationResult
from repro.engine import (
    EngineConfig,
    SketchEngine,
    SketchRequest,
    BatchEstimate,
    get_default_engine,
    set_default_engine,
    configure_default_engine,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "SchemaError",
    "ColumnNotFoundError",
    "TypeInferenceError",
    "AggregationError",
    "JoinError",
    "SketchError",
    "IncompatibleSketchError",
    "EstimationError",
    "InsufficientSamplesError",
    "SyntheticDataError",
    "DiscoveryError",
    "EngineError",
    "EngineConfigError",
    # relational
    "Column",
    "DType",
    "Table",
    "AggregateFunction",
    "featurize",
    "augment",
    "inner_join",
    "left_outer_join",
    "read_csv",
    "write_csv",
    # estimators
    "MIEstimator",
    "MLEEstimator",
    "SmoothedMLEEstimator",
    "KSGEstimator",
    "MixedKSGEstimator",
    "DCKSGEstimator",
    "select_estimator",
    "estimate_mi",
    # sketches
    "Sketch",
    "SketchSide",
    "SketchBuilder",
    "TupleSketchBuilder",
    "TwoLevelSketchBuilder",
    "PrioritySketchBuilder",
    "IndependentSketchBuilder",
    "CorrelationSketchBuilder",
    "KMVSketch",
    "build_sketch",
    "join_sketches",
    "estimate_mi_from_sketches",
    "available_methods",
    # synthetic
    "KeyGeneration",
    "SyntheticDataset",
    "generate_dataset",
    "generate_trinomial_dataset",
    "generate_cdunif_dataset",
    # discovery
    "SketchIndex",
    "AugmentationQuery",
    "AugmentationResult",
    # engine
    "EngineConfig",
    "SketchEngine",
    "SketchRequest",
    "BatchEstimate",
    "get_default_engine",
    "set_default_engine",
    "configure_default_engine",
]
