"""repro: join-free mutual-information estimation between attributes across tables.

A faithful, from-scratch reproduction of

    A. Santos, F. Korn, J. Freire.
    "Efficiently Estimating Mutual Information Between Attributes Across
    Tables", ICDE 2024.

The library answers the question the paper poses: *given a base table and a
candidate external table, how informative would a feature derived from the
candidate be about a target column of the base table — without materializing
the join between them?*  It provides:

* a relational substrate (tables, typed columns, joins, featurization),
* the full family of MI estimators the paper evaluates (MLE, smoothed MLE,
  KSG, Mixed-KSG, DC-KSG),
* the sketching methods TUPSK (proposed), LV2SK, PRISK, INDSK and CSK,
* the synthetic benchmark with analytically known MI (Trinomial, CDUnif,
  KeyInd/KeyDep decompositions),
* a simulated open-data repository and a data-discovery layer that ranks
  candidate augmentations by sketch-estimated MI,
* an evaluation harness that regenerates every table and figure of the
  paper's experimental section.

Quickstart
----------
>>> from repro import Table, build_sketch, estimate_mi_from_sketches, SketchSide
>>> train = Table.from_dict({"zip": ["a", "a", "b", "c"], "trips": [5, 7, 1, 3]})
>>> weather = Table.from_dict({"zip": ["a", "b", "b", "c"], "temp": [20.0, 9.0, 11.0, 15.0]})
>>> s_train = build_sketch(train, "zip", "trips", side=SketchSide.BASE, capacity=128)
>>> s_cand = build_sketch(weather, "zip", "temp", side=SketchSide.CANDIDATE, capacity=128)
>>> estimate = estimate_mi_from_sketches(s_train, s_cand)
>>> estimate.mi >= 0.0
True
"""

from repro.exceptions import (
    ReproError,
    SchemaError,
    ColumnNotFoundError,
    TypeInferenceError,
    AggregationError,
    JoinError,
    SketchError,
    IncompatibleSketchError,
    EstimationError,
    InsufficientSamplesError,
    SyntheticDataError,
    DiscoveryError,
)
from repro.relational import (
    Column,
    DType,
    Table,
    AggregateFunction,
    featurize,
    augment,
    inner_join,
    left_outer_join,
    read_csv,
    write_csv,
)
from repro.estimators import (
    MIEstimator,
    MLEEstimator,
    SmoothedMLEEstimator,
    KSGEstimator,
    MixedKSGEstimator,
    DCKSGEstimator,
    select_estimator,
    estimate_mi,
)
from repro.sketches import (
    Sketch,
    SketchSide,
    SketchBuilder,
    TupleSketchBuilder,
    TwoLevelSketchBuilder,
    PrioritySketchBuilder,
    IndependentSketchBuilder,
    CorrelationSketchBuilder,
    KMVSketch,
    build_sketch,
    join_sketches,
    estimate_mi_from_sketches,
    available_methods,
)
from repro.synthetic import (
    KeyGeneration,
    SyntheticDataset,
    generate_dataset,
    generate_trinomial_dataset,
    generate_cdunif_dataset,
)
from repro.discovery import SketchIndex, AugmentationQuery, AugmentationResult

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "SchemaError",
    "ColumnNotFoundError",
    "TypeInferenceError",
    "AggregationError",
    "JoinError",
    "SketchError",
    "IncompatibleSketchError",
    "EstimationError",
    "InsufficientSamplesError",
    "SyntheticDataError",
    "DiscoveryError",
    # relational
    "Column",
    "DType",
    "Table",
    "AggregateFunction",
    "featurize",
    "augment",
    "inner_join",
    "left_outer_join",
    "read_csv",
    "write_csv",
    # estimators
    "MIEstimator",
    "MLEEstimator",
    "SmoothedMLEEstimator",
    "KSGEstimator",
    "MixedKSGEstimator",
    "DCKSGEstimator",
    "select_estimator",
    "estimate_mi",
    # sketches
    "Sketch",
    "SketchSide",
    "SketchBuilder",
    "TupleSketchBuilder",
    "TwoLevelSketchBuilder",
    "PrioritySketchBuilder",
    "IndependentSketchBuilder",
    "CorrelationSketchBuilder",
    "KMVSketch",
    "build_sketch",
    "join_sketches",
    "estimate_mi_from_sketches",
    "available_methods",
    # synthetic
    "KeyGeneration",
    "SyntheticDataset",
    "generate_dataset",
    "generate_trinomial_dataset",
    "generate_cdunif_dataset",
    # discovery
    "SketchIndex",
    "AugmentationQuery",
    "AugmentationResult",
]
