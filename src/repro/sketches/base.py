"""Sketch data model and builder interface.

A :class:`Sketch` summarizes one (join-key column, value column) pair of a
table as a bounded set of ``(hashed key, value)`` tuples, exactly as in
Section IV of the paper ("the sketch S_X is composed of a set of tuples
⟨h(k), x_k⟩").  Sketches come in two flavours:

* the **base** (left / ``T_train``) side, where repeated join keys must be
  *sampled* so the sketch reflects the key-frequency distribution of the
  table, and
* the **candidate** (right / ``T_cand``) side, where repeated join keys are
  *aggregated* with a featurization function so the sketch represents the
  (never materialized) augmentation table ``T_aug``.

Concrete builders implement the two corresponding methods; they differ only
in the strategy used to select which tuples enter the sketch.
"""

from __future__ import annotations

import abc
import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional, Sequence

import numpy as np

from repro.exceptions import SketchError
from repro.hashing.unit import KeyHasher
from repro.relational.aggregate import AggregateFunction, get_aggregate, group_by_aggregate, output_dtype
from repro.relational.dtypes import DType, infer_column_dtype
from repro.relational.table import Table

__all__ = [
    "SketchSide",
    "Sketch",
    "SketchBuilder",
    "KeyGroups",
    "get_builder",
    "build_sketch",
    "available_methods",
]


class SketchSide(str, enum.Enum):
    """Which side of the augmentation join a sketch summarizes.

    Members subclass :class:`str`, so they compare equal to (and serialize
    as) the plain strings ``"base"`` / ``"candidate"`` used by existing JSON
    sketch files and string-passing callers.
    """

    BASE = "base"
    CANDIDATE = "candidate"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def coerce(cls, value: "SketchSide | str") -> "SketchSide":
        """Normalize a side given as an enum member or plain string."""
        try:
            return cls(value)
        except ValueError:
            raise SketchError(f"unknown sketch side {value!r}") from None


@dataclass
class Sketch:
    """A bounded sample of ``(hashed key, value)`` tuples for one column pair.

    Attributes
    ----------
    method:
        Name of the sketching method that built this sketch (e.g. ``"TUPSK"``).
    side:
        ``SketchSide.BASE`` or ``SketchSide.CANDIDATE``.
    seed:
        Hash seed; only sketches with equal seeds can be joined.
    capacity:
        The single size parameter ``n`` of the method.
    key_ids:
        Hashed join-key values ``h(k)`` of the retained tuples.
    values:
        Retained column values aligned with ``key_ids``.
    value_dtype:
        Logical type of the value column (after aggregation, for the
        candidate side) — drives estimator selection downstream.
    table_rows:
        Number of rows of the sketched table, *including* rows whose join
        key is missing.  (NULL-key rows never enter the sketch, but they are
        part of the table's size; see ``distinct_keys`` for the join-side
        statistic.)
    distinct_keys:
        Number of distinct non-missing join-key values in the sketched table.
    key_column / value_column:
        Column names, for provenance.
    table_name:
        Name of the sketched table, for provenance.
    aggregate:
        Name of the featurization function used (candidate side only).
    """

    method: str
    side: "SketchSide | str"
    seed: int
    capacity: int
    key_ids: list[int]
    values: list[Any]
    value_dtype: DType
    table_rows: int
    distinct_keys: int
    key_column: str = ""
    value_column: str = ""
    table_name: str = ""
    aggregate: Optional[str] = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.side = SketchSide.coerce(self.side)
        if len(self.key_ids) != len(self.values):
            raise SketchError("key_ids and values must be aligned")

    def __len__(self) -> int:
        return len(self.key_ids)

    @property
    def storage_size(self) -> int:
        """Number of stored tuples (the quantity bounded by the method)."""
        return len(self.key_ids)

    def key_id_set(self) -> set[int]:
        """Distinct hashed keys present in the sketch."""
        return set(self.key_ids)

    def items(self) -> list[tuple[int, Any]]:
        """The stored ``(hashed key, value)`` tuples."""
        return list(zip(self.key_ids, self.values))

    def summary(self) -> dict[str, Any]:
        """Small dict used by experiment reports and the discovery index."""
        return {
            "method": self.method,
            "side": self.side,
            "size": len(self),
            "capacity": self.capacity,
            "table": self.table_name,
            "key_column": self.key_column,
            "value_column": self.value_column,
            "value_dtype": self.value_dtype.value,
            "aggregate": self.aggregate,
        }


class KeyGroups:
    """Shared per-``(table, join-key)`` state for sketching many value columns.

    Indexing a table produces one candidate sketch per value column, but all
    of those sketches share the same join-key column.  The work that depends
    only on the key column — dropping NULL-key rows, grouping row positions
    by key, counting rows and distinct keys, ranking/selecting candidate
    keys, and hashing the selected keys — is therefore identical across the
    whole column family.  A ``KeyGroups`` computes that state once and lets
    :meth:`SketchBuilder.sketch_candidate` reuse it, turning an
    ``O(columns × rows)`` rebuild into ``O(rows + columns × selected_rows)``.

    The fast path is *exact*: sketches built through a ``KeyGroups`` are
    equal, tuple for tuple, to sketches built by the plain per-column path.
    """

    def __init__(self, table: Table, key_column: str):
        self.table = table
        self.key_column = key_column
        grouped: defaultdict[Hashable, list[int]] = defaultdict(list)
        retained = 0
        for row, key in enumerate(table.column(key_column).values):
            if key is None:
                continue
            retained += 1
            grouped[key].append(row)
        #: Retained (non-NULL-key) row positions grouped by key, with keys in
        #: first-appearance order — the same order ``group_by_aggregate``
        #: produces, so selection tie-breaking matches the per-column path.
        self.rows_by_key: dict[Hashable, list[int]] = dict(grouped)
        self.retained_rows = retained
        self.total_rows = table.num_rows
        self.distinct_keys = len(self.rows_by_key)
        # (method, capacity, seed) -> selected candidate keys (or None when
        # the method's selection inspects values and cannot be shared).
        self._selection_cache: dict[tuple[str, int, int], Optional[list[Hashable]]] = {}
        # seed -> {key: h(key)}; only selected keys are ever hashed.
        self._key_id_cache: dict[int, dict[Hashable, int]] = {}

    def candidate_selection(self, builder: "SketchBuilder") -> Optional[list[Hashable]]:
        """The candidate keys ``builder`` would retain, cached per config."""
        cache_key = (builder.method, builder.capacity, builder.seed)
        if cache_key not in self._selection_cache:
            self._selection_cache[cache_key] = builder._candidate_key_order(
                list(self.rows_by_key)
            )
        return self._selection_cache[cache_key]

    def key_ids(
        self,
        keys: Sequence[Hashable],
        hasher: KeyHasher,
        *,
        vectorized: bool = True,
    ) -> list[int]:
        """Hashed identifiers of ``keys``, memoized across the column family.

        Uncached keys are hashed in one batched pass when ``vectorized``
        (bit-identical to hashing them one by one).
        """
        cache = self._key_id_cache.setdefault(hasher.seed, {})
        missing = [key for key in dict.fromkeys(keys) if key not in cache]
        if missing:
            if vectorized:
                for key, key_id in zip(missing, hasher.key_id_many(missing)):
                    cache[key] = int(key_id)
            else:
                for key in missing:
                    cache[key] = hasher.key_id(key)
        return [cache[key] for key in keys]


class SketchBuilder(abc.ABC):
    """Base class for sketching methods.

    Parameters
    ----------
    capacity:
        Maximum sketch size ``n`` (the method's single parameter).
    seed:
        Hash seed shared by all sketches that are meant to be joined.
    vectorized:
        Use the batched NumPy hashing fast paths (bit-identical to the
        scalar paths; see :mod:`repro.hashing`).  Exists so the scalar
        reference implementation stays exercisable for equivalence tests
        and benchmarks — sketch content never depends on it.
    """

    #: Method name used in registries, reports and sketch provenance.
    method: str = "abstract"

    #: Opt-in flag for the shared :class:`KeyGroups` fast path, which
    #: aggregates the *selected* keys only and therefore requires that
    #: ``_select_candidate`` picks keys independently of the aggregated
    #: values.  Every bundled method qualifies (key hash rank, or a seeded
    #: uniform sample over the key set) and sets this True; the default is
    #: False so an external :class:`SketchBuilder` subclass with
    #: value-dependent selection safely falls back to the per-column path.
    candidate_selection_key_only: bool = False

    def __init__(self, capacity: int = 256, seed: int = 0, vectorized: bool = True):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self.seed = int(seed)
        self.vectorized = bool(vectorized)
        self.hasher = KeyHasher(seed=self.seed)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def sketch_base(self, table: Table, key_column: str, value_column: str) -> Sketch:
        """Sketch the base (``T_train``) side: sample rows, keep repeated keys."""
        keys = table.column(key_column).values
        values = table.column(value_column).values
        total_rows = len(keys)
        keys, values = _drop_missing_keys(keys, values)
        if not keys:
            raise SketchError(
                f"cannot sketch {table.name or 'table'}: join key {key_column!r} has no values"
            )
        key_list, value_list = self._select_base(keys, values)
        return Sketch(
            method=self.method,
            side=SketchSide.BASE,
            seed=self.seed,
            capacity=self.capacity,
            key_ids=self._key_ids(key_list),
            values=value_list,
            value_dtype=table.column(value_column).dtype,
            table_rows=total_rows,
            distinct_keys=len(set(keys)),
            key_column=key_column,
            value_column=value_column,
            table_name=table.name,
        )

    def sketch_candidate(
        self,
        table: Table,
        key_column: str,
        value_column: str,
        agg: "str | AggregateFunction" = AggregateFunction.AVG,
        *,
        key_groups: Optional[KeyGroups] = None,
    ) -> Sketch:
        """Sketch the candidate (``T_cand``) side: aggregate repeated keys.

        The aggregation is performed on the fly, so the intermediate
        augmentation table ``T_aug`` is never materialized.  Passing a
        :class:`KeyGroups` built for ``(table, key_column)`` reuses the
        key-side work across the table's value columns; the resulting sketch
        is identical to the one built without it.
        """
        agg = get_aggregate(agg)
        if (
            key_groups is None
            and self.vectorized
            and self.candidate_selection_key_only
        ):
            # The vectorized fast path routes through the grouped
            # implementation even for a single column: candidate keys are
            # selected *before* aggregation, so only the selected keys' rows
            # are ever aggregated.  The sketch is identical either way.
            key_groups = KeyGroups(table, key_column)
        if key_groups is not None:
            sketch = self._sketch_candidate_grouped(
                table, key_column, value_column, agg, key_groups
            )
            if sketch is not None:
                return sketch
        keys = table.column(key_column).values
        values = table.column(value_column).values
        total_rows = len(keys)
        keys, values = _drop_missing_keys(keys, values)
        if not keys:
            raise SketchError(
                f"cannot sketch {table.name or 'table'}: join key {key_column!r} has no values"
            )
        aggregated = self._candidate_key_values(keys, values, agg)
        key_list, value_list = self._select_candidate(aggregated)
        input_dtype = table.column(value_column).dtype
        return Sketch(
            method=self.method,
            side=SketchSide.CANDIDATE,
            seed=self.seed,
            capacity=self.capacity,
            key_ids=self._key_ids(key_list),
            values=value_list,
            value_dtype=self._candidate_value_dtype(agg, input_dtype, value_list),
            table_rows=total_rows,
            distinct_keys=len(set(keys)),
            key_column=key_column,
            value_column=value_column,
            table_name=table.name,
            aggregate=agg.value,
        )

    def _sketch_candidate_grouped(
        self,
        table: Table,
        key_column: str,
        value_column: str,
        agg: AggregateFunction,
        key_groups: KeyGroups,
    ) -> Optional[Sketch]:
        """Candidate sketch via shared key-side state; None → use slow path."""
        if key_groups.table is not table or key_groups.key_column != key_column:
            raise SketchError(
                "key_groups was built for a different table or join-key column"
            )
        if key_groups.retained_rows == 0:
            raise SketchError(
                f"cannot sketch {table.name or 'table'}: join key {key_column!r} has no values"
            )
        selected = key_groups.candidate_selection(self)
        if selected is None:
            return None
        values = table.column(value_column).values
        # Aggregate only the rows of the selected keys, keeping each key's
        # rows in table order (FIRST/MODE tie-breaking must not change).
        sub_keys: list[Hashable] = []
        sub_values: list[Any] = []
        for key in selected:
            for row in key_groups.rows_by_key[key]:
                sub_keys.append(key)
                sub_values.append(values[row])
        aggregated = self._candidate_key_values(sub_keys, sub_values, agg)
        value_list = [aggregated[key] for key in selected]
        input_dtype = table.column(value_column).dtype
        return Sketch(
            method=self.method,
            side=SketchSide.CANDIDATE,
            seed=self.seed,
            capacity=self.capacity,
            key_ids=key_groups.key_ids(
                selected, self.hasher, vectorized=self.vectorized
            ),
            values=value_list,
            value_dtype=self._candidate_value_dtype(agg, input_dtype, value_list),
            table_rows=key_groups.total_rows,
            distinct_keys=key_groups.distinct_keys,
            key_column=key_column,
            value_column=value_column,
            table_name=table.name,
            aggregate=agg.value,
        )

    # ------------------------------------------------------------------ #
    # Hooks implemented by concrete methods
    # ------------------------------------------------------------------ #
    def _candidate_key_order(
        self, keys: Sequence[Hashable]
    ) -> Optional[list[Hashable]]:
        """The exact keys ``_select_candidate`` would retain, given only keys.

        Used by the :class:`KeyGroups` fast path.  Methods that declare
        ``candidate_selection_key_only`` select candidate keys independently
        of the aggregated values (hash rank for the coordinated methods, a
        seeded uniform sample for INDSK), so the default implementation
        probes ``_select_candidate`` with a value-free mapping over the same
        keys in the same order.  For every other method this returns None
        and the caller falls back to the per-column path.
        """
        if not self.candidate_selection_key_only:
            return None
        selected, _ = self._select_candidate(dict.fromkeys(keys))
        return selected

    @abc.abstractmethod
    def _select_base(
        self, keys: list[Hashable], values: list[Any]
    ) -> tuple[list[Hashable], list[Any]]:
        """Select the (key, value) rows of the base table to retain."""

    @abc.abstractmethod
    def _select_candidate(
        self, aggregated: dict[Hashable, Any]
    ) -> tuple[list[Hashable], list[Any]]:
        """Select the (key, aggregated value) entries of ``T_aug`` to retain."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _key_ids(self, keys: Sequence[Hashable]) -> list[int]:
        """Hashed identifiers of ``keys``, batched when vectorized."""
        if self.vectorized and len(keys) > 1:
            return [int(key_id) for key_id in self.hasher.key_id_many(keys)]
        return [self.hasher.key_id(key) for key in keys]

    def _units(self, keys: Sequence[Hashable]) -> np.ndarray:
        """``h_u(h(key))`` per key as a float64 array, batched when vectorized."""
        if self.vectorized and len(keys) > 1:
            return self.hasher.unit_many(keys)
        return np.array(
            [self.hasher.unit(key) for key in keys], dtype=np.float64
        )

    def _rank_keys_by_unit(self, keys: Sequence[Hashable]) -> list[Hashable]:
        """``keys`` sorted ascending by unit hash, ties in input order.

        The scalar path's ``sorted(keys, key=hasher.unit)`` and the
        vectorized stable argsort implement the same ordering, so both
        paths select identical keys even through hash-value ties.
        """
        keys = list(keys)
        if self.vectorized and len(keys) > 1:
            order = np.argsort(self.hasher.unit_many(keys), kind="stable")
            return [keys[int(position)] for position in order]
        return sorted(keys, key=self.hasher.unit)

    def _candidate_key_values(
        self,
        keys: list[Hashable],
        values: list[Any],
        agg: AggregateFunction,
    ) -> dict[Hashable, Any]:
        """Aggregate candidate values per key (the sketch-side ``GROUP BY``)."""
        return group_by_aggregate(keys, values, agg)

    @staticmethod
    def _candidate_value_dtype(
        agg: AggregateFunction, input_dtype: DType, values: Sequence[Any]
    ) -> DType:
        declared = output_dtype(agg, input_dtype)
        if declared is DType.MISSING:
            return infer_column_dtype(values)
        return declared

    def __repr__(self) -> str:
        return f"{type(self).__name__}(capacity={self.capacity}, seed={self.seed})"


def _drop_missing_keys(
    keys: Sequence[Hashable], values: Sequence[Any]
) -> tuple[list[Hashable], list[Any]]:
    """Remove rows whose join key is missing (NULL keys never join)."""
    if None not in keys:
        return list(keys), list(values)
    kept_keys: list[Hashable] = []
    kept_values: list[Any] = []
    for key, value in zip(keys, values):
        if key is None:
            continue
        kept_keys.append(key)
        kept_values.append(value)
    return kept_keys, kept_values


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: dict[str, type[SketchBuilder]] = {}


def register_builder(cls: type[SketchBuilder]) -> type[SketchBuilder]:
    """Class decorator registering a builder under its ``method`` name."""
    _REGISTRY[cls.method.upper()] = cls
    return cls


def available_methods() -> tuple[str, ...]:
    """Names of all registered sketching methods."""
    return tuple(sorted(_REGISTRY))


def get_builder(
    method: str, capacity: int = 256, seed: int = 0, vectorized: bool = True
) -> SketchBuilder:
    """Instantiate a registered sketch builder by name (case-insensitive)."""
    # Import concrete builders lazily to avoid import cycles when this module
    # is imported directly.
    from repro.sketches import csk, indsk, lv2sk, prisk, tupsk  # noqa: F401

    try:
        cls = _REGISTRY[method.upper()]
    except KeyError:
        raise SketchError(
            f"unknown sketching method {method!r}; available: {', '.join(available_methods())}"
        ) from None
    return cls(capacity=capacity, seed=seed, vectorized=vectorized)


def build_sketch(
    table: Table,
    key_column: str,
    value_column: str,
    *,
    method: str = "TUPSK",
    side: "SketchSide | str" = SketchSide.BASE,
    capacity: int = 256,
    seed: int = 0,
    agg: "str | AggregateFunction" = AggregateFunction.AVG,
) -> Sketch:
    """One-call convenience wrapper over the engine layer.

    Delegates to a shared :class:`~repro.engine.SketchEngine` for the given
    ``(method, capacity, seed)`` configuration; prefer using an engine
    directly for batch work or when the same configuration is reused.
    """
    # Imported lazily: the engine layer builds on this module.
    from repro.engine.default import engine_for

    engine = engine_for(method=method, capacity=capacity, seed=seed)
    side = SketchSide.coerce(side)
    if side is SketchSide.BASE:
        # use_cache=False keeps this wrapper stateless like the original
        # function: a fresh sketch every call, and no table pinned in a
        # process-global cache.
        return engine.sketch_base(table, key_column, value_column, use_cache=False)
    return engine.sketch_candidate(table, key_column, value_column, agg=agg)
