"""Sampling primitives used by the sketch builders.

These are the standard building blocks referenced in Section IV of the paper:

* reservoir sampling (Vitter, 1985) — fixed-size uniform sample from a stream,
* Bernoulli sampling — independent per-item coin flips,
* priority sampling (Duffield, Lund, Thorup, 2007) — weighted fixed-size
  sampling used by the PRISK baseline,
* uniform sampling without replacement — used by the independent baseline.

All functions take an explicit random source so sketches remain reproducible.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

import numpy as np

from repro.util.rng import RandomState, ensure_rng

__all__ = [
    "reservoir_sample",
    "bernoulli_sample",
    "priority_sample",
    "uniform_sample_without_replacement",
]

T = TypeVar("T")


def reservoir_sample(
    items: Iterable[T], capacity: int, random_state: RandomState = None
) -> list[T]:
    """Uniform sample of up to ``capacity`` items from a stream (Vitter's algorithm R).

    The order of the returned items is the reservoir order, not the stream
    order; callers that need determinism independent of ordering should sort.
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    rng = ensure_rng(random_state)
    reservoir: list[T] = []
    for index, item in enumerate(items):
        if index < capacity:
            reservoir.append(item)
            continue
        slot = int(rng.integers(0, index + 1))
        if slot < capacity:
            reservoir[slot] = item
    return reservoir


def bernoulli_sample(
    items: Sequence[T], rate: float, random_state: RandomState = None
) -> list[T]:
    """Independent Bernoulli sample: keep each item with probability ``rate``."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must lie in [0, 1]")
    rng = ensure_rng(random_state)
    if rate == 1.0:
        return list(items)
    if rate == 0.0:
        return []
    keep = rng.random(len(items)) < rate
    return [item for item, kept in zip(items, keep) if kept]


def priority_sample(
    items: Sequence[T],
    weights: Sequence[float],
    capacity: int,
    random_state: RandomState = None,
) -> list[T]:
    """Priority sampling of ``capacity`` items proportional(-ish) to ``weights``.

    Each item gets priority ``w_i / u_i`` with ``u_i`` uniform on (0, 1]; the
    ``capacity`` items with the largest priorities are kept.  This is the
    weighted first-level sampler of the PRISK baseline.
    """
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    if any(weight <= 0 for weight in weights):
        raise ValueError("weights must be strictly positive")
    if capacity >= len(items):
        return list(items)
    rng = ensure_rng(random_state)
    uniforms = rng.random(len(items))
    uniforms = np.where(uniforms == 0.0, np.finfo(np.float64).tiny, uniforms)
    priorities = np.asarray(weights, dtype=np.float64) / uniforms
    top = np.argpartition(-priorities, capacity - 1)[:capacity]
    return [items[int(index)] for index in sorted(top)]


def uniform_sample_without_replacement(
    items: Sequence[T], capacity: int, random_state: RandomState = None
) -> list[T]:
    """Uniform sample of ``min(capacity, len(items))`` items without replacement."""
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    rng = ensure_rng(random_state)
    count = min(capacity, len(items))
    if count == len(items):
        return list(items)
    indices = rng.choice(len(items), size=count, replace=False)
    return [items[int(index)] for index in sorted(indices)]
