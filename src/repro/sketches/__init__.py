"""Sketches for join-free mutual-information estimation.

This package implements the paper's primary contribution (Section IV): small,
fixed-size sketches built independently per table that, when joined on hashed
keys, recover a useful sample of the (never materialized) left join between a
base table and an aggregated candidate table.  The recovered sample is handed
to a standard MI estimator.

Sketching methods:

* :class:`TupleSketchBuilder` (**TUPSK**) — the proposed tuple-based
  coordinated sampling: uniform inclusion probability per row, robust to
  join-key skew and key/target dependence.
* :class:`TwoLevelSketchBuilder` (**LV2SK**) — two-level sampling baseline:
  minwise key-level coordination plus per-key Bernoulli thinning.
* :class:`PrioritySketchBuilder` (**PRISK**) — LV2SK with frequency-weighted
  (priority) sampling in the first level.
* :class:`IndependentSketchBuilder` (**INDSK**) — independent uniform row
  sampling, the no-coordination baseline.
* :class:`CorrelationSketchBuilder` (**CSK**) — a straightforward extension
  of Correlation Sketches (Santos et al., 2021) that keeps the first value
  seen per key.
"""

from repro.sketches.base import (
    Sketch,
    SketchBuilder,
    SketchSide,
    build_sketch,
    get_builder,
    available_methods,
)
from repro.sketches.sampling import (
    reservoir_sample,
    bernoulli_sample,
    priority_sample,
    uniform_sample_without_replacement,
)
from repro.sketches.kmv import KMVSketch
from repro.sketches.tupsk import TupleSketchBuilder
from repro.sketches.lv2sk import TwoLevelSketchBuilder
from repro.sketches.prisk import PrioritySketchBuilder
from repro.sketches.indsk import IndependentSketchBuilder
from repro.sketches.csk import CorrelationSketchBuilder
from repro.sketches.join import SketchJoinResult, join_sketches
from repro.sketches.estimate import SketchMIEstimate, estimate_mi_from_sketches
from repro.sketches.serialization import (
    save_sketch,
    load_sketch,
    sketch_to_dict,
    sketch_from_dict,
)
__all__ = [
    "Sketch",
    "SketchBuilder",
    "SketchSide",
    "build_sketch",
    "get_builder",
    "available_methods",
    "reservoir_sample",
    "bernoulli_sample",
    "priority_sample",
    "uniform_sample_without_replacement",
    "KMVSketch",
    "TupleSketchBuilder",
    "TwoLevelSketchBuilder",
    "PrioritySketchBuilder",
    "IndependentSketchBuilder",
    "CorrelationSketchBuilder",
    "SketchJoinResult",
    "join_sketches",
    "SketchMIEstimate",
    "estimate_mi_from_sketches",
    "save_sketch",
    "load_sketch",
    "sketch_to_dict",
    "sketch_from_dict",
    "StreamingBaseSketcher",
    "StreamingCandidateSketcher",
]

#: Streaming sketcher names re-exported from :mod:`repro.ingest`.
_STREAMING_EXPORTS = ("StreamingBaseSketcher", "StreamingCandidateSketcher")


def __getattr__(name: str):
    # Resolved lazily (PEP 562): the streaming sketchers live in
    # repro.ingest, which imports this package's submodules — importing it
    # eagerly here would make the two package initializations mutually
    # recursive.
    if name in _STREAMING_EXPORTS:
        from repro.sketches import streaming

        return getattr(streaming, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
