"""PRISK: two-level sampling with priority (weighted) first-level sampling.

A variant of :class:`~repro.sketches.lv2sk.TwoLevelSketchBuilder` evaluated
in the paper (Section V, "Sketching Methods"): the first sampling level picks
keys by *priority sampling* (Duffield et al., 2007) with the key frequency as
the weight, instead of uniformly.  High-frequency keys are therefore more
likely to be represented, at the cost of additional dependence between the
sample and the key distribution.  The second level and the candidate side are
identical to LV2SK, and the paper reports nearly identical accuracy.

To keep the first level coordinated between tables, the uniform variate of
key ``k`` is ``h_u(h(k))`` (shared by construction) rather than a private
random draw; priorities are ``N_k / h_u(h(k))``.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.sketches.base import register_builder
from repro.sketches.lv2sk import TwoLevelSketchBuilder

__all__ = ["PrioritySketchBuilder"]


@register_builder
class PrioritySketchBuilder(TwoLevelSketchBuilder):
    """Two-level sketch with frequency-weighted (priority) key sampling (PRISK)."""

    method = "PRISK"

    def _first_level_keys(self, key_frequencies: dict[Hashable, int]) -> list[Hashable]:
        keys = list(key_frequencies)
        if len(keys) <= self.capacity:
            return keys
        units = self._units(keys)
        units = np.where(units == 0.0, np.finfo(np.float64).tiny, units)
        weights = np.array([key_frequencies[key] for key in keys], dtype=np.float64)
        priorities = weights / units
        top = np.argpartition(-priorities, self.capacity - 1)[: self.capacity]
        return [keys[int(index)] for index in top]
