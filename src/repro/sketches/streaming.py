"""One-pass (streaming) construction of TUPSK sketches.

Section IV-A notes that the sketches "can be done in a single pass" over the
table; this module provides that interface for the proposed TUPSK method so
sketches can be built from sources that do not fit in memory (database
cursors, CSV readers, message streams):

* :class:`StreamingBaseSketcher` — consumes ``(key, value)`` rows of the base
  table; memory is ``O(n + distinct keys seen)`` (the per-key occurrence
  counters are the only state besides the bounded heap).
* :class:`StreamingCandidateSketcher` — consumes ``(key, value)`` rows of a
  candidate table and maintains streaming aggregate state per key
  (``O(distinct keys)`` memory), then keeps the ``n`` minimum-hash keys.

Both produce exactly the same :class:`~repro.sketches.base.Sketch` a batch
:class:`~repro.sketches.tupsk.TupleSketchBuilder` would produce on the same
rows, which is asserted by the test suite.
"""

from __future__ import annotations

import heapq
from typing import Any, Hashable, Iterable, Optional

from repro.exceptions import SketchError
from repro.hashing.unit import KeyHasher
from repro.relational.aggregate import AggregateFunction, aggregate_values, get_aggregate, output_dtype
from repro.relational.dtypes import DType, infer_column_dtype, infer_dtype
from repro.sketches.base import Sketch, SketchSide

__all__ = ["StreamingBaseSketcher", "StreamingCandidateSketcher"]


class StreamingBaseSketcher:
    """Build a TUPSK base-side sketch from a stream of ``(key, value)`` rows.

    Parameters
    ----------
    capacity:
        Maximum sketch size ``n``.
    seed:
        Hash seed (must match the candidate sketches it will be joined with).
    """

    def __init__(self, capacity: int = 256, seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self.seed = int(seed)
        self._hasher = KeyHasher(seed=self.seed)
        self._heap: list[tuple[float, int, Hashable, Any]] = []  # max-heap by -unit
        self._occurrences: dict[Hashable, int] = {}
        self._rows_seen = 0
        self._row_counter = 0

    def add(self, key: Hashable, value: Any) -> None:
        """Consume one row.  Rows with a missing key are ignored."""
        if key is None:
            return
        self._rows_seen += 1
        occurrence = self._occurrences.get(key, 0) + 1
        self._occurrences[key] = occurrence
        unit = self._hasher.tuple_unit(key, occurrence)
        entry = (-unit, self._row_counter, key, value)
        self._row_counter += 1
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
        elif unit < -self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)

    def extend(self, rows: Iterable[tuple[Hashable, Any]]) -> "StreamingBaseSketcher":
        """Consume many rows; returns ``self`` for chaining."""
        for key, value in rows:
            self.add(key, value)
        return self

    @property
    def rows_seen(self) -> int:
        """Number of non-null-key rows consumed so far."""
        return self._rows_seen

    def finalize(
        self,
        *,
        key_column: str = "",
        value_column: str = "",
        table_name: str = "",
        value_dtype: Optional[DType] = None,
    ) -> Sketch:
        """Produce the sketch for the rows consumed so far.

        The sketcher can keep consuming rows afterwards; ``finalize`` simply
        snapshots the current state.
        """
        if self._rows_seen == 0:
            raise SketchError("cannot finalize a streaming sketch with no rows")
        # Restore stream order so the result matches the batch builder.
        ordered = sorted(self._heap, key=lambda entry: entry[1])
        keys = [entry[2] for entry in ordered]
        values = [entry[3] for entry in ordered]
        if value_dtype is None:
            value_dtype = infer_column_dtype(values)
        return Sketch(
            method="TUPSK",
            side=SketchSide.BASE,
            seed=self.seed,
            capacity=self.capacity,
            key_ids=[self._hasher.key_id(key) for key in keys],
            values=values,
            value_dtype=value_dtype,
            table_rows=self._rows_seen,
            distinct_keys=len(self._occurrences),
            key_column=key_column,
            value_column=value_column,
            table_name=table_name,
        )


class StreamingCandidateSketcher:
    """Build a TUPSK candidate-side sketch from a stream of ``(key, value)`` rows.

    Values sharing a key are aggregated incrementally; ``AVG``, ``SUM``,
    ``COUNT``, ``MIN`` and ``MAX`` use constant per-key state, while ``MODE``,
    ``MEDIAN`` and ``FIRST`` retain the per-key value lists (the same memory
    the batch builder needs).
    """

    _CONSTANT_STATE = {
        AggregateFunction.AVG,
        AggregateFunction.SUM,
        AggregateFunction.COUNT,
        AggregateFunction.MIN,
        AggregateFunction.MAX,
        AggregateFunction.FIRST,
    }

    def __init__(
        self,
        capacity: int = 256,
        seed: int = 0,
        agg: "str | AggregateFunction" = AggregateFunction.AVG,
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self.seed = int(seed)
        self.agg = get_aggregate(agg)
        self._hasher = KeyHasher(seed=self.seed)
        self._state: dict[Hashable, Any] = {}
        self._rows_seen = 0
        self._input_dtype: DType = DType.MISSING

    # ------------------------------------------------------------------ #
    # Incremental aggregation
    # ------------------------------------------------------------------ #
    def _update_constant_state(self, key: Hashable, value: Any) -> None:
        agg = self.agg
        state = self._state.get(key)
        if agg is AggregateFunction.COUNT:
            self._state[key] = (state or 0) + (0 if value is None else 1)
            return
        if value is None:
            if state is None and key not in self._state:
                self._state[key] = None
            return
        if agg is AggregateFunction.AVG:
            total, count = state if state else (0.0, 0)
            self._state[key] = (total + float(value), count + 1)
        elif agg is AggregateFunction.SUM:
            self._state[key] = value if state is None else state + value
        elif agg is AggregateFunction.MIN:
            self._state[key] = value if state is None else min(state, value)
        elif agg is AggregateFunction.MAX:
            self._state[key] = value if state is None else max(state, value)
        elif agg is AggregateFunction.FIRST:
            if key not in self._state or self._state[key] is None:
                self._state[key] = value

    def add(self, key: Hashable, value: Any) -> None:
        """Consume one row.  Rows with a missing key are ignored."""
        if key is None:
            return
        self._rows_seen += 1
        if value is not None and self._input_dtype is DType.MISSING:
            self._input_dtype = infer_dtype(value)
        if self.agg in self._CONSTANT_STATE:
            self._update_constant_state(key, value)
        else:
            self._state.setdefault(key, []).append(value)

    def extend(self, rows: Iterable[tuple[Hashable, Any]]) -> "StreamingCandidateSketcher":
        """Consume many rows; returns ``self`` for chaining."""
        for key, value in rows:
            self.add(key, value)
        return self

    @property
    def rows_seen(self) -> int:
        """Number of non-null-key rows consumed so far."""
        return self._rows_seen

    def _final_value(self, state: Any) -> Any:
        agg = self.agg
        if agg is AggregateFunction.AVG:
            if state is None:
                return None
            total, count = state
            return total / count if count else None
        if agg in self._CONSTANT_STATE:
            return state
        return aggregate_values(state, agg)

    def finalize(
        self,
        *,
        key_column: str = "",
        value_column: str = "",
        table_name: str = "",
    ) -> Sketch:
        """Produce the candidate-side sketch for the rows consumed so far."""
        if self._rows_seen == 0:
            raise SketchError("cannot finalize a streaming sketch with no rows")
        ranked = sorted(self._state, key=lambda key: self._hasher.tuple_unit(key, 1))
        selected = ranked[: self.capacity]
        values = [self._final_value(self._state[key]) for key in selected]
        declared = output_dtype(self.agg, self._input_dtype)
        if declared is DType.MISSING:
            declared = infer_column_dtype(values)
        return Sketch(
            method="TUPSK",
            side=SketchSide.CANDIDATE,
            seed=self.seed,
            capacity=self.capacity,
            key_ids=[self._hasher.key_id(key) for key in selected],
            values=values,
            value_dtype=declared,
            table_rows=self._rows_seen,
            distinct_keys=len(self._state),
            key_column=key_column,
            value_column=value_column,
            table_name=table_name,
            aggregate=self.agg.value,
        )
