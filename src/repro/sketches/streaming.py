"""One-pass (streaming) construction of TUPSK sketches — compatibility shim.

The streaming sketchers grew from this TUPSK-only module into the
:mod:`repro.ingest` subsystem, which covers every sketching method, chunked
(vectorized) consumption, mergeable partial states and the chunked table
readers.  The two original classes keep their import path here:

* :class:`~repro.ingest.sketchers.StreamingBaseSketcher` — the TUPSK
  base-side streamer (``O(n + distinct keys)`` memory);
* :class:`~repro.ingest.sketchers.StreamingCandidateSketcher` — the
  candidate-side streamer, now parameterized by ``method`` (TUPSK default).

Both produce exactly the same :class:`~repro.sketches.base.Sketch` a batch
builder would produce on the same rows, which is asserted by the test suite.
"""

from __future__ import annotations

from repro.ingest.sketchers import StreamingBaseSketcher, StreamingCandidateSketcher

__all__ = ["StreamingBaseSketcher", "StreamingCandidateSketcher"]
