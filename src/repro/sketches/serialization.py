"""Serialization of sketches to and from JSON documents.

Sketches are built offline and shipped to wherever discovery queries run
(Section IV: "sketches are typically built in an offline preprocessing
stage"), so they need a stable on-disk representation.  The format is a plain
JSON object with a version tag; values keep their Python types (strings,
ints, floats, ``null``), which covers every value type a sketch can store.

Seed/encoding compatibility
---------------------------
Two sketches can only be joined when they agree on *both* the hash seed and
the canonical value-encoding scheme (:data:`HASH_ENCODING_VERSION`).  The
seed is stored per sketch and checked at join time; the encoding version is
a library-wide constant stamped into every serialized sketch, and loading a
sketch persisted under a different encoding is refused — its stored
``h(key)`` identifiers would silently disagree with freshly built sketches
even at equal seeds.  Encoding history:

* **1** — tuple parts joined with a ``b"|"`` separator (ambiguous:
  ``("a|b",)`` and ``("a", "b")`` collided).
* **2** — length-prefixed tuple parts (current).  Sketches and index
  directories persisted under version 1 must be rebuilt from their source
  tables.
"""

from __future__ import annotations

import json
import os
from typing import Any, Union

from repro.exceptions import SketchError
from repro.relational.dtypes import DType
from repro.sketches.base import Sketch

__all__ = ["sketch_to_dict", "sketch_from_dict", "save_sketch", "load_sketch"]

#: Format version written into every serialized sketch.
FORMAT_VERSION = 1

#: Version of the canonical value-encoding scheme feeding the hash (see
#: :func:`repro.hashing.unit.canonical_bytes` and the module docstring).
HASH_ENCODING_VERSION = 2

PathLike = Union[str, os.PathLike]


def sketch_to_dict(sketch: Sketch) -> dict[str, Any]:
    """Convert a sketch into a JSON-serializable dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "hash_encoding": HASH_ENCODING_VERSION,
        "method": sketch.method,
        "side": str(sketch.side),
        "seed": sketch.seed,
        "capacity": sketch.capacity,
        "key_ids": list(sketch.key_ids),
        "values": list(sketch.values),
        "value_dtype": sketch.value_dtype.value,
        "table_rows": sketch.table_rows,
        "distinct_keys": sketch.distinct_keys,
        "key_column": sketch.key_column,
        "value_column": sketch.value_column,
        "table_name": sketch.table_name,
        "aggregate": sketch.aggregate,
        "metadata": dict(sketch.metadata),
    }


def sketch_from_dict(document: dict[str, Any]) -> Sketch:
    """Rebuild a sketch from a dictionary produced by :func:`sketch_to_dict`."""
    try:
        version = document["format_version"]
        if version != FORMAT_VERSION:
            raise SketchError(
                f"unsupported sketch format version {version!r} (expected {FORMAT_VERSION})"
            )
        encoding = document.get("hash_encoding", 1)
        if encoding != HASH_ENCODING_VERSION:
            raise SketchError(
                f"sketch was persisted under hash-encoding version {encoding!r} "
                f"(current: {HASH_ENCODING_VERSION}); its hashed keys are not "
                f"comparable with freshly built sketches — rebuild it from the "
                f"source table"
            )
        return Sketch(
            method=document["method"],
            side=document["side"],
            seed=int(document["seed"]),
            capacity=int(document["capacity"]),
            key_ids=[int(key_id) for key_id in document["key_ids"]],
            values=list(document["values"]),
            value_dtype=DType(document["value_dtype"]),
            table_rows=int(document["table_rows"]),
            distinct_keys=int(document["distinct_keys"]),
            key_column=document.get("key_column", ""),
            value_column=document.get("value_column", ""),
            table_name=document.get("table_name", ""),
            aggregate=document.get("aggregate"),
            metadata=dict(document.get("metadata", {})),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise SketchError(f"malformed sketch document: {exc}") from exc


def save_sketch(sketch: Sketch, path: PathLike) -> None:
    """Write a sketch to ``path`` as a JSON document."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(sketch_to_dict(sketch), handle)


def load_sketch(path: PathLike) -> Sketch:
    """Read a sketch previously written by :func:`save_sketch`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SketchError(f"not a valid sketch file: {path}") from exc
    return sketch_from_dict(document)
