"""K-Minimum-Values (KMV) sketch for distinct counting and containment.

The discovery layer (Section I / VI: finding *joinable* tables before ranking
them by MI) needs cheap estimates of how many distinct join-key values two
columns share.  A KMV sketch keeps the ``k`` smallest unit-interval hashes of
a column's distinct values; two KMV sketches built with the same hash seed
support estimates of distinct counts, overlap and containment (Beyer et al.,
2007), which is how systems such as Correlation Sketches shortlist joinable
candidates.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import numpy as np

from repro.exceptions import SketchError
from repro.hashing.unit import KeyHasher

__all__ = ["KMVSketch"]


class KMVSketch:
    """K-minimum-values sketch over a column's distinct values.

    Parameters
    ----------
    capacity:
        Maximum number of (hash, value) pairs retained.
    seed:
        Hash seed; two sketches can only be compared when built with the
        same seed.
    """

    def __init__(self, capacity: int = 256, seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self.seed = int(seed)
        self._hasher = KeyHasher(seed=seed)
        self._entries: dict[float, Hashable] = {}
        self._threshold = float("inf")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add(self, value: Hashable) -> None:
        """Add one value to the sketch (duplicates are ignored by hashing)."""
        if value is None:
            return
        self._add_hashed(self._hasher.unit(value), value)

    def _add_hashed(self, unit: float, value: Hashable) -> None:
        if unit in self._entries:
            return
        if len(self._entries) < self.capacity:
            self._entries[unit] = value
            if len(self._entries) == self.capacity:
                self._threshold = max(self._entries)
            return
        if unit >= self._threshold:
            return
        self._entries.pop(self._threshold)
        self._entries[unit] = value
        self._threshold = max(self._entries)

    def update(self, values: Iterable[Hashable]) -> "KMVSketch":
        """Add many values; returns ``self`` for chaining."""
        for value in values:
            self.add(value)
        return self

    def update_many(
        self, values: Iterable[Hashable], *, vectorized: bool = True
    ) -> "KMVSketch":
        """Add one chunk of values, hashing it in a single batched pass.

        Bit-identical to calling :meth:`add` per value — this is the chunked
        ingestion path's per-chunk update, keeping the sketch streaming
        while hashing at :meth:`from_values` speed.
        """
        retained = [value for value in values if value is not None]
        if not retained:
            return self
        if not vectorized or len(retained) == 1:
            return self.update(retained)
        for unit, value in zip(self._hasher.unit_many(retained), retained):
            self._add_hashed(float(unit), value)
        return self

    def merge(self, other: "KMVSketch") -> "KMVSketch":
        """Fold another sketch (a partial state over later values) into this one.

        Exact: the result retains the ``capacity`` smallest distinct unit
        hashes of the union, each mapped to the earlier stream's value when
        both partials saw the hash — the same state single-stream ingestion
        reaches.  Requires equal seeds and capacities.
        """
        self._check_comparable(other)
        if other.capacity != self.capacity:
            raise SketchError(
                f"cannot merge KMV sketches with different capacities "
                f"({self.capacity} vs {other.capacity})"
            )
        for unit, value in other._entries.items():
            self._add_hashed(unit, value)
        return self

    @classmethod
    def from_values(
        cls,
        values: Iterable[Hashable],
        capacity: int = 256,
        seed: int = 0,
        *,
        vectorized: bool = True,
    ) -> "KMVSketch":
        """Build a sketch directly from an iterable of values.

        With ``vectorized=True`` (the default) the whole column is hashed in
        one batched array pass and the ``capacity`` smallest distinct unit
        hashes are selected by sorting, instead of feeding a bounded dict one
        value at a time.  The result is identical to the streaming path:
        the retained unit hashes are the ``capacity`` smallest distinct ones,
        and each maps to the first value in stream order that produced it.
        """
        sketch = cls(capacity=capacity, seed=seed)
        if not vectorized:
            return sketch.update(values)
        retained = [value for value in values if value is not None]
        if not retained:
            return sketch
        units = sketch._hasher.unit_many(retained)
        # np.unique returns sorted distinct units with first-occurrence
        # indices — exactly the streaming path's dedup semantics.
        distinct, first_index = np.unique(units, return_index=True)
        sketch._entries = {
            float(unit): retained[int(position)]
            for unit, position in zip(
                distinct[:capacity], first_index[:capacity]
            )
        }
        if len(sketch._entries) == capacity:
            sketch._threshold = max(sketch._entries)
        return sketch

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hashes(self) -> list[float]:
        """Retained unit hashes, sorted ascending."""
        return sorted(self._entries)

    @property
    def values(self) -> set[Hashable]:
        """Retained distinct values."""
        return set(self._entries.values())

    def kth_minimum(self) -> float:
        """The largest retained hash (the sketch's distinct-count statistic)."""
        if not self._entries:
            raise SketchError("KMV sketch is empty")
        return max(self._entries)

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def distinct_count_estimate(self) -> float:
        """Estimate the number of distinct values seen.

        Uses the unbiased KMV estimator ``(k - 1) / kth_minimum`` when the
        sketch is full, and the exact count otherwise.  A full sketch has, by
        construction, seen at least ``capacity`` distinct values, so the
        estimate is floored there (the raw estimator can dip below it for
        unlucky hash layouts and degenerates to 0 when ``capacity`` is 1).
        """
        if len(self._entries) < self.capacity:
            return float(len(self._entries))
        raw_estimate = (self.capacity - 1) / self.kth_minimum()
        return max(raw_estimate, float(self.capacity))

    def _check_comparable(self, other: "KMVSketch") -> None:
        if self.seed != other.seed:
            raise SketchError("KMV sketches built with different seeds cannot be compared")

    def jaccard_estimate(self, other: "KMVSketch") -> float:
        """Estimate the Jaccard similarity of the two underlying value sets."""
        self._check_comparable(other)
        if not self._entries or not other._entries:
            return 0.0
        k = min(self.capacity, len(self._entries) + len(other._entries))
        combined = sorted(set(self._entries) | set(other._entries))[:k]
        if not combined:
            return 0.0
        shared = set(self._entries) & set(other._entries)
        matches = sum(1 for unit in combined if unit in shared)
        return matches / len(combined)

    def overlap_estimate(self, other: "KMVSketch") -> float:
        """Estimate the number of distinct values present in both sets."""
        self._check_comparable(other)
        union_estimate = self._union_distinct_estimate(other)
        return self.jaccard_estimate(other) * union_estimate

    def containment_estimate(self, other: "KMVSketch") -> float:
        """Estimate |self ∩ other| / |self| (how much of ``self`` is joinable)."""
        own = self.distinct_count_estimate()
        if own == 0:
            return 0.0
        return min(1.0, self.overlap_estimate(other) / own)

    def _union_distinct_estimate(self, other: "KMVSketch") -> float:
        union_hashes = sorted(set(self._entries) | set(other._entries))
        k = min(max(self.capacity, other.capacity), len(union_hashes))
        if k == 0:
            return 0.0
        if len(union_hashes) < max(self.capacity, other.capacity):
            return float(len(union_hashes))
        return (k - 1) / union_hashes[k - 1]
