"""TUPSK: tuple-based coordinated sampling (the paper's proposed method).

Section IV-B.  Instead of ranking *keys* by hash value, TUPSK ranks *rows*:
the ``j``-th occurrence of key ``k`` in the base table is identified by the
derived tuple ``(k, j)`` and ranked by ``h_u(h((k, j)))``.  Because every
derived tuple is unique, each row has the same inclusion probability
(``n / N``), so the recovered sample of the many-to-one left join is a
uniform sample of the join result — which is exactly what generic MI
estimators assume.

On the candidate side repeated keys are aggregated (as in every method) and
the resulting unique keys are ranked by ``h_u(h((k, 1)))``; hashing on
``(k, 1)`` is what provides coordination with the base-side rows having
``j = 1``.

Base-side selection keeps the ``capacity`` rows with the smallest
``(tuple hash, row index)`` — the row index only matters on exact 32-bit
hash collisions and makes the bounded-heap scalar path and the batched
stable-argsort path select identical rows.
"""

from __future__ import annotations

import heapq
from typing import Any, Hashable

import numpy as np

from repro.sketches.base import SketchBuilder, register_builder

__all__ = ["TupleSketchBuilder"]


def _occurrence_counts(keys: list[Hashable]) -> list[int]:
    """``result[i]`` is 1 + the number of earlier rows sharing ``keys[i]``."""
    seen: dict[Hashable, int] = {}
    counts = []
    for key in keys:
        count = seen.get(key, 0) + 1
        seen[key] = count
        counts.append(count)
    return counts


@register_builder
class TupleSketchBuilder(SketchBuilder):
    """The proposed tuple-based sampling sketch (TUPSK)."""

    method = "TUPSK"
    # Candidate keys are ranked by h_u(h((k, 1))): key-only selection.
    candidate_selection_key_only = True

    def _select_base(
        self, keys: list[Hashable], values: list[Any]
    ) -> tuple[list[Hashable], list[Any]]:
        if self.vectorized:
            if len(keys) <= self.capacity:
                # Every row fits: nothing to rank, skip the hash pass.
                return list(keys), list(values)
            units = self.hasher.tuple_unit_many(keys, _occurrence_counts(keys))
            # Stable argsort orders by (unit, row index); truncating it
            # keeps the capacity smallest derived-tuple hashes.
            chosen = np.sort(np.argsort(units, kind="stable")[: self.capacity])
            return (
                [keys[int(i)] for i in chosen],
                [values[int(i)] for i in chosen],
            )
        occurrence: dict[Hashable, int] = {}
        # Max-heap (negated priority) of the `capacity` smallest tuple
        # hashes; negating the row index too makes equal hashes keep the
        # earliest rows, matching the vectorized stable sort.
        heap: list[tuple[float, int]] = []
        for row_index, key in enumerate(keys):
            count = occurrence.get(key, 0) + 1
            occurrence[key] = count
            unit = self.hasher.tuple_unit(key, count)
            if len(heap) < self.capacity:
                heapq.heappush(heap, (-unit, -row_index))
            elif unit < -heap[0][0]:
                heapq.heapreplace(heap, (-unit, -row_index))
        selected = sorted(-negated_row for _, negated_row in heap)
        return [keys[i] for i in selected], [values[i] for i in selected]

    def _rank_keys_by_tuple_unit(self, keys: list[Hashable]) -> list[Hashable]:
        if self.vectorized and len(keys) > 1:
            units = self.hasher.tuple_unit_many(keys, [1] * len(keys))
            order = np.argsort(units, kind="stable")
            return [keys[int(position)] for position in order]
        return sorted(keys, key=lambda key: self.hasher.tuple_unit(key, 1))

    def _select_candidate(
        self, aggregated: dict[Hashable, Any]
    ) -> tuple[list[Hashable], list[Any]]:
        ranked = self._rank_keys_by_tuple_unit(list(aggregated))
        selected = ranked[: self.capacity]
        return selected, [aggregated[key] for key in selected]
