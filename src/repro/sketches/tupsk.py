"""TUPSK: tuple-based coordinated sampling (the paper's proposed method).

Section IV-B.  Instead of ranking *keys* by hash value, TUPSK ranks *rows*:
the ``j``-th occurrence of key ``k`` in the base table is identified by the
derived tuple ``(k, j)`` and ranked by ``h_u(h((k, j)))``.  Because every
derived tuple is unique, each row has the same inclusion probability
(``n / N``), so the recovered sample of the many-to-one left join is a
uniform sample of the join result — which is exactly what generic MI
estimators assume.

On the candidate side repeated keys are aggregated (as in every method) and
the resulting unique keys are ranked by ``h_u(h((k, 1)))``; hashing on
``(k, 1)`` is what provides coordination with the base-side rows having
``j = 1``.
"""

from __future__ import annotations

import heapq
from typing import Any, Hashable

from repro.sketches.base import SketchBuilder, register_builder

__all__ = ["TupleSketchBuilder"]


@register_builder
class TupleSketchBuilder(SketchBuilder):
    """The proposed tuple-based sampling sketch (TUPSK)."""

    method = "TUPSK"
    # Candidate keys are ranked by h_u(h((k, 1))): key-only selection.
    candidate_selection_key_only = True

    def _select_base(
        self, keys: list[Hashable], values: list[Any]
    ) -> tuple[list[Hashable], list[Any]]:
        occurrence: dict[Hashable, int] = {}
        # Max-heap (negated priority) of the `capacity` smallest tuple hashes.
        heap: list[tuple[float, int]] = []
        for row_index, key in enumerate(keys):
            count = occurrence.get(key, 0) + 1
            occurrence[key] = count
            unit = self.hasher.tuple_unit(key, count)
            if len(heap) < self.capacity:
                heapq.heappush(heap, (-unit, row_index))
            elif unit < -heap[0][0]:
                heapq.heapreplace(heap, (-unit, row_index))
        selected = sorted(row_index for _, row_index in heap)
        return [keys[i] for i in selected], [values[i] for i in selected]

    def _select_candidate(
        self, aggregated: dict[Hashable, Any]
    ) -> tuple[list[Hashable], list[Any]]:
        ranked = sorted(aggregated, key=lambda key: self.hasher.tuple_unit(key, 1))
        selected = ranked[: self.capacity]
        return selected, [aggregated[key] for key in selected]
