"""Joining two sketches to recover a sample of the (unmaterialized) join.

Given a base-side sketch ``S_train`` and a candidate-side sketch ``S_aug``
built with the same hash seed, the sketch join pairs every base tuple
``⟨h(k), y_k⟩`` with the candidate tuple ``⟨h(k), x_k⟩`` sharing its hashed
key.  Because the candidate side aggregates keys, each base tuple matches at
most one candidate tuple, so the result is a subset of the rows of the full
augmentation join — the sample handed to the MI estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import IncompatibleSketchError
from repro.relational.dtypes import DType
from repro.sketches.base import Sketch, SketchSide

__all__ = ["SketchJoinResult", "join_sketches"]


@dataclass
class SketchJoinResult:
    """The sample of the join recovered from a pair of sketches.

    ``x_values`` holds the candidate-side (feature) values and ``y_values``
    the base-side (target) values, aligned pairwise.
    """

    x_values: list[Any]
    y_values: list[Any]
    x_dtype: DType
    y_dtype: DType
    base_sketch_size: int
    candidate_sketch_size: int
    base_method: str = ""
    candidate_method: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def join_size(self) -> int:
        """Number of recovered join rows (the "sketch join size" of the paper)."""
        return len(self.x_values)

    def __len__(self) -> int:
        return self.join_size

    def pairs(self) -> list[tuple[Any, Any]]:
        """The recovered ``(x, y)`` pairs."""
        return list(zip(self.x_values, self.y_values))


def _check_compatibility(base: Sketch, candidate: Sketch, *, strict_sides: bool) -> None:
    if base.seed != candidate.seed:
        raise IncompatibleSketchError(
            f"sketches were built with different hash seeds ({base.seed} vs {candidate.seed})"
        )
    if strict_sides:
        if base.side != SketchSide.BASE:
            raise IncompatibleSketchError(
                f"expected a base-side sketch on the left, got side={base.side!r}"
            )
        if candidate.side != SketchSide.CANDIDATE:
            raise IncompatibleSketchError(
                f"expected a candidate-side sketch on the right, got side={candidate.side!r}"
            )


def join_sketches(
    base: Sketch,
    candidate: Sketch,
    *,
    strict_sides: bool = True,
) -> SketchJoinResult:
    """Join a base-side sketch with a candidate-side sketch on hashed keys.

    Parameters
    ----------
    base:
        Sketch of the base table side (``T_train``): hashed keys may repeat.
    candidate:
        Sketch of the candidate side (``T_aug``): hashed keys are unique; if
        a hashed key somehow repeats (CSK on dirty data), the first entry
        wins, mirroring a left join against a de-duplicated key.
    strict_sides:
        Verify that the sketches were built for the expected sides.

    Returns
    -------
    SketchJoinResult
        The aligned feature/target sample recovered from the join.
    """
    _check_compatibility(base, candidate, strict_sides=strict_sides)
    candidate_map: dict[int, Any] = {}
    for key_id, value in zip(candidate.key_ids, candidate.values):
        candidate_map.setdefault(key_id, value)

    x_values: list[Any] = []
    y_values: list[Any] = []
    for key_id, y_value in zip(base.key_ids, base.values):
        if key_id in candidate_map:
            x_values.append(candidate_map[key_id])
            y_values.append(y_value)

    return SketchJoinResult(
        x_values=x_values,
        y_values=y_values,
        x_dtype=candidate.value_dtype,
        y_dtype=base.value_dtype,
        base_sketch_size=len(base),
        candidate_sketch_size=len(candidate),
        base_method=base.method,
        candidate_method=candidate.method,
        metadata={
            "base_table": base.table_name,
            "candidate_table": candidate.table_name,
            "base_column": base.value_column,
            "candidate_column": candidate.value_column,
            "aggregate": candidate.aggregate,
        },
    )
