"""INDSK: independent Bernoulli/uniform sampling baseline.

The naive baseline of Section IV: each table is sampled *independently*
(uniformly, without any hash coordination), so a key sampled on one side is
no more likely to be sampled on the other.  The expected sketch-join size is
quadratically smaller than with coordinated sampling (Acharya et al., 1999),
which is what Table I of the paper demonstrates.

Rows are still stored as ``(h(k), value)`` pairs so the sketch-join machinery
is shared with the coordinated methods.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from repro.sketches.base import SketchBuilder, register_builder
from repro.sketches.sampling import uniform_sample_without_replacement

__all__ = ["IndependentSketchBuilder"]


@register_builder
class IndependentSketchBuilder(SketchBuilder):
    """Independent uniform row-sampling sketch (INDSK)."""

    method = "INDSK"
    # Candidate keys are a seeded uniform sample of the key set: key-only.
    candidate_selection_key_only = True

    def __init__(self, capacity: int = 256, seed: int = 0, vectorized: bool = True):
        super().__init__(capacity=capacity, seed=seed, vectorized=vectorized)
        # Distinct sub-streams for the two sides so the samples are
        # independent even when both tables share key values.
        self._base_rng = np.random.default_rng((self.seed, 0x1D5B))
        self._candidate_rng = np.random.default_rng((self.seed, 0xA46F))

    def _select_base(
        self, keys: list[Hashable], values: list[Any]
    ) -> tuple[list[Hashable], list[Any]]:
        indices = uniform_sample_without_replacement(
            list(range(len(keys))), self.capacity, self._base_rng
        )
        return [keys[i] for i in indices], [values[i] for i in indices]

    def _select_candidate(
        self, aggregated: dict[Hashable, Any]
    ) -> tuple[list[Hashable], list[Any]]:
        candidate_keys = list(aggregated)
        selected = uniform_sample_without_replacement(
            candidate_keys, self.capacity, self._candidate_rng
        )
        return selected, [aggregated[key] for key in selected]
