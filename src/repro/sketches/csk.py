"""CSK: straightforward extension of Correlation Sketches to MI estimation.

Correlation Sketches (Santos et al., SIGMOD 2021) perform coordinated minwise
sampling over join keys and were designed for correlation estimates on
numeric attributes with (assumed) unique keys.  The paper evaluates a direct
extension as a baseline: since CSK does not prescribe how to handle repeated
join keys, the *first value seen* for a key is kept — on both the base and
the candidate side — instead of sampling (base) or aggregating (candidate).

This makes the sketch cheap but means (1) the base-side sample ignores the
key-frequency distribution of the left table, and (2) the candidate-side
value may differ from the featurized value ``AGG({x_k})`` the augmentation
join would actually produce.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.relational.aggregate import AggregateFunction
from repro.sketches.base import SketchBuilder, register_builder

__all__ = ["CorrelationSketchBuilder"]


@register_builder
class CorrelationSketchBuilder(SketchBuilder):
    """Correlation-Sketches-style minwise key sampling with first-value semantics."""

    method = "CSK"
    # Candidate keys are ranked by h_u(h(k)): key-only selection.
    candidate_selection_key_only = True

    def _first_values(
        self, keys: list[Hashable], values: list[Any]
    ) -> dict[Hashable, Any]:
        first_seen: dict[Hashable, Any] = {}
        for key, value in zip(keys, values):
            if key not in first_seen:
                first_seen[key] = value
        return first_seen

    def _select_from_mapping(
        self, mapping: dict[Hashable, Any]
    ) -> tuple[list[Hashable], list[Any]]:
        selected = self._rank_keys_by_unit(mapping)[: self.capacity]
        return selected, [mapping[key] for key in selected]

    def _select_base(
        self, keys: list[Hashable], values: list[Any]
    ) -> tuple[list[Hashable], list[Any]]:
        return self._select_from_mapping(self._first_values(keys, values))

    def _candidate_key_values(
        self,
        keys: list[Hashable],
        values: list[Any],
        agg: AggregateFunction,
    ) -> dict[Hashable, Any]:
        # CSK ignores the featurization function and keeps the first value
        # associated with each key (see module docstring).
        return self._first_values(keys, values)

    def _select_candidate(
        self, aggregated: dict[Hashable, Any]
    ) -> tuple[list[Hashable], list[Any]]:
        return self._select_from_mapping(aggregated)
