"""LV2SK: two-level sampling sketch (the paper's principled baseline).

Section IV-A.  The first level performs coordinated minwise sampling over
*distinct* join keys: the ``n`` keys with the smallest ``h_u(h(k))`` are
selected on both tables, which maximizes the expected join size.  The second
level bounds the sketch size by keeping, for each selected key ``k`` with
frequency ``N_k`` in a table of ``N`` rows, only
``n_k = max(1, floor(n * N_k / N))`` of its rows.

The resulting tuple-inclusion probability depends on the key-frequency
distribution (``Pr[t_i] = 1 / (m_K * max(1, floor(n N_i / N)))``), i.e. the
sample is *not* identically distributed; the paper shows this inflates the
bias of MI estimators when the join key and the target are dependent.

Total storage is at most ``2n`` (each of the ``n`` keys keeps at least one
row and the extra rows sum to at most ``n``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Hashable

import numpy as np

from repro.sketches.base import SketchBuilder, register_builder
from repro.sketches.sampling import uniform_sample_without_replacement

__all__ = ["TwoLevelSketchBuilder"]


@register_builder
class TwoLevelSketchBuilder(SketchBuilder):
    """Two-level sampling sketch (LV2SK)."""

    method = "LV2SK"
    # Candidate keys are ranked by h_u(h(k)): key-only selection (PRISK
    # inherits this; its value-weighted sampling is base-side only).
    candidate_selection_key_only = True

    def _first_level_keys(self, key_frequencies: dict[Hashable, int]) -> list[Hashable]:
        """Select the keys retained by the first sampling level.

        LV2SK uses plain minwise (uniform) coordinated sampling over the
        distinct keys; PRISK overrides this hook with weighted sampling.
        The selection's order never reaches the sketch (rows are re-sorted
        by position), so when every key fits no ranking hashes are spent —
        mirroring PRISK's short-circuit.
        """
        if len(key_frequencies) <= self.capacity:
            return list(key_frequencies)
        return self._rank_keys_by_unit(key_frequencies)[: self.capacity]

    def _select_base(
        self, keys: list[Hashable], values: list[Any]
    ) -> tuple[list[Hashable], list[Any]]:
        total_rows = len(keys)
        rows_per_key: dict[Hashable, list[int]] = defaultdict(list)
        for row_index, key in enumerate(keys):
            rows_per_key[key].append(row_index)
        frequencies = {key: len(rows) for key, rows in rows_per_key.items()}
        selected_keys = self._first_level_keys(frequencies)
        # The per-key RNG streams are seeded from the key hashes; batch them
        # so the vectorized path never falls back to one hash per key.
        selected_key_ids = dict(zip(selected_keys, self._key_ids(selected_keys)))

        selected_rows: list[int] = []
        for key in selected_keys:
            rows = rows_per_key[key]
            quota = max(1, int(np.floor(self.capacity * len(rows) / total_rows)))
            if quota >= len(rows):
                kept = rows
            else:
                # Deterministic per-key subsampling: derive the stream from the
                # sketch seed and the key so rebuilding the sketch is stable.
                rng = np.random.default_rng((self.seed, selected_key_ids[key]))
                kept = uniform_sample_without_replacement(rows, quota, rng)
            selected_rows.extend(kept)
        selected_rows.sort()
        return [keys[i] for i in selected_rows], [values[i] for i in selected_rows]

    def _select_candidate(
        self, aggregated: dict[Hashable, Any]
    ) -> tuple[list[Hashable], list[Any]]:
        selected = self._rank_keys_by_unit(aggregated)[: self.capacity]
        return selected, [aggregated[key] for key in selected]
