"""MI estimation on top of joined sketches.

This is the function ``F`` of the paper's approach overview: it takes the
sample of paired values recovered by the sketch join and applies a standard
sample-based MI estimator, chosen from the columns' data types unless the
caller supplies one explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import InsufficientSamplesError
from repro.estimators.base import MIEstimator
from repro.estimators.selection import select_estimator
from repro.sketches.base import Sketch
from repro.sketches.join import SketchJoinResult

__all__ = ["SketchMIEstimate", "estimate_mi_from_sketches", "estimate_mi_from_join"]


@dataclass
class SketchMIEstimate:
    """An MI estimate computed from a sketch join, with provenance."""

    mi: float
    estimator: str
    join_size: int
    base_sketch_size: int
    candidate_sketch_size: int
    x_dtype: str
    y_dtype: str

    def __float__(self) -> float:
        return self.mi


def estimate_mi_from_join(
    join_result: SketchJoinResult,
    *,
    estimator: Optional[MIEstimator] = None,
    k: int = 3,
    min_join_size: int = 2,
) -> SketchMIEstimate:
    """Estimate MI from an already-computed sketch join."""
    if join_result.join_size < min_join_size:
        raise InsufficientSamplesError(
            min_join_size, join_result.join_size, "sketch join"
        )
    if estimator is None:
        estimator = select_estimator(join_result.x_dtype, join_result.y_dtype, k=k)
    mi = estimator.estimate(join_result.x_values, join_result.y_values)
    return SketchMIEstimate(
        mi=mi,
        estimator=estimator.name,
        join_size=join_result.join_size,
        base_sketch_size=join_result.base_sketch_size,
        candidate_sketch_size=join_result.candidate_sketch_size,
        x_dtype=join_result.x_dtype.value,
        y_dtype=join_result.y_dtype.value,
    )


def estimate_mi_from_sketches(
    base: Sketch,
    candidate: Sketch,
    *,
    estimator: Optional[MIEstimator] = None,
    k: Optional[int] = None,
    min_join_size: Optional[int] = None,
) -> SketchMIEstimate:
    """Join two sketches and estimate the MI of the recovered sample.

    Parameters
    ----------
    base:
        Base-side sketch of ``(K_Y, Y)``.
    candidate:
        Candidate-side sketch of ``(K_X, X)`` (already aggregated).
    estimator:
        Explicit MI estimator; by default one is selected from the sketched
        columns' data types following the paper's policy.
    k:
        Neighbour count for KSG-family estimators when auto-selecting;
        defaults to the default engine's ``estimator_k`` (3 unless
        reconfigured).
    min_join_size:
        Minimum number of recovered join rows required to attempt an
        estimate; smaller joins raise
        :class:`~repro.exceptions.InsufficientSamplesError`.  Defaults to
        the default engine's ``min_join_size`` (2 unless reconfigured).

    Notes
    -----
    This is a thin wrapper over the default
    :class:`~repro.engine.SketchEngine`; sketches built under different
    seeds or sketching methods raise
    :class:`~repro.exceptions.IncompatibleSketchError`.
    """
    # Imported lazily: the engine layer builds on this module.
    from repro.engine.default import get_default_engine

    return get_default_engine().estimate(
        base, candidate, estimator=estimator, k=k, min_join_size=min_join_size
    )
