"""Aggregation functions and group-by aggregation.

Section III-B of the paper defines a *featurization function* ``AGG`` that
collapses the set of values sharing a join key in a candidate table into a
single feature value, e.g. hourly temperatures averaged per day.  This module
implements the standard aggregates (``AVG``, ``SUM``, ``COUNT``, ``MIN``,
``MAX``, ``MODE``, ``FIRST``, ``MEDIAN``) and a group-by driver used both by
the featurization query and by the sketch builders (which aggregate the
candidate side without materializing the intermediate table).
"""

from __future__ import annotations

import enum
import statistics
from collections import Counter
from typing import Any, Hashable, Sequence

from repro.exceptions import AggregationError
from repro.relational.dtypes import DType

__all__ = [
    "AggregateFunction",
    "get_aggregate",
    "available_aggregates",
    "aggregate_values",
    "group_by_aggregate",
    "output_dtype",
]


class AggregateFunction(enum.Enum):
    """Supported featurization (aggregation) functions."""

    AVG = "avg"
    SUM = "sum"
    COUNT = "count"
    MIN = "min"
    MAX = "max"
    MODE = "mode"
    FIRST = "first"
    MEDIAN = "median"

    def __call__(self, values: Sequence[Any]) -> Any:
        return aggregate_values(values, self)


_NUMERIC_ONLY = {
    AggregateFunction.AVG,
    AggregateFunction.SUM,
    AggregateFunction.MEDIAN,
}


def available_aggregates() -> tuple[AggregateFunction, ...]:
    """All aggregation functions supported by the library."""
    return tuple(AggregateFunction)


def get_aggregate(name: "str | AggregateFunction") -> AggregateFunction:
    """Resolve an aggregation function from a name or enum member.

    Accepts case-insensitive names such as ``"avg"`` or ``"AVG"``.
    """
    if isinstance(name, AggregateFunction):
        return name
    if not isinstance(name, str):
        raise AggregationError(f"invalid aggregate specification: {name!r}")
    try:
        return AggregateFunction(name.strip().lower())
    except ValueError as exc:
        valid = ", ".join(member.value for member in AggregateFunction)
        raise AggregationError(
            f"unknown aggregate {name!r}; valid choices: {valid}"
        ) from exc


def _non_null(values: Sequence[Any]) -> list[Any]:
    return [value for value in values if value is not None]


def aggregate_values(values: Sequence[Any], agg: "str | AggregateFunction") -> Any:
    """Apply aggregation function ``agg`` to a group of raw values.

    Missing entries are ignored except for ``COUNT``, which counts non-missing
    values (an all-missing group therefore has ``COUNT`` 0).  An all-missing
    group yields ``None`` for every other aggregate.
    """
    agg = get_aggregate(agg)
    present = _non_null(values)
    if agg is AggregateFunction.COUNT:
        return len(present)
    if not present:
        return None
    if agg in _NUMERIC_ONLY and any(isinstance(value, str) for value in present):
        raise AggregationError(
            f"aggregate {agg.value.upper()} requires numeric values, got strings"
        )
    if agg is AggregateFunction.AVG:
        return float(sum(present)) / len(present)
    if agg is AggregateFunction.SUM:
        return sum(present)
    if agg is AggregateFunction.MIN:
        return min(present)
    if agg is AggregateFunction.MAX:
        return max(present)
    if agg is AggregateFunction.MEDIAN:
        return float(statistics.median(present))
    if agg is AggregateFunction.MODE:
        # Deterministic mode: most frequent value, ties broken by first
        # appearance order to keep results reproducible.
        counts = Counter(present)
        best_count = max(counts.values())
        for value in present:
            if counts[value] == best_count:
                return value
    if agg is AggregateFunction.FIRST:
        return present[0]
    raise AggregationError(f"unhandled aggregate: {agg!r}")  # pragma: no cover


def output_dtype(agg: "str | AggregateFunction", input_dtype: DType) -> DType:
    """Logical dtype of the featurized column produced by ``agg``.

    As discussed in Section III-B, ``COUNT`` always produces a discrete
    numeric output regardless of the input type, ``AVG``/``MEDIAN`` produce
    floats, and order/frequency based aggregates preserve the input type.
    """
    agg = get_aggregate(agg)
    if agg is AggregateFunction.COUNT:
        return DType.INT
    if agg in (AggregateFunction.AVG, AggregateFunction.MEDIAN):
        return DType.FLOAT
    if agg is AggregateFunction.SUM:
        return DType.FLOAT if input_dtype is DType.FLOAT else DType.INT
    return input_dtype


def group_by_aggregate(
    keys: Sequence[Hashable],
    values: Sequence[Any],
    agg: "str | AggregateFunction",
) -> dict[Hashable, Any]:
    """Group ``values`` by ``keys`` and aggregate each group.

    Rows whose key is missing (``None``) are dropped, mirroring the paper's
    problem statement which discards NULL join keys.

    Returns a mapping from each distinct key to its aggregated value, with
    keys in first-appearance order (Python dicts preserve insertion order).
    """
    if len(keys) != len(values):
        raise AggregationError(
            f"keys and values must align, got {len(keys)} and {len(values)}"
        )
    groups: dict[Hashable, list[Any]] = {}
    for key, value in zip(keys, values):
        if key is None:
            continue
        groups.setdefault(key, []).append(value)
    agg = get_aggregate(agg)
    return {key: aggregate_values(group, agg) for key, group in groups.items()}
