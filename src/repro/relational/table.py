"""In-memory relational table.

A :class:`Table` is an ordered collection of equally long
:class:`~repro.relational.column.Column` objects.  It provides the small set
of relational operations the paper's pipeline needs: projection, selection,
row sampling, group-by aggregation, sorting and conversion to/from plain
Python structures.  Joins live in :mod:`repro.relational.join` and the
featurization query in :mod:`repro.relational.featurize`.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ColumnNotFoundError, SchemaError
from repro.relational.aggregate import AggregateFunction, get_aggregate, group_by_aggregate, output_dtype
from repro.relational.column import Column
from repro.relational.dtypes import DType
from repro.util.rng import RandomState, ensure_rng

__all__ = ["Table"]


class Table:
    """An ordered collection of named, typed columns of equal length.

    Parameters
    ----------
    columns:
        Iterable of :class:`Column` objects.  Column names must be unique and
        all columns must have the same number of rows.
    name:
        Optional table name used in reprs, discovery results and error
        messages.
    """

    __slots__ = ("_columns", "_name")

    def __init__(self, columns: Iterable[Column], name: str = ""):
        columns = list(columns)
        if not columns:
            raise SchemaError("a table requires at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {', '.join(duplicates)}")
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise SchemaError(
                "all columns must have the same length, got lengths "
                + ", ".join(f"{c.name}={len(c)}" for c in columns)
            )
        self._columns: dict[str, Column] = {column.name: column for column in columns}
        self._name = name

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Sequence[Any]],
        name: str = "",
        dtypes: Optional[Mapping[str, DType]] = None,
    ) -> "Table":
        """Build a table from a mapping of column name to values."""
        dtypes = dtypes or {}
        columns = [
            Column(column_name, values, dtype=dtypes.get(column_name))
            for column_name, values in data.items()
        ]
        return cls(columns, name=name)

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Sequence[Any]],
        column_names: Sequence[str],
        name: str = "",
    ) -> "Table":
        """Build a table from a list of rows and a list of column names."""
        if rows and any(len(row) != len(column_names) for row in rows):
            raise SchemaError("every row must have one value per column")
        transposed = list(zip(*rows)) if rows else [[] for _ in column_names]
        columns = [
            Column(column_name, list(values))
            for column_name, values in zip(column_names, transposed)
        ]
        return cls(columns, name=name)

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Table name (may be empty)."""
        return self._name

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(self._columns.keys())

    @property
    def columns(self) -> tuple[Column, ...]:
        """Columns in declaration order."""
        return tuple(self._columns.values())

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        first = next(iter(self._columns.values()))
        return len(first)

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def __getitem__(self, column_name: str) -> Column:
        return self.column(column_name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.column_names == other.column_names and all(
            self._columns[name] == other._columns[name] for name in self._columns
        )

    def __repr__(self) -> str:
        schema = ", ".join(
            f"{column.name}:{column.dtype.value}" for column in self._columns.values()
        )
        label = f" {self._name!r}" if self._name else ""
        return f"Table{label}({self.num_rows} rows; {schema})"

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def column(self, column_name: str) -> Column:
        """Return the column named ``column_name``.

        Raises :class:`ColumnNotFoundError` if it does not exist.
        """
        try:
            return self._columns[column_name]
        except KeyError:
            raise ColumnNotFoundError(column_name, self.column_names) from None

    def row(self, index: int) -> dict[str, Any]:
        """Return row ``index`` as a ``{column_name: value}`` dict."""
        return {name: column[index] for name, column in self._columns.items()}

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        """Iterate over rows as dicts."""
        for index in range(self.num_rows):
            yield self.row(index)

    def to_dict(self) -> dict[str, list[Any]]:
        """Return the table as a ``{column_name: values}`` dict."""
        return {name: column.values for name, column in self._columns.items()}

    def schema(self) -> dict[str, DType]:
        """Return a mapping from column name to logical dtype."""
        return {name: column.dtype for name, column in self._columns.items()}

    # ------------------------------------------------------------------ #
    # Relational operations
    # ------------------------------------------------------------------ #
    def rename(self, new_name: str) -> "Table":
        """Return the same table under a different name."""
        return Table(self.columns, name=new_name)

    def select(self, column_names: Sequence[str]) -> "Table":
        """Project onto the given columns (in the given order)."""
        return Table([self.column(name) for name in column_names], name=self._name)

    def with_column(self, column: Column) -> "Table":
        """Return a new table with ``column`` appended (or replaced if the name exists)."""
        if len(column) != self.num_rows:
            raise SchemaError(
                f"new column {column.name!r} has {len(column)} rows, table has {self.num_rows}"
            )
        columns = [c for c in self.columns if c.name != column.name]
        columns.append(column)
        return Table(columns, name=self._name)

    def rename_columns(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns according to ``mapping`` (old name -> new name)."""
        columns = [
            column.rename(mapping.get(column.name, column.name))
            for column in self.columns
        ]
        return Table(columns, name=self._name)

    def take(self, indices: Sequence[int]) -> "Table":
        """Return a new table with the rows at ``indices`` (repeats allowed)."""
        indices = list(indices)
        return Table(
            [column.take(indices) for column in self.columns], name=self._name
        )

    def filter(self, predicate: Callable[[dict[str, Any]], bool]) -> "Table":
        """Return rows for which ``predicate(row_dict)`` is true."""
        indices = [i for i, row in enumerate(self.iter_rows()) if predicate(row)]
        return self.take(indices)

    def drop_nulls(self, column_names: Optional[Sequence[str]] = None) -> "Table":
        """Drop rows with a missing value in any of ``column_names`` (default: all)."""
        names = list(column_names) if column_names is not None else list(self.column_names)
        columns = [self.column(name) for name in names]
        indices = [
            i
            for i in range(self.num_rows)
            if all(column[i] is not None for column in columns)
        ]
        return self.take(indices)

    def head(self, count: int = 5) -> "Table":
        """First ``count`` rows."""
        return self.take(range(min(count, self.num_rows)))

    def sample_rows(self, count: int, random_state: RandomState = None) -> "Table":
        """Uniform random sample of ``count`` rows without replacement."""
        rng = ensure_rng(random_state)
        count = min(count, self.num_rows)
        indices = rng.choice(self.num_rows, size=count, replace=False)
        return self.take([int(i) for i in indices])

    def sort_by(self, column_name: str, *, descending: bool = False) -> "Table":
        """Sort rows by a column (missing values last)."""
        column = self.column(column_name)
        order = sorted(
            range(self.num_rows),
            key=lambda i: (column[i] is None, column[i]),
            reverse=descending,
        )
        return self.take(order)

    def group_by(
        self,
        key_column: str,
        value_column: str,
        agg: "str | AggregateFunction",
        *,
        key_output: Optional[str] = None,
        value_output: Optional[str] = None,
    ) -> "Table":
        """SQL-style ``SELECT key, AGG(value) ... GROUP BY key``.

        Returns a two-column table with one row per distinct key (NULL keys
        dropped), in first-appearance order.
        """
        agg = get_aggregate(agg)
        keys = self.column(key_column)
        values = self.column(value_column)
        aggregated = group_by_aggregate(keys.values, values.values, agg)
        key_output = key_output or key_column
        value_output = value_output or value_column
        out_dtype = output_dtype(agg, values.dtype)
        return Table(
            [
                Column(key_output, list(aggregated.keys()), dtype=keys.dtype),
                Column(value_output, list(aggregated.values()), dtype=out_dtype),
            ],
            name=self._name,
        )

    # ------------------------------------------------------------------ #
    # Conversions / stats
    # ------------------------------------------------------------------ #
    def to_numpy(self, column_names: Optional[Sequence[str]] = None) -> np.ndarray:
        """Stack numeric columns into a 2-D float array (rows x columns)."""
        names = list(column_names) if column_names is not None else list(self.column_names)
        arrays = [self.column(name).to_numpy() for name in names]
        return np.column_stack(arrays)

    def key_frequencies(self, column_name: str) -> dict[Hashable, int]:
        """Frequency of each non-missing value in a column (used by sketches)."""
        return dict(self.column(column_name).value_counts())
