"""Relational substrate: typed columns, tables, joins and featurization.

This package implements the minimal relational machinery the paper relies on:

* typed columns with inference from raw (string) values,
* in-memory tables with selection / projection / group-by,
* inner and left-outer equi-joins,
* the join-aggregation *featurization* query of Section III-B that turns a
  many-to-many candidate table into a many-to-one augmentation table,
* CSV reading and writing so examples can work with files on disk.
"""

from repro.relational.dtypes import DType, infer_dtype, infer_column_dtype, coerce_value
from repro.relational.column import Column
from repro.relational.table import Table
from repro.relational.aggregate import (
    AggregateFunction,
    get_aggregate,
    available_aggregates,
    group_by_aggregate,
)
from repro.relational.join import inner_join, left_outer_join, join_cardinality
from repro.relational.featurize import featurize, augment
from repro.relational.csvio import read_csv, write_csv

__all__ = [
    "DType",
    "infer_dtype",
    "infer_column_dtype",
    "coerce_value",
    "Column",
    "Table",
    "AggregateFunction",
    "get_aggregate",
    "available_aggregates",
    "group_by_aggregate",
    "inner_join",
    "left_outer_join",
    "join_cardinality",
    "featurize",
    "augment",
    "read_csv",
    "write_csv",
]
