"""Column data types and lightweight type inference.

The paper distinguishes *discrete* (categorical, typically string) attributes
from *continuous* (numerical) attributes, and relies on a type-inference step
(the original system used the Tablesaw library) to decide which MI estimator
applies to a column pair.  This module provides the equivalent machinery:

* :class:`DType` — the supported logical column types,
* :func:`infer_dtype` — classify a single raw value,
* :func:`infer_column_dtype` — classify a collection of raw values,
* :func:`coerce_value` — convert a raw value to the Python representation of
  a given :class:`DType`.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Iterable, Optional

from repro.exceptions import TypeInferenceError

__all__ = [
    "DType",
    "DtypeFolder",
    "MISSING_TOKENS",
    "infer_dtype",
    "infer_column_dtype",
    "join_dtypes",
    "coerce_value",
    "is_missing_value",
]

#: Raw string tokens treated as missing values during inference/coercion.
MISSING_TOKENS = frozenset({"", "na", "n/a", "nan", "null", "none", "-", "?"})


class DType(enum.Enum):
    """Logical data type of a column.

    ``INT`` and ``FLOAT`` are both *numerical* for estimator-selection
    purposes; ``STRING`` is *categorical*.  ``MISSING`` is only used for a
    column whose values are all missing.
    """

    STRING = "string"
    INT = "int"
    FLOAT = "float"
    MISSING = "missing"

    @property
    def is_numeric(self) -> bool:
        """True for types handled by continuous/mixture MI estimators."""
        return self in (DType.INT, DType.FLOAT)

    @property
    def is_categorical(self) -> bool:
        """True for types handled by discrete MI estimators."""
        return self is DType.STRING

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"


def is_missing_value(value: Any) -> bool:
    """Return ``True`` if ``value`` represents a missing entry."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, str) and value.strip().lower() in MISSING_TOKENS:
        return True
    return False


def _looks_like_int(text: str) -> bool:
    text = text.strip()
    if not text:
        return False
    if text[0] in "+-":
        text = text[1:]
    # isdecimal(), not isdigit(): int() only accepts Unicode decimal digits,
    # while isdigit() is also true for e.g. superscripts ("²"), which would
    # classify a value as INT that int() then refuses to parse.
    return text.isdecimal()


def _looks_like_float(text: str) -> bool:
    try:
        float(text)
    except (TypeError, ValueError):
        return False
    return True


def infer_dtype(value: Any) -> DType:
    """Infer the :class:`DType` of a single raw value.

    Missing values are reported as :data:`DType.MISSING`; the caller decides
    how they combine with non-missing values (see :func:`infer_column_dtype`).
    """
    if is_missing_value(value):
        return DType.MISSING
    if isinstance(value, bool):
        # Booleans are treated as categorical labels, not as 0/1 integers.
        return DType.STRING
    if isinstance(value, int):
        return DType.INT
    if isinstance(value, float):
        return DType.FLOAT
    if isinstance(value, str):
        if _looks_like_int(value):
            return DType.INT
        if _looks_like_float(value):
            return DType.FLOAT
        return DType.STRING
    # Fallback: numpy scalars and anything else numeric-like.
    try:
        as_float = float(value)
    except (TypeError, ValueError):
        return DType.STRING
    if float(as_float).is_integer() and not isinstance(value, float):
        return DType.INT
    return DType.FLOAT


class DtypeFolder:
    """Incremental :func:`infer_column_dtype`: fold values (or whole declared
    dtypes) one at a time and read the column dtype off at any point.

    This is the *one* implementation of the whole-column inference rule —
    batch column construction, the two-pass CSV reader's schema pass and the
    streaming sketchers all fold through it, so a column always infers the
    same dtype no matter which path observed its values.
    """

    __slots__ = ("saw_int", "saw_float", "saw_string")

    def __init__(self) -> None:
        self.saw_int = False
        self.saw_float = False
        self.saw_string = False

    def observe(self, value: Any) -> None:
        dtype = infer_dtype(value)
        if dtype is DType.STRING:
            self.saw_string = True
        elif dtype is DType.FLOAT:
            self.saw_float = True
        elif dtype is DType.INT:
            self.saw_int = True

    def observe_dtype(self, dtype: DType) -> None:
        """Fold a whole column's declared dtype in one step.

        Equivalent to observing every value of a column that carries
        ``dtype`` — trusted (already-coerced) chunk paths use this instead
        of per-value inference, since a coerced column's dtype subsumes its
        values'.
        """
        if dtype is DType.STRING:
            self.saw_string = True
        elif dtype is DType.FLOAT:
            self.saw_float = True
        elif dtype is DType.INT:
            self.saw_int = True

    def combine(self, other: "DtypeFolder") -> None:
        self.saw_int = self.saw_int or other.saw_int
        self.saw_float = self.saw_float or other.saw_float
        self.saw_string = self.saw_string or other.saw_string

    @property
    def dtype(self) -> DType:
        if self.saw_string:
            return DType.STRING
        if self.saw_float:
            return DType.FLOAT
        if self.saw_int:
            return DType.INT
        return DType.MISSING


def infer_column_dtype(values: Iterable[Any]) -> DType:
    """Infer the :class:`DType` of a whole column of raw values.

    The combination rules mirror typical dataframe semantics:

    * any STRING value makes the column STRING,
    * otherwise any FLOAT value makes the column FLOAT,
    * otherwise any INT value makes the column INT,
    * a column with only missing values is MISSING.
    """
    folder = DtypeFolder()
    for value in values:
        folder.observe(value)
        if folder.saw_string:
            break  # STRING dominates; no need to look further
    return folder.dtype


def join_dtypes(left: DType, right: DType) -> DType:
    """Combine two column dtypes under :func:`infer_column_dtype`'s rule.

    The join of the chunk-wise dtypes of a partitioned column equals the
    whole column's inferred dtype, which is what the streaming-ingestion
    layer relies on to fold per-chunk schemas.
    """
    if DType.STRING in (left, right):
        return DType.STRING
    if DType.FLOAT in (left, right):
        return DType.FLOAT
    if DType.INT in (left, right):
        return DType.INT
    return DType.MISSING


def coerce_value(value: Any, dtype: DType) -> Optional[Any]:
    """Convert ``value`` into the Python representation of ``dtype``.

    Missing values map to ``None`` regardless of the target type.  Raises
    :class:`TypeInferenceError` if a non-missing value cannot be represented
    in the requested type.
    """
    if is_missing_value(value):
        return None
    if dtype is DType.STRING:
        return value if isinstance(value, str) else str(value)
    if dtype is DType.INT:
        try:
            if isinstance(value, str):
                return int(float(value)) if not _looks_like_int(value) else int(value)
            return int(value)
        except (TypeError, ValueError) as exc:
            raise TypeInferenceError(f"cannot coerce {value!r} to INT") from exc
    if dtype is DType.FLOAT:
        try:
            return float(value)
        except (TypeError, ValueError) as exc:
            raise TypeInferenceError(f"cannot coerce {value!r} to FLOAT") from exc
    if dtype is DType.MISSING:
        return None
    raise TypeInferenceError(f"unsupported dtype: {dtype!r}")  # pragma: no cover
