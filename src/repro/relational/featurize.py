"""Featurization: from a candidate table to an augmentation table and join.

Section III-B of the paper defines the join-aggregation query that turns an
arbitrary candidate table ``T_cand[K_Z, Z]`` (which may have a many-to-many
relationship with the base table) into an augmentation table
``T_aug[K_X, X]`` with unique keys, and then left-joins it with the base
table ``T_train[K_Y, Y]``:

.. code-block:: sql

    SELECT T_train[K_Y], T_train[Y], T_aug[X]
    FROM T_train
    LEFT JOIN (
        SELECT K_Z AS K_X, AGG(Z) AS X FROM T_cand GROUP BY K_Z
    ) AS T_aug
    ON T_train[K_Y] = T_aug[K_X];

:func:`featurize` performs the inner ``GROUP BY`` and :func:`augment`
performs the full query, returning the augmented table whose row count
equals that of the base table.
"""

from __future__ import annotations

from typing import Optional

from repro.relational.aggregate import AggregateFunction
from repro.relational.join import left_outer_join
from repro.relational.table import Table

__all__ = ["featurize", "augment"]


def featurize(
    candidate: Table,
    key_column: str,
    value_column: str,
    agg: "str | AggregateFunction" = AggregateFunction.AVG,
    *,
    feature_name: Optional[str] = None,
) -> Table:
    """Derive the augmentation table ``T_aug[K_X, X]`` from a candidate table.

    Groups the candidate by its join-key column and applies the featurization
    function ``agg`` to each group's values, producing a table with unique
    keys suitable for a many-to-one left join with the base table.

    Parameters
    ----------
    candidate:
        Candidate table ``T_cand`` discovered in an external source.
    key_column:
        Name of the join-key column ``K_Z``.
    value_column:
        Name of the value column ``Z`` to featurize.
    agg:
        Aggregation function (``"avg"``, ``"mode"``, ``"count"``, ...).
    feature_name:
        Name of the derived feature column; defaults to
        ``f"{agg}_{value_column}"`` (e.g. ``avg_Temp``).
    """
    agg_label = agg.value if isinstance(agg, AggregateFunction) else str(agg).lower()
    feature_name = feature_name or f"{agg_label}_{value_column}"
    return candidate.group_by(
        key_column,
        value_column,
        agg,
        value_output=feature_name,
    ).rename(f"{candidate.name}_aug" if candidate.name else "aug")


def augment(
    base: Table,
    candidate: Table,
    *,
    base_key: str,
    candidate_key: str,
    candidate_value: str,
    agg: "str | AggregateFunction" = AggregateFunction.AVG,
    feature_name: Optional[str] = None,
) -> Table:
    """Augment ``base`` with a feature derived from ``candidate``.

    Implements the full join-aggregation query of Section III-B: the
    candidate is featurized (grouped and aggregated on its key) and then
    left-outer-joined with the base table, so the result has exactly one row
    per base-table row.  Rows whose key has no match in the candidate get a
    missing feature value.
    """
    aug = featurize(
        candidate,
        candidate_key,
        candidate_value,
        agg,
        feature_name=feature_name,
    )
    return left_outer_join(
        base,
        aug,
        left_on=base_key,
        right_on=candidate_key,
        expect_unique_right_keys=True,
        name=f"{base.name}_augmented" if base.name else "augmented",
    )
