"""Typed, named column of values.

A :class:`Column` is an immutable-by-convention sequence of Python values
(``None`` for missing entries) together with a name and a logical
:class:`~repro.relational.dtypes.DType`.  Columns are the unit the sketching
and estimation layers operate on: a sketch stores (hashed-key, column-value)
pairs, and MI estimators consume pairs of aligned columns.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.exceptions import SchemaError
from repro.relational.dtypes import DType, coerce_value, infer_column_dtype

__all__ = ["Column"]


class Column:
    """A named, typed column of values.

    Parameters
    ----------
    name:
        Column name (non-empty string).
    values:
        Iterable of raw values.  Values are coerced to the column dtype;
        missing entries become ``None``.
    dtype:
        Logical type of the column.  When omitted it is inferred from the
        values with :func:`~repro.relational.dtypes.infer_column_dtype`.
    """

    __slots__ = ("_name", "_dtype", "_values")

    def __init__(self, name: str, values: Iterable[Any], dtype: Optional[DType] = None):
        if not isinstance(name, str) or not name:
            raise SchemaError("column name must be a non-empty string")
        raw = list(values)
        if dtype is None:
            dtype = infer_column_dtype(raw)
        self._name = name
        self._dtype = dtype
        self._values = [coerce_value(value, dtype) for value in raw]

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Column name."""
        return self._name

    @property
    def dtype(self) -> DType:
        """Logical data type."""
        return self._dtype

    @property
    def values(self) -> list[Any]:
        """The column values as a list (``None`` marks missing entries)."""
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._from_values(self._values[index])
        if isinstance(index, (list, np.ndarray)):
            return self._from_values([self._values[i] for i in index])
        return self._values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return (
            self._name == other._name
            and self._dtype == other._dtype
            and self._values == other._values
        )

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._values[:5])
        if len(self._values) > 5:
            preview += ", ..."
        return f"Column({self._name!r}, dtype={self._dtype.value}, n={len(self)}, [{preview}])"

    # ------------------------------------------------------------------ #
    # Constructors / derivation
    # ------------------------------------------------------------------ #
    def _from_values(self, values: Sequence[Any]) -> "Column":
        # The values are a subset of this column's (already coerced) values,
        # so re-coercion is a no-op; skipping it makes slicing/taking O(n)
        # list work instead of per-value type dispatch.
        column = Column.__new__(Column)
        column._name = self._name
        column._dtype = self._dtype
        column._values = list(values)
        return column

    def rename(self, new_name: str) -> "Column":
        """Return a copy of the column under a different name."""
        return Column(new_name, self._values, dtype=self._dtype)

    def take(self, indices: Sequence[int]) -> "Column":
        """Return a new column with the values at ``indices`` (repeats allowed)."""
        return self._from_values([self._values[i] for i in indices])

    def with_values(self, values: Iterable[Any]) -> "Column":
        """Return a column with the same name/dtype but different values."""
        return Column(self._name, list(values), dtype=self._dtype)

    # ------------------------------------------------------------------ #
    # Statistics and conversions
    # ------------------------------------------------------------------ #
    def null_count(self) -> int:
        """Number of missing entries."""
        return sum(1 for value in self._values if value is None)

    def non_null_values(self) -> list[Any]:
        """All values except missing entries, in order."""
        return [value for value in self._values if value is not None]

    def distinct_count(self, *, include_null: bool = False) -> int:
        """Number of distinct values in the column."""
        distinct = set(self._values)
        if not include_null:
            distinct.discard(None)
        return len(distinct)

    def value_counts(self) -> Counter:
        """Counter of non-missing values to their frequencies."""
        return Counter(value for value in self._values if value is not None)

    def is_numeric(self) -> bool:
        """True if the column holds INT or FLOAT values."""
        return self._dtype.is_numeric

    def is_categorical(self) -> bool:
        """True if the column holds STRING values."""
        return self._dtype.is_categorical

    def to_numpy(self) -> np.ndarray:
        """Convert to a numpy array.

        Numeric columns become ``float64`` arrays with ``nan`` for missing
        entries; string columns become object arrays with ``None`` preserved.
        """
        if self._dtype.is_numeric:
            return np.array(
                [np.nan if value is None else float(value) for value in self._values],
                dtype=np.float64,
            )
        return np.array(self._values, dtype=object)

    def head(self, count: int = 5) -> "Column":
        """First ``count`` values as a new column."""
        return self[: max(0, count)]
