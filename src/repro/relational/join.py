"""Equi-joins between tables.

The paper's problem statement (Section III-A) estimates MI over the result of
a *left-outer* equi-join of the base table with an (aggregated) augmentation
table, with rows whose key has no match discarded from the MI computation.
This module provides:

* :func:`inner_join` — standard hash inner join,
* :func:`left_outer_join` — left join preserving the left table's row count,
* :func:`join_cardinality` — size of the inner join without materializing it.

Joins use hash maps keyed on the join-attribute values, so they run in
``O(|left| + |right| + |output|)`` time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Optional, Sequence

from repro.exceptions import JoinError
from repro.relational.column import Column
from repro.relational.table import Table

__all__ = ["inner_join", "left_outer_join", "join_cardinality"]


def _validate_join_inputs(left: Table, right: Table, left_on: str, right_on: str) -> None:
    if left_on not in left:
        raise JoinError(f"left join key {left_on!r} not in left table {left.column_names}")
    if right_on not in right:
        raise JoinError(f"right join key {right_on!r} not in right table {right.column_names}")


def _build_key_index(table: Table, key: str) -> dict[Hashable, list[int]]:
    """Map each non-missing key value to the list of row indices holding it."""
    index: dict[Hashable, list[int]] = defaultdict(list)
    for row_index, value in enumerate(table.column(key)):
        if value is None:
            continue
        index[value].append(row_index)
    return index


def _disambiguate(name: str, taken: set[str], suffix: str) -> str:
    if name not in taken:
        return name
    candidate = f"{name}{suffix}"
    counter = 2
    while candidate in taken:
        candidate = f"{name}{suffix}{counter}"
        counter += 1
    return candidate


def _assemble(
    left: Table,
    right: Table,
    left_indices: Sequence[int],
    right_indices: Sequence[Optional[int]],
    right_on: str,
    *,
    keep_right_key: bool,
    suffix: str,
    name: str,
) -> Table:
    columns: list[Column] = []
    taken: set[str] = set()
    for column in left.columns:
        taken.add(column.name)
        columns.append(column.take(list(left_indices)))
    for column in right.columns:
        if column.name == right_on and not keep_right_key:
            continue
        values = [
            column[i] if i is not None else None
            for i in right_indices
        ]
        out_name = _disambiguate(column.name, taken, suffix)
        taken.add(out_name)
        columns.append(Column(out_name, values, dtype=column.dtype))
    return Table(columns, name=name)


def inner_join(
    left: Table,
    right: Table,
    left_on: str,
    right_on: Optional[str] = None,
    *,
    suffix: str = "_right",
    name: str = "",
) -> Table:
    """Hash inner equi-join of ``left`` and ``right``.

    Every matching pair of rows produces an output row, so many-to-many keys
    multiply out.  The right join-key column is dropped from the output (it
    duplicates the left one); other name clashes get ``suffix`` appended.
    """
    right_on = right_on if right_on is not None else left_on
    _validate_join_inputs(left, right, left_on, right_on)
    right_index = _build_key_index(right, right_on)
    left_rows: list[int] = []
    right_rows: list[Optional[int]] = []
    for left_row, key in enumerate(left.column(left_on)):
        if key is None:
            continue
        for right_row in right_index.get(key, ()):
            left_rows.append(left_row)
            right_rows.append(right_row)
    return _assemble(
        left, right, left_rows, right_rows, right_on,
        keep_right_key=False, suffix=suffix,
        name=name or f"{left.name}_join_{right.name}".strip("_"),
    )


def left_outer_join(
    left: Table,
    right: Table,
    left_on: str,
    right_on: Optional[str] = None,
    *,
    expect_unique_right_keys: bool = False,
    suffix: str = "_right",
    name: str = "",
) -> Table:
    """Left-outer equi-join preserving the left table's rows.

    When a left key matches several right rows the join is many-to-many and
    the left row is repeated once per match (the standard SQL semantics); the
    data-augmentation pipeline avoids this by aggregating the right table
    first (see :func:`repro.relational.featurize.featurize`).  Setting
    ``expect_unique_right_keys=True`` turns such duplication into a
    :class:`~repro.exceptions.JoinError`, which is the contract assumed by
    the paper's augmentation join.
    """
    right_on = right_on if right_on is not None else left_on
    _validate_join_inputs(left, right, left_on, right_on)
    right_index = _build_key_index(right, right_on)
    if expect_unique_right_keys:
        duplicated = [key for key, rows in right_index.items() if len(rows) > 1]
        if duplicated:
            raise JoinError(
                "right table has repeated join keys "
                f"(e.g. {duplicated[:3]!r}); aggregate it first with featurize()"
            )
    left_rows: list[int] = []
    right_rows: list[Optional[int]] = []
    for left_row, key in enumerate(left.column(left_on)):
        matches = right_index.get(key, ()) if key is not None else ()
        if matches:
            for right_row in matches:
                left_rows.append(left_row)
                right_rows.append(right_row)
        else:
            left_rows.append(left_row)
            right_rows.append(None)
    return _assemble(
        left, right, left_rows, right_rows, right_on,
        keep_right_key=False, suffix=suffix,
        name=name or f"{left.name}_leftjoin_{right.name}".strip("_"),
    )


def join_cardinality(left: Table, right: Table, left_on: str, right_on: Optional[str] = None) -> int:
    """Number of rows the inner join would produce, without materializing it."""
    right_on = right_on if right_on is not None else left_on
    _validate_join_inputs(left, right, left_on, right_on)
    right_counts: dict[Hashable, int] = defaultdict(int)
    for value in right.column(right_on):
        if value is not None:
            right_counts[value] += 1
    total = 0
    for value in left.column(left_on):
        if value is not None:
            total += right_counts.get(value, 0)
    return total
