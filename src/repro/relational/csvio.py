"""CSV reading and writing for :class:`~repro.relational.table.Table`.

The examples and the open-data simulator use CSV as the on-disk exchange
format; types are inferred on read with the same rules the discovery layer
uses (so a column of numeric-looking strings becomes numeric, mirroring the
type-inference step the paper performs with Tablesaw).
"""

from __future__ import annotations

import csv
import io
import os
from typing import Optional, Sequence, Union

from repro.exceptions import SchemaError
from repro.relational.column import Column
from repro.relational.table import Table

__all__ = ["read_csv", "write_csv"]

PathOrBuffer = Union[str, os.PathLike, io.TextIOBase]


def read_csv(
    source: PathOrBuffer,
    *,
    name: str = "",
    delimiter: str = ",",
    columns: Optional[Sequence[str]] = None,
) -> Table:
    """Read a CSV file (with a header row) into a :class:`Table`.

    Parameters
    ----------
    source:
        File path or open text buffer.
    name:
        Name for the resulting table; defaults to the file's base name.
    delimiter:
        Field delimiter.
    columns:
        Optional subset of columns to keep (projection at read time).
    """
    if isinstance(source, (str, os.PathLike)):
        table_name = name or os.path.splitext(os.path.basename(os.fspath(source)))[0]
        with open(source, "r", newline="", encoding="utf-8") as handle:
            return _read_csv_buffer(handle, table_name, delimiter, columns)
    return _read_csv_buffer(source, name, delimiter, columns)


def _read_csv_buffer(
    handle: io.TextIOBase,
    name: str,
    delimiter: str,
    columns: Optional[Sequence[str]],
) -> Table:
    reader = csv.reader(handle, delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration:
        raise SchemaError("CSV input is empty (no header row)") from None
    header = [field.strip() for field in header]
    data: list[list[str]] = [[] for _ in header]
    for row in reader:
        if not row:
            continue
        if len(row) != len(header):
            raise SchemaError(
                f"CSV row has {len(row)} fields, header has {len(header)}"
            )
        for slot, value in zip(data, row):
            slot.append(value)
    table = Table(
        [Column(column_name, values) for column_name, values in zip(header, data)],
        name=name,
    )
    if columns is not None:
        table = table.select(columns)
    return table


def write_csv(table: Table, target: PathOrBuffer, *, delimiter: str = ",") -> None:
    """Write a :class:`Table` to CSV (with a header row).

    Missing values are written as empty fields.
    """
    if isinstance(target, (str, os.PathLike)):
        with open(target, "w", newline="", encoding="utf-8") as handle:
            _write_csv_buffer(table, handle, delimiter)
        return
    _write_csv_buffer(table, target, delimiter)


def _write_csv_buffer(table: Table, handle: io.TextIOBase, delimiter: str) -> None:
    writer = csv.writer(handle, delimiter=delimiter)
    writer.writerow(table.column_names)
    for row in table.iter_rows():
        writer.writerow(
            ["" if row[name] is None else row[name] for name in table.column_names]
        )
