"""Request/result types and the concurrency helper for batch engine calls.

Both halves of the paper's pipeline are batch workloads: the offline half
sketches thousands of ``(table, key, value)`` combinations, the online half
estimates MI against thousands of indexed candidates.  These small types
give those batches an explicit shape:

* :class:`SketchRequest` — one sketch to build (either side);
* :class:`BatchEstimate` — one ``estimate_many`` outcome, which either holds
  a :class:`~repro.sketches.estimate.SketchMIEstimate` or the exception that
  made the candidate unusable (e.g. too small a sketch join).

``run_batch`` executes a list of thunks sequentially or on a thread pool;
results always come back in submission order, so concurrent and sequential
runs are interchangeable.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, TypeVar

from repro.exceptions import EngineError
from repro.relational.aggregate import AggregateFunction
from repro.relational.table import Table
from repro.sketches.base import SketchSide
from repro.sketches.estimate import SketchMIEstimate

__all__ = ["SketchRequest", "BatchEstimate", "run_batch"]

T = TypeVar("T")


@dataclass(frozen=True)
class SketchRequest:
    """One sketch to build in a :meth:`SketchEngine.sketch_pairs` batch."""

    table: Table
    key_column: str
    value_column: str
    side: "SketchSide | str" = SketchSide.BASE
    agg: "str | AggregateFunction | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "side", SketchSide.coerce(self.side))

    @classmethod
    def coerce(cls, spec: "SketchRequest | Sequence[Any]") -> "SketchRequest":
        """Accept a request object or a ``(table, key, value[, side[, agg]])`` tuple."""
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, Sequence) and not isinstance(spec, str) and 3 <= len(spec) <= 5:
            return cls(*spec)
        raise EngineError(
            "sketch request must be a SketchRequest or a "
            "(table, key_column, value_column[, side[, agg]]) tuple"
        )


@dataclass
class BatchEstimate:
    """Outcome of one candidate in an :meth:`SketchEngine.estimate_many` batch.

    Exactly one of ``estimate`` and ``error`` is set.  ``position`` is the
    candidate's index in the submitted batch, so callers can zip results back
    to their inputs even after filtering.
    """

    position: int
    estimate: Optional[SketchMIEstimate] = None
    error: Optional[Exception] = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the estimate was computed."""
        return self.error is None

    def unwrap(self) -> SketchMIEstimate:
        """Return the estimate, re-raising the recorded error if there is one."""
        if self.error is not None:
            raise self.error
        assert self.estimate is not None
        return self.estimate


def run_batch(
    thunks: Sequence[Callable[[], T]],
    *,
    max_workers: Optional[int] = None,
) -> list[T]:
    """Run thunks sequentially (``max_workers`` in {None, 0, 1}) or on a pool.

    Results are returned in submission order regardless of completion order,
    and the first raised exception propagates (after the pool drains), so the
    concurrent path is observationally identical to the sequential one.
    """
    if max_workers is not None and max_workers < 0:
        raise EngineError(f"max_workers must be non-negative, got {max_workers}")
    if not thunks:
        return []
    if max_workers is None or max_workers <= 1:
        return [thunk() for thunk in thunks]
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        futures = [pool.submit(thunk) for thunk in thunks]
        return [future.result() for future in futures]
