"""The :class:`SketchEngine` session object — the library's canonical API.

An engine binds one :class:`~repro.engine.config.EngineConfig` to a working
session and exposes every pipeline operation as a method:

* ``sketch_base`` / ``sketch_candidate`` — build one sketch (base-side
  sketches are memoized per session, keyed on the table's identity, the
  column pair and the config, because the online half re-sketches the same
  base table for every query);
* ``sketch_pairs`` — batch-build many sketches, optionally on a thread pool;
* ``estimate`` — join two sketches and estimate MI under the config's
  estimator policy, after verifying the sketches agree on seed and method;
* ``estimate_many`` — batch-estimate one base sketch against many
  candidates, optionally concurrently, with per-candidate error capture.

The free functions :func:`repro.build_sketch` and
:func:`repro.estimate_mi_from_sketches` are thin wrappers over a
module-level default engine (see :mod:`repro.engine.default`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Iterable, Optional, Sequence, Union

from repro.engine.batch import BatchEstimate, SketchRequest, run_batch
from repro.engine.config import EngineConfig
from repro.exceptions import EngineError, IncompatibleSketchError, ReproError
from repro.estimators.base import MIEstimator
from repro.relational.aggregate import AggregateFunction
from repro.relational.table import Table
from repro.sketches.base import KeyGroups, Sketch, SketchBuilder, SketchSide, get_builder
from repro.sketches.estimate import SketchMIEstimate, estimate_mi_from_join
from repro.sketches.join import join_sketches
from repro.sketches.kmv import KMVSketch

__all__ = ["SketchEngine"]

#: Candidate spec accepted by :meth:`SketchEngine.estimate_many`.
CandidateSpec = Union[Sketch, SketchRequest, Sequence[Any]]


class SketchEngine:
    """A configured session for building, joining and estimating over sketches.

    Parameters
    ----------
    config:
        The session configuration; built from ``overrides`` (on top of the
        library defaults) when omitted.
    cache_size:
        Maximum number of memoized base-side sketches kept per session
        (least-recently-used eviction; ``0`` disables memoization).
    max_workers:
        Session-wide default for the batch methods' ``max_workers``
        parameter (``None`` means run batches sequentially).
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        *,
        cache_size: int = 64,
        max_workers: Optional[int] = None,
        **overrides: Any,
    ):
        if config is None:
            config = EngineConfig(**overrides)
        elif not isinstance(config, EngineConfig):
            raise EngineError(
                f"config must be an EngineConfig, got {type(config).__name__}"
            )
        elif overrides:
            config = config.replace(**overrides)
        if cache_size < 0:
            raise EngineError(f"cache_size must be non-negative, got {cache_size}")
        self.config = config
        self.max_workers = max_workers
        self._cache_size = int(cache_size)
        # key -> (table, sketch); the strong table reference pins the table's
        # id() so the identity-based key cannot alias a recycled object.
        self._base_cache: "OrderedDict[tuple, tuple[Table, Sketch]]" = OrderedDict()
        self._key_cache: "OrderedDict[tuple, tuple[Table, KMVSketch]]" = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        self._key_hits = 0
        self._key_misses = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Sketch building
    # ------------------------------------------------------------------ #
    def builder(self) -> SketchBuilder:
        """A fresh builder for the configured method (one per sketch call,
        so stateful builders like INDSK stay deterministic per sketch)."""
        method, capacity, seed = self.config.sketch_key
        return get_builder(
            method,
            capacity=capacity,
            seed=seed,
            vectorized=self.config.vectorized,
        )

    def sketch_base(
        self,
        table: Table,
        key_column: str,
        value_column: str,
        *,
        use_cache: bool = True,
    ) -> Sketch:
        """Sketch the base (``T_train``) side of ``table``, memoized per session.

        Cache hits return the *same* :class:`Sketch` object, so treat engine
        sketches as immutable (or pass ``use_cache=False`` for a private
        copy).  The memo also holds a strong reference to each cached table
        for the session's lifetime; ``clear_cache`` releases them.
        """
        cache_key = (id(table), key_column, value_column, self.config.sketch_key)
        if use_cache and self._cache_size:
            with self._lock:
                entry = self._base_cache.get(cache_key)
                if entry is not None and entry[0] is table:
                    self._base_cache.move_to_end(cache_key)
                    self._cache_hits += 1
                    return entry[1]
                self._cache_misses += 1
        sketch = self.builder().sketch_base(table, key_column, value_column)
        if use_cache and self._cache_size:
            with self._lock:
                self._base_cache[cache_key] = (table, sketch)
                self._base_cache.move_to_end(cache_key)
                while len(self._base_cache) > self._cache_size:
                    self._base_cache.popitem(last=False)
        return sketch

    def sketch_candidate(
        self,
        table: Table,
        key_column: str,
        value_column: str,
        *,
        agg: "str | AggregateFunction | None" = None,
        key_groups: Optional[KeyGroups] = None,
    ) -> Sketch:
        """Sketch the candidate (``T_aug``) side of ``table``.

        When ``agg`` is omitted the config's default featurization for the
        value column's type applies (AVG for numeric, MODE for categorical,
        unless reconfigured).  ``key_groups`` (a
        :class:`~repro.sketches.base.KeyGroups` built for ``(table,
        key_column)``) shares the key-side work across a family of value
        columns without changing the resulting sketch.
        """
        if agg is None:
            agg = self.config.default_aggregate_for(table.column(value_column).dtype)
        return self.builder().sketch_candidate(
            table, key_column, value_column, agg=agg, key_groups=key_groups
        )

    def sketch_table_candidates(
        self,
        table: Table,
        key_column: str,
        value_columns: Iterable[str],
        *,
        aggs: "Sequence[str | AggregateFunction | None] | None" = None,
        key_groups: Optional[KeyGroups] = None,
    ) -> list[Sketch]:
        """Sketch many value columns of one table against one join key.

        The key-side work (NULL-key filtering, grouping, candidate key
        selection and hashing) is computed once and shared across the whole
        column family via :class:`~repro.sketches.base.KeyGroups`; each
        returned sketch is identical to a standalone
        :meth:`sketch_candidate` call.  This is the building block the
        sharded :class:`~repro.discovery.builder.IndexBuilder` parallelizes
        over shards.
        """
        value_columns = list(value_columns)
        if aggs is None:
            agg_list: list = [None] * len(value_columns)
        else:
            agg_list = list(aggs)
            if len(agg_list) != len(value_columns):
                raise EngineError(
                    f"aggs must align with value_columns, got {len(agg_list)} "
                    f"aggregates for {len(value_columns)} columns"
                )
        if key_groups is None:
            key_groups = KeyGroups(table, key_column)
        return [
            self.sketch_candidate(
                table, key_column, value_column, agg=agg, key_groups=key_groups
            )
            for value_column, agg in zip(value_columns, agg_list)
        ]

    def sketch(self, request: "SketchRequest | Sequence[Any]") -> Sketch:
        """Build the sketch described by one :class:`SketchRequest`."""
        request = SketchRequest.coerce(request)
        if request.side == SketchSide.BASE:
            return self.sketch_base(
                request.table, request.key_column, request.value_column
            )
        return self.sketch_candidate(
            request.table, request.key_column, request.value_column, agg=request.agg
        )

    def sketch_pairs(
        self,
        requests: Iterable["SketchRequest | Sequence[Any]"],
        *,
        max_workers: Optional[int] = None,
    ) -> list[Sketch]:
        """Build many sketches, in request order, optionally concurrently.

        Each request is a :class:`SketchRequest` or a
        ``(table, key_column, value_column[, side[, agg]])`` tuple.
        Candidate-side requests that share a ``(table, key_column)`` pair
        delegate to the grouped builder fast path: the key-side work is done
        once per pair instead of once per request, without changing any
        sketch.  (The shared per-pair caches are idempotent, so the thread
        pool needs no extra locking.)
        """
        coerced = [SketchRequest.coerce(request) for request in requests]
        family_sizes: dict[tuple[int, str], int] = {}
        for request in coerced:
            if request.side == SketchSide.CANDIDATE:
                family = (id(request.table), request.key_column)
                family_sizes[family] = family_sizes.get(family, 0) + 1
        key_groups_by_family: dict[tuple[int, str], KeyGroups] = {}
        for request in coerced:
            if request.side != SketchSide.CANDIDATE:
                continue
            family = (id(request.table), request.key_column)
            if family_sizes[family] > 1 and family not in key_groups_by_family:
                key_groups_by_family[family] = KeyGroups(
                    request.table, request.key_column
                )

        def one(request: SketchRequest) -> Sketch:
            if request.side == SketchSide.BASE:
                return self.sketch_base(
                    request.table, request.key_column, request.value_column
                )
            return self.sketch_candidate(
                request.table,
                request.key_column,
                request.value_column,
                agg=request.agg,
                key_groups=key_groups_by_family.get(
                    (id(request.table), request.key_column)
                ),
            )

        thunks = [lambda request=request: one(request) for request in coerced]
        return run_batch(thunks, max_workers=self._workers(max_workers))

    def key_sketch(
        self, table: Table, key_column: str, *, use_cache: bool = True
    ) -> KMVSketch:
        """KMV sketch of a table's distinct join-key values (joinability tests).

        Memoized per session like :meth:`sketch_base`, and for the same
        reason: the online half rebuilds the base table's key sketch for
        every query.  Cache hits return the *same* :class:`KMVSketch`
        object, so treat engine key sketches as immutable (or pass
        ``use_cache=False`` for a private copy).
        """
        cache_key = (id(table), key_column, self.config.capacity, self.config.seed)
        if use_cache and self._cache_size:
            with self._lock:
                entry = self._key_cache.get(cache_key)
                if entry is not None and entry[0] is table:
                    self._key_cache.move_to_end(cache_key)
                    self._key_hits += 1
                    return entry[1]
                self._key_misses += 1
        sketch = KMVSketch.from_values(
            table.column(key_column).non_null_values(),
            capacity=self.config.capacity,
            seed=self.config.seed,
            vectorized=self.config.vectorized,
        )
        if use_cache and self._cache_size:
            with self._lock:
                self._key_cache[cache_key] = (table, sketch)
                self._key_cache.move_to_end(cache_key)
                while len(self._key_cache) > self._cache_size:
                    self._key_cache.popitem(last=False)
        return sketch

    # ------------------------------------------------------------------ #
    # Streaming ingestion
    # ------------------------------------------------------------------ #
    def stream_sketcher(
        self,
        side: "SketchSide | str" = SketchSide.BASE,
        *,
        agg: "str | AggregateFunction | None" = None,
    ):
        """A streaming sketcher bound to this session's configuration.

        Base-side sketchers consume ``(key, value)`` rows (or chunks) and
        finalize to the exact sketch :meth:`sketch_base` would build;
        candidate-side sketchers take the featurization function up front
        (default: the config's numeric aggregate — pass ``agg`` explicitly
        for categorical columns, or use :meth:`sketch_stream`, which
        resolves the default from the column's dtype like
        :meth:`sketch_candidate` does).
        """
        # Imported lazily: the ingest subsystem builds on this module.
        from repro.ingest.sketchers import (
            streaming_base_sketcher,
            streaming_candidate_sketcher,
        )

        method, capacity, seed = self.config.sketch_key
        if SketchSide.coerce(side) is SketchSide.BASE:
            return streaming_base_sketcher(
                method, capacity, seed, vectorized=self.config.vectorized
            )
        return streaming_candidate_sketcher(
            method,
            capacity,
            seed,
            agg=self.config.numeric_aggregate if agg is None else agg,
            vectorized=self.config.vectorized,
        )

    def sketch_stream(
        self,
        source: Any,
        key_column: str,
        value_column: str,
        *,
        side: "SketchSide | str" = SketchSide.BASE,
        agg: "str | AggregateFunction | None" = None,
        table_name: Optional[str] = None,
    ) -> Sketch:
        """Build one sketch from a chunked source, in bounded memory.

        ``source`` is anything the pluggable source registry resolves
        (:func:`~repro.ingest.sources.open_source`): a
        :class:`~repro.ingest.reader.TableReader`, a plain :class:`Table`
        (chunked internally), a path to a table file in a registered format
        (CSV, Parquet, ...; auto-detected by extension) or any iterable of
        ``Table`` chunks sharing one schema.  Each chunk is consumed through the
        sketcher's chunk path, which batches the hashing work when the
        config's ``vectorized`` flag is set; the finalized sketch is
        bit-identical to batch-building over the concatenated chunks.
        """
        from repro.exceptions import IngestError
        from repro.ingest.reader import iter_chunks
        from repro.relational.dtypes import DType, join_dtypes

        name, chunks = iter_chunks(source)
        side = SketchSide.coerce(side)
        sketcher = None
        # Folded only to reject categorical-vs-numeric chunk drift (which
        # would hash keys differently than a whole-table load); the
        # sketcher's own tracker folds the declared dtypes for finalize.
        seen_dtypes = {key_column: DType.MISSING, value_column: DType.MISSING}
        for chunk in chunks:
            column = chunk.column(value_column)
            if sketcher is None:
                # Chunks share one schema (the readers guarantee it), so
                # the first chunk's dtype is the table's dtype — the same
                # contract the chunked TableIngestor documents.
                if side is SketchSide.CANDIDATE and agg is None:
                    agg = self.config.default_aggregate_for(column.dtype)
                sketcher = self.stream_sketcher(side, agg=agg)
            for name_, dtype in (
                (key_column, chunk.column(key_column).dtype),
                (value_column, column.dtype),
            ):
                seen = seen_dtypes[name_]
                if (
                    dtype is not DType.MISSING
                    and seen is not DType.MISSING
                    and (dtype is DType.STRING) != (seen is DType.STRING)
                ):
                    raise IngestError(
                        f"chunk schema drifted: column {name_!r} was "
                        f"{seen.value} in earlier chunks but {dtype.value} in "
                        f"this chunk; re-chunk the source with one consistent "
                        f"schema (the repro.ingest readers guarantee one)"
                    )
                seen_dtypes[name_] = join_dtypes(seen, dtype)
            # Chunk columns are coerced, so None is the only missing
            # representation: take the trusted pre-filtered path instead of
            # paying per-value inference the tracker's dtype fold subsumes.
            keys = chunk.column(key_column).values
            values = column.values
            if None in keys:
                rows = [row for row, key in enumerate(keys) if key is not None]
                keys = [keys[row] for row in rows]
                values = [values[row] for row in rows]
            sketcher.add_filtered_chunk(
                keys, values, total_rows=chunk.num_rows, value_dtype=column.dtype
            )
        if sketcher is None:
            raise EngineError("cannot sketch an empty chunk stream")
        return sketcher.finalize(
            key_column=key_column,
            value_column=value_column,
            table_name=name if table_name is None else table_name,
        )

    def ingest_table(
        self,
        source: Any,
        key_columns: Iterable[str],
        value_columns: Optional[Iterable[str]] = None,
        *,
        name: Optional[str] = None,
        agg: "str | AggregateFunction | None" = None,
        metadata: Optional[dict[str, object]] = None,
    ) -> list:
        """Ingest a chunked table into discovery-index candidates.

        The streaming twin of :meth:`~repro.discovery.index.SketchIndex.
        add_table`'s sketching work: ``source`` — a reader, a ``Table``, a
        table-file path resolved through
        :func:`~repro.ingest.sources.open_source`, or a chunk iterable —
        has every (key column, value column) pair profiled, KMV-sketched
        and MI-sketched in one pass over the chunks, and the returned
        :class:`~repro.discovery.index.IndexedCandidate` objects are
        bit-identical to batch-building over the materialized table.  Feed
        them to ``SketchIndex.add_prebuilt`` (or use the higher-level
        ``IndexBuilder.add_table_stream`` / ``DiscoveryService.
        register_table``).
        """
        from repro.ingest.ingestor import TableIngestor
        from repro.ingest.reader import iter_chunks

        source_name, chunks = iter_chunks(source)
        ingestor = TableIngestor(
            self,
            key_columns,
            value_columns,
            name=source_name if name is None else name,
            agg=agg,
            metadata=metadata,
        )
        return ingestor.extend(chunks).finalize()

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def check_compatible(self, base: Sketch, candidate: Sketch) -> None:
        """Verify two sketches can be joined under one engine configuration.

        Sketches built under different seeds or different sketching methods
        are not samples of the same join and must not be combined.
        """
        if base.seed != candidate.seed:
            raise IncompatibleSketchError(
                f"sketches were built with different hash seeds "
                f"({base.seed} vs {candidate.seed})"
            )
        if base.method != candidate.method:
            raise IncompatibleSketchError(
                f"sketches were built with different sketching methods "
                f"({base.method} vs {candidate.method})"
            )

    def estimate(
        self,
        base: Sketch,
        candidate: Sketch,
        *,
        estimator: Optional[MIEstimator] = None,
        k: Optional[int] = None,
        min_join_size: Optional[int] = None,
    ) -> SketchMIEstimate:
        """Join two sketches and estimate MI under the config's policy.

        ``k`` and ``min_join_size`` default to the engine config; an explicit
        ``estimator`` bypasses type-driven selection entirely.
        """
        self.check_compatible(base, candidate)
        join_result = join_sketches(base, candidate)
        return estimate_mi_from_join(
            join_result,
            estimator=estimator,
            k=self.config.estimator_k if k is None else k,
            min_join_size=(
                self.config.min_join_size if min_join_size is None else min_join_size
            ),
        )

    def estimate_pair(
        self,
        base: "SketchRequest | Sequence[Any]",
        candidate: "SketchRequest | Sequence[Any]",
        **estimate_options: Any,
    ) -> SketchMIEstimate:
        """Sketch both sides of a column pair and estimate their MI."""
        base_request = SketchRequest.coerce(base)
        if base_request.side != SketchSide.BASE:
            base_request = SketchRequest(
                base_request.table,
                base_request.key_column,
                base_request.value_column,
                side=SketchSide.BASE,
            )
        candidate_request = SketchRequest.coerce(candidate)
        if candidate_request.side != SketchSide.CANDIDATE:
            candidate_request = SketchRequest(
                candidate_request.table,
                candidate_request.key_column,
                candidate_request.value_column,
                side=SketchSide.CANDIDATE,
                agg=candidate_request.agg,
            )
        return self.estimate(
            self.sketch(base_request), self.sketch(candidate_request), **estimate_options
        )

    def estimate_many(
        self,
        base: "Sketch | SketchRequest | Sequence[Any]",
        candidates: Iterable[CandidateSpec],
        *,
        estimator: Optional[MIEstimator] = None,
        k: Optional[int] = None,
        min_join_size: Optional[int] = None,
        max_workers: Optional[int] = None,
        return_exceptions: bool = False,
    ) -> list[BatchEstimate]:
        """Estimate one base against many candidates, optionally concurrently.

        Parameters
        ----------
        base:
            A base-side sketch, or a request/tuple describing one (which is
            built through the memoizing :meth:`sketch_base` path).
        candidates:
            Candidate-side sketches, or requests/tuples to sketch on the fly.
        return_exceptions:
            When true, a candidate whose estimate fails with a library error
            (e.g. :class:`~repro.exceptions.InsufficientSamplesError` on a
            too-small sketch join) yields a :class:`BatchEstimate` carrying
            that error instead of aborting the whole batch.

        Results are returned in candidate order, each carrying its batch
        ``position``, and are identical to calling :meth:`estimate` per
        candidate sequentially.
        """
        if isinstance(base, Sketch):
            base_sketch = base
        else:
            base_sketch = self.sketch(SketchRequest.coerce(base))
        if base_sketch.side != SketchSide.BASE:
            raise EngineError(
                f"estimate_many needs a base-side sketch on the left, "
                f"got side={str(base_sketch.side)!r}"
            )
        candidate_list = list(candidates)

        def one(position: int, spec: CandidateSpec) -> BatchEstimate:
            try:
                sketch = spec if isinstance(spec, Sketch) else self.sketch(spec)
                estimate = self.estimate(
                    base_sketch,
                    sketch,
                    estimator=estimator,
                    k=k,
                    min_join_size=min_join_size,
                )
            except ReproError as error:
                if not return_exceptions:
                    raise
                return BatchEstimate(position=position, error=error)
            return BatchEstimate(position=position, estimate=estimate)

        thunks = [
            lambda position=position, spec=spec: one(position, spec)
            for position, spec in enumerate(candidate_list)
        ]
        return run_batch(thunks, max_workers=self._workers(max_workers))

    # ------------------------------------------------------------------ #
    # Session cache
    # ------------------------------------------------------------------ #
    def clear_cache(self) -> None:
        """Drop all memoized base-side sketches and key sketches."""
        with self._lock:
            self._base_cache.clear()
            self._key_cache.clear()

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters of the base-sketch and key-sketch memos."""
        with self._lock:
            return {
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "size": len(self._base_cache),
                "max_size": self._cache_size,
                "key_hits": self._key_hits,
                "key_misses": self._key_misses,
                "key_size": len(self._key_cache),
            }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _workers(self, max_workers: Optional[int]) -> Optional[int]:
        return self.max_workers if max_workers is None else max_workers

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"SketchEngine(method={cfg.method!r}, capacity={cfg.capacity}, "
            f"seed={cfg.seed})"
        )
