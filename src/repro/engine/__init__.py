"""The sketch-engine session API — the canonical entry point of the library.

The engine layer binds every knob the offline (sketching) and online
(estimation) halves of the paper's pipeline must agree on into one immutable
:class:`EngineConfig`, and exposes the whole pipeline as methods of a
:class:`SketchEngine` session:

>>> from repro.engine import EngineConfig, SketchEngine
>>> engine = SketchEngine(EngineConfig(method="TUPSK", capacity=256, seed=0))
>>> s_base = engine.sketch_base(train, "zip", "trips")       # doctest: +SKIP
>>> s_cand = engine.sketch_candidate(weather, "zip", "temp") # doctest: +SKIP
>>> engine.estimate(s_base, s_cand).mi                       # doctest: +SKIP

Batch workloads go through ``sketch_pairs`` / ``estimate_many``, which accept
``max_workers`` for thread-pooled execution and always return results in
submission order.  The free functions :func:`repro.build_sketch` and
:func:`repro.estimate_mi_from_sketches` are thin wrappers over the
module-level default engine.
"""

from repro.engine.batch import BatchEstimate, SketchRequest, run_batch
from repro.engine.config import DEFAULT_CONFIG, EngineConfig
from repro.engine.default import (
    configure_default_engine,
    engine_for,
    get_default_engine,
    set_default_engine,
)
from repro.engine.session import SketchEngine

__all__ = [
    "EngineConfig",
    "DEFAULT_CONFIG",
    "SketchEngine",
    "SketchRequest",
    "BatchEstimate",
    "run_batch",
    "get_default_engine",
    "set_default_engine",
    "configure_default_engine",
    "engine_for",
]
