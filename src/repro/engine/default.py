"""The module-level default engine behind the library's free functions.

:func:`repro.build_sketch` and :func:`repro.estimate_mi_from_sketches`
predate the engine API; they now delegate here.  Two lookups are provided:

* :func:`get_default_engine` / :func:`set_default_engine` — the process-wide
  default session, used when a call does not mention any sketch parameters;
* :func:`engine_for` — a throwaway engine for a one-off configuration, used
  by legacy calls that pass ``(method, capacity, seed)`` explicitly.
"""

from __future__ import annotations

import threading
from typing import Any, Optional, Union

from repro.engine.config import EngineConfig
from repro.engine.session import SketchEngine
from repro.exceptions import EngineError

__all__ = [
    "get_default_engine",
    "set_default_engine",
    "configure_default_engine",
    "engine_for",
]

_lock = threading.Lock()
_default_engine: Optional[SketchEngine] = None


def get_default_engine() -> SketchEngine:
    """The process-wide default engine (created on first use)."""
    global _default_engine
    with _lock:
        if _default_engine is None:
            _default_engine = SketchEngine(EngineConfig())
        return _default_engine


def set_default_engine(
    engine: Union[SketchEngine, EngineConfig, None],
) -> SketchEngine:
    """Replace the default engine (pass a config to build one, None to reset)."""
    global _default_engine
    if isinstance(engine, EngineConfig):
        engine = SketchEngine(engine)
    if engine is not None and not isinstance(engine, SketchEngine):
        raise EngineError(
            f"expected a SketchEngine, EngineConfig or None, got {type(engine).__name__}"
        )
    with _lock:
        _default_engine = engine
    return get_default_engine()


def configure_default_engine(**overrides: Any) -> SketchEngine:
    """Rebuild the default engine with config fields overridden."""
    current = get_default_engine()
    return set_default_engine(SketchEngine(current.config.replace(**overrides)))


def engine_for(config: Optional[EngineConfig] = None, **overrides: Any) -> SketchEngine:
    """A fresh engine for a one-off configuration.

    Used by the legacy free functions, which are deliberately stateless:
    they build through a throwaway session so no table or sketch outlives
    the call.  Code that wants session memoization should construct and
    keep a :class:`SketchEngine` itself.
    """
    if config is None:
        config = EngineConfig(**overrides)
    elif overrides:
        config = config.replace(**overrides)
    return SketchEngine(config)
