"""Immutable, validated configuration for a :class:`~repro.engine.SketchEngine`.

Every knob that must agree between the offline (sketch-building) and online
(estimation) halves of the pipeline lives in one frozen dataclass:

* the sketching method and its single size parameter ``capacity``,
* the hash ``seed`` shared by all sketches meant to be joined,
* the estimator policy (``estimator_k`` for the KSG family and the minimum
  sketch-join size below which estimates are refused), and
* the default featurization aggregates applied to candidate value columns
  when the caller does not name one.

Because the config is hashable and frozen it doubles as a cache key: the
engine memoizes base-side sketches on ``(table identity, key, target,
config.sketch_key)``, and serialized sketches/indexes can be checked against
it.  ``to_dict`` / ``from_dict`` give a stable JSON representation used by
the CLI and by index persistence.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

from repro.exceptions import EngineConfigError
from repro.relational.aggregate import AggregateFunction, get_aggregate
from repro.relational.dtypes import DType

__all__ = ["EngineConfig", "DEFAULT_CONFIG"]

#: Version tag written into every serialized config document.
CONFIG_FORMAT_VERSION = 1


@dataclass(frozen=True)
class EngineConfig:
    """Validated, immutable settings of one sketch-engine session.

    Attributes
    ----------
    method:
        Sketching method name (case-insensitive; stored upper-case).
    capacity:
        Sketch size ``n`` used for MI sketches and KMV key sketches.
    seed:
        Hash seed shared by every sketch the engine builds.
    estimator_k:
        Neighbour count for KSG-family estimators when auto-selecting.
    min_join_size:
        Default minimum sketch-join size required to attempt an estimate.
    numeric_aggregate / categorical_aggregate:
        Featurization defaults applied to candidate value columns when no
        aggregate is named (the paper uses AVG / MODE).
    build_workers:
        Default number of worker *processes* used by the sharded index
        builder and the engine's batch sketching (``0`` builds in-process).
        Build parallelism does not affect sketch content, so it is excluded
        from :attr:`sketch_key`.
    build_shards:
        Default shard count of the sharded index builder.  Shard assignment
        is stable by table name, so the count only controls invalidation
        granularity and parallelism, never the built sketches.
    vectorized:
        Use the batched NumPy hashing and sketch-construction fast paths.
        The fast paths are bit-identical to the scalar reference (asserted
        by the property suite), so — like the build knobs — this flag is
        excluded from :attr:`sketch_key`: sketches built either way can be
        joined, cached and persisted interchangeably.  Disable to exercise
        or benchmark the scalar reference implementation.
    """

    method: str = "TUPSK"
    capacity: int = 1024
    seed: int = 0
    estimator_k: int = 3
    min_join_size: int = 2
    numeric_aggregate: AggregateFunction = AggregateFunction.AVG
    categorical_aggregate: AggregateFunction = AggregateFunction.MODE
    build_workers: int = 0
    build_shards: int = 8
    vectorized: bool = True

    def __post_init__(self) -> None:
        # The dataclass is frozen, so normalization goes through
        # object.__setattr__ before validation.
        object.__setattr__(self, "method", str(self.method).upper())
        object.__setattr__(self, "capacity", int(self.capacity))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "estimator_k", int(self.estimator_k))
        object.__setattr__(self, "min_join_size", int(self.min_join_size))
        object.__setattr__(
            self, "numeric_aggregate", _coerce_aggregate(self.numeric_aggregate)
        )
        object.__setattr__(
            self, "categorical_aggregate", _coerce_aggregate(self.categorical_aggregate)
        )
        if self.capacity < 1:
            raise EngineConfigError(f"capacity must be at least 1, got {self.capacity}")
        if self.estimator_k < 1:
            raise EngineConfigError(
                f"estimator_k must be at least 1, got {self.estimator_k}"
            )
        if self.min_join_size < 2:
            raise EngineConfigError(
                f"min_join_size must be at least 2, got {self.min_join_size}"
            )
        object.__setattr__(self, "build_workers", int(self.build_workers))
        object.__setattr__(self, "build_shards", int(self.build_shards))
        object.__setattr__(self, "vectorized", bool(self.vectorized))
        if self.build_workers < 0:
            raise EngineConfigError(
                f"build_workers must be non-negative, got {self.build_workers}"
            )
        if self.build_shards < 1:
            raise EngineConfigError(
                f"build_shards must be at least 1, got {self.build_shards}"
            )
        _validate_method(self.method)

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    @property
    def sketch_key(self) -> tuple[str, int, int]:
        """The triple that determines sketch content and joinability."""
        return (self.method, self.capacity, self.seed)

    def default_aggregate_for(self, dtype: "DType | bool") -> AggregateFunction:
        """Featurization default for a value column's type.

        Accepts either a :class:`DType` or the ``is_numeric`` boolean.
        """
        is_numeric = dtype.is_numeric if isinstance(dtype, DType) else bool(dtype)
        return self.numeric_aggregate if is_numeric else self.categorical_aggregate

    def replace(self, **overrides: Any) -> "EngineConfig":
        """Return a new config with the given fields replaced (and re-validated)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """Stable JSON-serializable representation of the config."""
        return {
            "format_version": CONFIG_FORMAT_VERSION,
            "method": self.method,
            "capacity": self.capacity,
            "seed": self.seed,
            "estimator_k": self.estimator_k,
            "min_join_size": self.min_join_size,
            "numeric_aggregate": self.numeric_aggregate.value,
            "categorical_aggregate": self.categorical_aggregate.value,
            "build_workers": self.build_workers,
            "build_shards": self.build_shards,
            "vectorized": self.vectorized,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "EngineConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected so silently-dropped settings cannot hide a
        version mismatch; the ``format_version`` key itself is optional to
        keep hand-written documents convenient.
        """
        if not isinstance(document, Mapping):
            raise EngineConfigError(
                f"engine config document must be a mapping, got {type(document).__name__}"
            )
        payload = dict(document)
        version = payload.pop("format_version", CONFIG_FORMAT_VERSION)
        if version != CONFIG_FORMAT_VERSION:
            raise EngineConfigError(
                f"unsupported engine config format version {version!r} "
                f"(expected {CONFIG_FORMAT_VERSION})"
            )
        known = {config_field.name for config_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise EngineConfigError(
                f"unknown engine config keys: {', '.join(unknown)}; "
                f"accepted keys: {', '.join(sorted(known))} "
                f"(plus the optional 'format_version')"
            )
        try:
            return cls(**payload)
        except (TypeError, ValueError) as exc:
            raise EngineConfigError(f"malformed engine config: {exc}") from exc


def _coerce_aggregate(value: "str | AggregateFunction") -> AggregateFunction:
    try:
        return get_aggregate(value)
    except Exception as exc:  # AggregationError or TypeError from bad input
        raise EngineConfigError(f"unknown aggregate {value!r}") from exc


def _validate_method(method: str) -> None:
    # Imported lazily: repro.sketches imports the concrete builder modules,
    # which must not happen while repro.engine itself is being imported.
    from repro.sketches.base import available_methods
    from repro.sketches import csk, indsk, lv2sk, prisk, tupsk  # noqa: F401

    if method not in available_methods():
        raise EngineConfigError(
            f"unknown sketching method {method!r}; "
            f"available: {', '.join(available_methods())}"
        )


#: Library-wide defaults; also the config of the implicit default engine.
DEFAULT_CONFIG = EngineConfig()
