"""Shared machinery for the experiment modules.

The experiments of Section V always perform the same two measurements on a
synthetic dataset:

* estimate the MI from the *full* (virtual) join with one or more estimators
  (:func:`full_join_estimate_for_dataset`), and
* estimate the MI from a pair of *sketches* built with a given method and
  size (:func:`sketch_estimate_for_dataset`),

then compare both against the analytic MI.  An :class:`EstimatorSpec`
captures the paper's "data type combination" notion: the estimator to apply
plus the marginal perturbation (if any) required to treat a discrete-valued
numeric variable as continuous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.engine.config import EngineConfig
from repro.engine.session import SketchEngine
from repro.exceptions import EstimationError
from repro.estimators.base import MIEstimator
from repro.estimators.dc_ksg import DCKSGEstimator
from repro.estimators.mixed_ksg import MixedKSGEstimator
from repro.estimators.mle import MLEEstimator
from repro.estimators.perturbation import perturb_ties
from repro.relational.aggregate import AggregateFunction
from repro.sketches.estimate import estimate_mi_from_join
from repro.sketches.join import join_sketches
from repro.synthetic.benchmark import SyntheticDataset
from repro.util.rng import RandomState, ensure_rng

__all__ = [
    "EstimatorSpec",
    "trinomial_estimator_specs",
    "cdunif_estimator_specs",
    "SketchRunRecord",
    "sketch_estimate_for_dataset",
    "full_join_estimate_for_dataset",
    "build_lake_index",
]


@dataclass
class EstimatorSpec:
    """An estimator plus the data-type treatment applied before estimation.

    ``perturb_x`` / ``perturb_y`` add low-magnitude Gaussian noise to the
    corresponding marginal (Section V-A: "a marginal variable can be made
    continuous via perturbation"), which is how the paper evaluates the
    DC-KSG estimator on the all-discrete Trinomial data.
    """

    label: str
    estimator: MIEstimator
    perturb_x: bool = False
    perturb_y: bool = False

    def estimate(
        self,
        x_values: Sequence[Any],
        y_values: Sequence[Any],
        random_state: RandomState = None,
    ) -> float:
        """Apply the configured treatment and estimate MI (nats)."""
        rng = ensure_rng(random_state)
        x_input: Sequence[Any] = x_values
        y_input: Sequence[Any] = y_values
        if self.perturb_x:
            x_input = perturb_ties(np.asarray(x_values, dtype=float), random_state=rng)
        if self.perturb_y:
            y_input = perturb_ties(np.asarray(y_values, dtype=float), random_state=rng)
        return self.estimator.estimate(x_input, y_input)


def trinomial_estimator_specs(k: int = 3) -> list[EstimatorSpec]:
    """The three data-type treatments the paper applies to Trinomial data.

    * discrete/discrete → MLE;
    * mixture/mixture → Mixed-KSG (values used as-is);
    * discrete/continuous → DC-KSG with the target marginal perturbed.
    """
    return [
        EstimatorSpec("MLE", MLEEstimator()),
        EstimatorSpec("Mixed-KSG", MixedKSGEstimator(k=k)),
        EstimatorSpec("DC-KSG", DCKSGEstimator(k=k, discrete="x"), perturb_y=True),
    ]


def cdunif_estimator_specs(k: int = 3) -> list[EstimatorSpec]:
    """The two estimators applicable to CDUnif data without transformation."""
    return [
        EstimatorSpec("Mixed-KSG", MixedKSGEstimator(k=k)),
        EstimatorSpec("DC-KSG", DCKSGEstimator(k=k, discrete="x")),
    ]


@dataclass
class SketchRunRecord:
    """One (dataset, sketching method, estimator) measurement."""

    distribution: str
    m: int
    key_generation: str
    method: str
    estimator: str
    true_mi: float
    estimate: float
    join_size: int
    base_sketch_size: int
    candidate_sketch_size: int
    extras: dict[str, Any] = field(default_factory=dict)

    def as_row(self) -> dict[str, Any]:
        """Flatten to a plain dict for reporting."""
        row = {
            "distribution": self.distribution,
            "m": self.m,
            "key_generation": self.key_generation,
            "method": self.method,
            "estimator": self.estimator,
            "true_mi": self.true_mi,
            "estimate": self.estimate,
            "join_size": self.join_size,
        }
        row.update(self.extras)
        return row


def sketch_estimate_for_dataset(
    dataset: SyntheticDataset,
    method: str,
    *,
    capacity: int = 256,
    estimator_spec: Optional[EstimatorSpec] = None,
    agg: "str | AggregateFunction" = AggregateFunction.AVG,
    seed: int = 0,
    random_state: RandomState = None,
    min_join_size: int = 3,
    engine: "SketchEngine | None" = None,
) -> SketchRunRecord:
    """Build sketches for a synthetic dataset and estimate MI from their join.

    An explicit ``engine`` overrides the ``(method, capacity, seed)`` triple
    and shares its base-sketch memo across repeated calls; otherwise a
    throwaway session is configured from the triple.
    """
    if engine is None:
        engine = SketchEngine(EngineConfig(method=method, capacity=capacity, seed=seed))
    base_sketch = engine.sketch_base(dataset.train_table, "key", "target")
    candidate_sketch = engine.sketch_candidate(
        dataset.cand_table, "key", "feature", agg=agg
    )
    join_result = join_sketches(base_sketch, candidate_sketch)
    if estimator_spec is None:
        estimate = estimate_mi_from_join(join_result, min_join_size=min_join_size)
        estimator_label = estimate.estimator
        value = estimate.mi
    else:
        if join_result.join_size < min_join_size:
            value = float("nan")
        else:
            try:
                value = estimator_spec.estimate(
                    join_result.x_values,
                    join_result.y_values,
                    random_state=random_state,
                )
            except EstimationError:
                # Estimator broke down on this sample (e.g. all-singleton
                # discrete values); record it as a missing estimate.
                value = float("nan")
        estimator_label = estimator_spec.label
    return SketchRunRecord(
        distribution=dataset.distribution,
        m=dataset.m,
        key_generation=dataset.key_generation.value,
        method=engine.config.method,
        estimator=estimator_label,
        true_mi=dataset.true_mi,
        estimate=float(value),
        join_size=join_result.join_size,
        base_sketch_size=len(base_sketch),
        candidate_sketch_size=len(candidate_sketch),
    )


def build_lake_index(
    tables,
    key_columns,
    *,
    engine: "SketchEngine | EngineConfig | None" = None,
    num_shards: "int | None" = None,
    max_workers: "int | None" = None,
    persist_to=None,
):
    """Index a lake of candidate tables through the sharded builder.

    The discovery-flavoured experiments and benchmarks all start from the
    same step — sketch every (key, value) column pair of a table collection
    into a :class:`~repro.discovery.SketchIndex` — so this helper wires them
    onto the production path: the sharded
    :class:`~repro.discovery.builder.IndexBuilder` (``max_workers`` worker
    processes over ``num_shards`` shards, defaulting to the engine config's
    ``build_workers`` / ``build_shards``) and, when ``persist_to`` is given,
    the columnar :mod:`repro.store` index layout on disk.
    """
    # Imported here: repro.discovery sits above the evaluation runner's
    # usual dependencies and is only needed by the lake experiments.
    from repro.discovery.builder import IndexBuilder
    from repro.discovery.persistence import save_index

    builder = IndexBuilder(engine, num_shards=num_shards, max_workers=max_workers)
    for table in tables:
        builder.add_table(table, key_columns)
    index = builder.build()
    if persist_to is not None:
        save_index(index, persist_to)
    return index


def full_join_estimate_for_dataset(
    dataset: SyntheticDataset,
    estimator_spec: EstimatorSpec,
    *,
    random_state: RandomState = None,
) -> float:
    """Estimate MI from the full (virtual) join of a synthetic dataset.

    By construction of the decomposition, the post-join sample is exactly
    ``(dataset.x, dataset.y)``, so the full join never needs to be executed.
    """
    return estimator_spec.estimate(
        dataset.x.tolist(), dataset.y.tolist(), random_state=random_state
    )
