"""Evaluation harness: metrics, runners and per-figure/table experiments.

Each module in :mod:`repro.evaluation.experiments` regenerates one table or
figure of the paper's Section V (see DESIGN.md for the experiment index).
Experiments return plain data structures (lists of row dicts plus summary
dicts) so they can be rendered as text reports, asserted on in tests, and
timed by the benchmark harness.
"""

from repro.evaluation.metrics import (
    mean_squared_error,
    root_mean_squared_error,
    mean_absolute_error,
    mean_bias,
    pearson_correlation,
    spearman_correlation,
)
from repro.evaluation.reporting import format_table, format_kv, indent
from repro.evaluation.runner import (
    EstimatorSpec,
    trinomial_estimator_specs,
    cdunif_estimator_specs,
    sketch_estimate_for_dataset,
    full_join_estimate_for_dataset,
    SketchRunRecord,
)

__all__ = [
    "mean_squared_error",
    "root_mean_squared_error",
    "mean_absolute_error",
    "mean_bias",
    "pearson_correlation",
    "spearman_correlation",
    "format_table",
    "format_kv",
    "indent",
    "EstimatorSpec",
    "trinomial_estimator_specs",
    "cdunif_estimator_specs",
    "sketch_estimate_for_dataset",
    "full_join_estimate_for_dataset",
    "SketchRunRecord",
]
