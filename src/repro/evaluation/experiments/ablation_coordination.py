"""E9 (ablation) — Value of sample coordination.

Section IV argues that coordinated sampling trades sample independence for a
larger sketch-join size, and that TUPSK's tuple-level coordination is the
sweet spot: INDSK (no coordination) recovers few join rows, key-level
coordination (CSK/LV2SK) recovers many but with non-uniform inclusion
probabilities.  This ablation isolates the effect by running the three
designs on the same datasets and reporting join size and accuracy side by
side, separately per key-generation process.
"""

from __future__ import annotations

import math

import numpy as np

from repro.evaluation.experiments.result import ExperimentResult
from repro.evaluation.metrics import mean_squared_error
from repro.evaluation.runner import sketch_estimate_for_dataset, trinomial_estimator_specs
from repro.synthetic.benchmark import generate_trinomial_dataset
from repro.synthetic.decompose import KeyGeneration
from repro.util.rng import RandomState, ensure_rng, spawn_rng

__all__ = ["run_ablation_coordination"]


def run_ablation_coordination(
    *,
    m: int = 64,
    sketch_size: int = 256,
    sample_size: int = 10_000,
    datasets_per_key_generation: int = 6,
    methods: tuple[str, ...] = ("INDSK", "CSK", "LV2SK", "TUPSK"),
    random_state: RandomState = 0,
) -> ExperimentResult:
    """Compare no / key-level / tuple-level coordination on identical data."""
    rng = ensure_rng(random_state)
    key_generations = (KeyGeneration.KEY_IND, KeyGeneration.KEY_DEP)
    child_rngs = spawn_rng(rng, len(key_generations) * datasets_per_key_generation)
    mle_spec = trinomial_estimator_specs()[0]

    rows: list[dict[str, object]] = []
    child_index = 0
    for key_generation in key_generations:
        for _ in range(datasets_per_key_generation):
            child = child_rngs[child_index]
            child_index += 1
            dataset = generate_trinomial_dataset(
                m, sample_size, key_generation=key_generation, random_state=child
            )
            for method in methods:
                record = sketch_estimate_for_dataset(
                    dataset,
                    method,
                    capacity=sketch_size,
                    estimator_spec=mle_spec,
                    random_state=child,
                )
                rows.append(record.as_row())

    summary: list[dict[str, object]] = []
    for key_generation in key_generations:
        for method in methods:
            subset = [
                row
                for row in rows
                if row["method"] == method
                and row["key_generation"] == key_generation.value
                and not math.isnan(row["estimate"])
            ]
            if not subset:
                continue
            summary.append(
                {
                    "key_generation": key_generation.value,
                    "method": method,
                    "datasets": len(subset),
                    "avg_join_size": float(np.mean([row["join_size"] for row in subset])),
                    "mse": mean_squared_error(
                        [row["estimate"] for row in subset],
                        [row["true_mi"] for row in subset],
                    ),
                }
            )

    return ExperimentResult(
        name="ablation_coordination",
        paper_reference="Section IV discussion (coordination vs independence)",
        rows=rows,
        summary=summary,
        parameters={
            "m": m,
            "sketch_size": sketch_size,
            "sample_size": sample_size,
            "datasets_per_key_generation": datasets_per_key_generation,
        },
        notes=(
            "Expected shape: INDSK has the smallest join size; TUPSK matches the "
            "coordinated join sizes under KeyInd and stays accurate under KeyDep."
        ),
    )
