"""E4 — Effect of distinct values on Trinomial (Figure 4).

With the sketch size fixed at n = 256, increasing the Trinomial parameter
``m`` (the number of distinct values) increases the bias of the estimators
that treat the data as discrete (MLE, and to a lesser extent Mixed-KSG); the
paper's Figure 4 shows one panel per ``m`` in {16, 64, 256, 512, 1024}, with
TUPSK sketches.
"""

from __future__ import annotations

import math

from repro.evaluation.experiments.result import ExperimentResult
from repro.evaluation.metrics import mean_bias, mean_squared_error
from repro.evaluation.runner import sketch_estimate_for_dataset, trinomial_estimator_specs
from repro.synthetic.benchmark import generate_trinomial_dataset
from repro.synthetic.decompose import KeyGeneration
from repro.util.rng import RandomState, ensure_rng, spawn_rng

__all__ = ["run_figure4"]


def run_figure4(
    *,
    m_values: tuple[int, ...] = (16, 64, 256, 512, 1024),
    sketch_size: int = 256,
    sample_size: int = 10_000,
    datasets_per_m: int = 6,
    method: str = "TUPSK",
    key_generation: KeyGeneration = KeyGeneration.KEY_IND,
    random_state: RandomState = 0,
) -> ExperimentResult:
    """Regenerate the panels of Figure 4 (Trinomial, TUPSK, n=256, m swept)."""
    rng = ensure_rng(random_state)
    child_rngs = spawn_rng(rng, len(m_values) * datasets_per_m)
    specs = trinomial_estimator_specs()

    rows: list[dict[str, object]] = []
    child_index = 0
    for m in m_values:
        for _ in range(datasets_per_m):
            child = child_rngs[child_index]
            child_index += 1
            dataset = generate_trinomial_dataset(
                m, sample_size, key_generation=key_generation, random_state=child
            )
            for spec in specs:
                record = sketch_estimate_for_dataset(
                    dataset,
                    method,
                    capacity=sketch_size,
                    estimator_spec=spec,
                    random_state=child,
                )
                rows.append(record.as_row())

    summary: list[dict[str, object]] = []
    for m in m_values:
        for spec in specs:
            subset = [
                row
                for row in rows
                if row["m"] == m
                and row["estimator"] == spec.label
                and not math.isnan(row["estimate"])
            ]
            if not subset:
                continue
            estimates = [row["estimate"] for row in subset]
            references = [row["true_mi"] for row in subset]
            summary.append(
                {
                    "m": m,
                    "estimator": spec.label,
                    "datasets": len(subset),
                    "bias": mean_bias(estimates, references),
                    "mse": mean_squared_error(estimates, references),
                }
            )

    return ExperimentResult(
        name="figure4",
        paper_reference="Figure 4 (Trinomial, TUPSK, n=256, m in {16..1024})",
        rows=rows,
        summary=summary,
        parameters={
            "m_values": m_values,
            "sketch_size": sketch_size,
            "sample_size": sample_size,
            "datasets_per_m": datasets_per_m,
            "method": method,
        },
        notes=(
            "Expected shape: the MLE bias grows with m (strong over-estimation at "
            "m=512/1024); KSG-family estimators are less affected."
        ),
    )
