"""E10 (ablation) — Choice of the featurization (aggregation) function.

Section III-B discusses how the featurization function shapes the derived
feature's distribution and hence its MI with the target: for a candidate
whose per-key *average* drives the target, ``AVG`` preserves the signal,
``MODE``/``MAX`` retain part of it, and ``COUNT`` destroys it entirely
(making the feature depend only on the key-frequency distribution).

The scenario mirrors the running taxi/weather example: the candidate stores
several readings per key (hourly weather per date) and the base table's
target is a noisy function of the per-key daily average.  The ablation
reports, per aggregation function, the MI estimated on the full join and on
a TUPSK sketch join.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.mixed_ksg import MixedKSGEstimator
from repro.evaluation.experiments.result import ExperimentResult
from repro.relational.column import Column
from repro.relational.featurize import augment
from repro.relational.table import Table
from repro.sketches.base import get_builder
from repro.sketches.estimate import estimate_mi_from_sketches
from repro.util.rng import RandomState, ensure_rng

__all__ = ["run_ablation_aggregation", "build_weather_scenario"]


def build_weather_scenario(
    *,
    num_keys: int = 400,
    readings_per_key: int = 8,
    noise: float = 0.3,
    random_state: RandomState = 0,
) -> tuple[Table, Table]:
    """Build a (base, candidate) pair where the target tracks the per-key average.

    The candidate table has ``readings_per_key`` rows per key (e.g. hourly
    temperature readings per date); the base table has one row per key with
    ``target = avg(readings) + noise``.
    """
    rng = ensure_rng(random_state)
    keys = [f"2019-{1 + index // 28:02d}-{1 + index % 28:02d}::{index}" for index in range(num_keys)]
    candidate_keys: list[str] = []
    candidate_values: list[float] = []
    per_key_average: dict[str, float] = {}
    for key in keys:
        base_level = float(rng.normal(15.0, 8.0))
        readings = base_level + rng.normal(0.0, 2.0, size=readings_per_key)
        candidate_keys.extend([key] * readings_per_key)
        candidate_values.extend(float(value) for value in readings)
        per_key_average[key] = float(np.mean(readings))
    targets = [
        per_key_average[key] + float(rng.normal(0.0, noise * 8.0)) for key in keys
    ]
    base = Table(
        [Column("date", keys), Column("demand", targets)],
        name="taxi_demand",
    )
    candidate = Table(
        [Column("date", candidate_keys), Column("temperature", candidate_values)],
        name="hourly_weather",
    )
    return base, candidate


def run_ablation_aggregation(
    *,
    aggregates: tuple[str, ...] = ("avg", "max", "mode", "count"),
    num_keys: int = 400,
    readings_per_key: int = 8,
    sketch_size: int = 256,
    random_state: RandomState = 0,
) -> ExperimentResult:
    """Measure how the featurization function changes the feature/target MI."""
    rng = ensure_rng(random_state)
    base, candidate = build_weather_scenario(
        num_keys=num_keys, readings_per_key=readings_per_key, random_state=rng
    )
    estimator = MixedKSGEstimator()

    summary: list[dict[str, object]] = []
    for agg in aggregates:
        feature_name = f"{agg}_temperature"
        augmented = augment(
            base,
            candidate,
            base_key="date",
            candidate_key="date",
            candidate_value="temperature",
            agg=agg,
            feature_name=feature_name,
        ).drop_nulls([feature_name, "demand"])
        full_mi = estimator.estimate(
            augmented.column(feature_name).values, augmented.column("demand").values
        )

        builder = get_builder("TUPSK", capacity=sketch_size, seed=0)
        base_sketch = builder.sketch_base(base, "date", "demand")
        candidate_sketch = builder.sketch_candidate(
            candidate, "date", "temperature", agg=agg
        )
        sketch_estimate = estimate_mi_from_sketches(
            base_sketch, candidate_sketch, estimator=estimator
        )

        summary.append(
            {
                "aggregate": agg.upper(),
                "full_join_mi": full_mi,
                "sketch_mi": sketch_estimate.mi,
                "sketch_join_size": sketch_estimate.join_size,
            }
        )

    return ExperimentResult(
        name="ablation_aggregation",
        paper_reference="Section III-B discussion (featurization choice)",
        rows=list(summary),
        summary=summary,
        parameters={
            "num_keys": num_keys,
            "readings_per_key": readings_per_key,
            "sketch_size": sketch_size,
        },
        notes=(
            "Expected shape: AVG preserves the planted signal best; COUNT carries "
            "(nearly) no information about the target."
        ),
    )
