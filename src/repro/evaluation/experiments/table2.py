"""E6 — Real-data accuracy of the sketching methods (Table II).

Table II compares LV2SK, PRISK and TUPSK (n = 1024) on pairs of two-column
tables drawn from two open-data collections, using the MI estimated on the
full join as the reference.  Reported per (collection, sketch): the average
sketch-join size, Spearman's rank correlation between sketch and full-join
estimates, and the MSE.  Estimates with sketch-join size <= 100 are dropped.

Since the original snapshots are unavailable offline, the collections are the
simulated ``nyc`` and ``wbf`` repositories (see DESIGN.md, substitution #1).
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiments.realdata import full_join_mi, sketch_mi
from repro.evaluation.experiments.result import ExperimentResult
from repro.evaluation.metrics import mean_squared_error, spearman_correlation
from repro.opendata.pairs import sample_table_pairs
from repro.opendata.repository import generate_repository
from repro.util.rng import RandomState, ensure_rng, spawn_rng

__all__ = ["run_table2", "DEFAULT_TABLE2_METHODS"]

DEFAULT_TABLE2_METHODS = ("LV2SK", "PRISK", "TUPSK")


def run_table2(
    *,
    profiles: tuple[str, ...] = ("nyc", "wbf"),
    methods: tuple[str, ...] = DEFAULT_TABLE2_METHODS,
    sketch_size: int = 1024,
    num_pairs: int = 40,
    tables_per_repository: int = 40,
    min_join_size: int = 100,
    random_state: RandomState = 0,
) -> ExperimentResult:
    """Regenerate Table II on the simulated repositories."""
    rng = ensure_rng(random_state)
    repo_rngs = spawn_rng(rng, len(profiles))

    rows: list[dict[str, object]] = []
    for profile, repo_rng in zip(profiles, repo_rngs):
        repository = generate_repository(
            profile, random_state=repo_rng, num_tables=tables_per_repository
        )
        pairs = sample_table_pairs(
            repository, num_pairs, same_domain_only=True, random_state=repo_rng
        )
        for pair_index, pair in enumerate(pairs):
            reference = full_join_mi(pair)
            if reference is None:
                continue
            for method in methods:
                estimate = sketch_mi(
                    pair,
                    method,
                    capacity=sketch_size,
                    min_join_size=min_join_size,
                )
                if estimate is None:
                    continue
                rows.append(
                    {
                        "collection": profile.upper(),
                        "pair": pair_index,
                        "method": method,
                        "estimator": estimate.estimator,
                        "full_join_mi": reference.mi,
                        "sketch_mi": estimate.mi,
                        "sketch_join_size": estimate.join_size,
                        "full_join_rows": reference.join_rows,
                    }
                )

    summary: list[dict[str, object]] = []
    for profile in profiles:
        collection = profile.upper()
        for method in methods:
            subset = [
                row
                for row in rows
                if row["collection"] == collection and row["method"] == method
            ]
            if len(subset) < 2:
                continue
            sketch_estimates = [row["sketch_mi"] for row in subset]
            references = [row["full_join_mi"] for row in subset]
            summary.append(
                {
                    "dataset": collection,
                    "sketch": method,
                    "pairs": len(subset),
                    "avg_join_size": float(
                        np.mean([row["sketch_join_size"] for row in subset])
                    ),
                    "spearman": spearman_correlation(sketch_estimates, references),
                    "mse": mean_squared_error(sketch_estimates, references),
                }
            )

    return ExperimentResult(
        name="table2",
        paper_reference="Table II (real-data collections, n=1024)",
        rows=rows,
        summary=summary,
        parameters={
            "profiles": profiles,
            "sketch_size": sketch_size,
            "num_pairs": num_pairs,
            "tables_per_repository": tables_per_repository,
            "min_join_size": min_join_size,
        },
        notes=(
            "Expected shape: TUPSK attains the strongest Spearman correlation and "
            "the lowest MSE despite a somewhat smaller average join size than the "
            "two-level methods."
        ),
    )
