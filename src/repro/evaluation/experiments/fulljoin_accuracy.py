"""E1 — True vs. estimated MI on full-table joins (Section V-B1).

The paper establishes a baseline for estimator behaviour: with the fully
materialized join (N = 10k rows), every applicable estimator tracks the
analytic MI closely (RMSE < 0.07, Pearson > 0.99).  This experiment
regenerates those two statistics per (distribution, estimator) pair.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiments.result import ExperimentResult
from repro.evaluation.metrics import pearson_correlation, root_mean_squared_error
from repro.evaluation.runner import (
    cdunif_estimator_specs,
    full_join_estimate_for_dataset,
    trinomial_estimator_specs,
)
from repro.synthetic.benchmark import generate_cdunif_dataset, generate_trinomial_dataset
from repro.util.rng import RandomState, ensure_rng, spawn_rng

__all__ = ["run_fulljoin_accuracy"]


def run_fulljoin_accuracy(
    *,
    datasets_per_distribution: int = 8,
    sample_size: int = 10_000,
    trinomial_m: int = 64,
    cdunif_m_range: tuple[int, int] = (2, 1000),
    random_state: RandomState = 0,
) -> ExperimentResult:
    """Estimate MI on fully-joined synthetic data and compare with the analytic MI.

    Parameters mirror the paper: Trinomial (MLE, DC-KSG, Mixed-KSG) and
    CDUnif (DC-KSG, Mixed-KSG) with N = 10k rows; the target MI of each
    Trinomial dataset is drawn uniformly in [0, 3.5] and the CDUnif parameter
    ``m`` uniformly in ``cdunif_m_range``.
    """
    rng = ensure_rng(random_state)
    rows: list[dict[str, object]] = []
    child_rngs = spawn_rng(rng, 2 * datasets_per_distribution)

    for index in range(datasets_per_distribution):
        dataset = generate_trinomial_dataset(
            trinomial_m, sample_size, random_state=child_rngs[index]
        )
        for spec in trinomial_estimator_specs():
            estimate = full_join_estimate_for_dataset(
                dataset, spec, random_state=child_rngs[index]
            )
            rows.append(
                {
                    "distribution": "Trinomial",
                    "estimator": spec.label,
                    "true_mi": dataset.true_mi,
                    "estimate": estimate,
                }
            )

    for index in range(datasets_per_distribution):
        child = child_rngs[datasets_per_distribution + index]
        m = int(ensure_rng(child).integers(cdunif_m_range[0], cdunif_m_range[1] + 1))
        dataset = generate_cdunif_dataset(m, sample_size, random_state=child)
        for spec in cdunif_estimator_specs():
            estimate = full_join_estimate_for_dataset(dataset, spec, random_state=child)
            rows.append(
                {
                    "distribution": "CDUnif",
                    "estimator": spec.label,
                    "true_mi": dataset.true_mi,
                    "estimate": estimate,
                }
            )

    summary: list[dict[str, object]] = []
    for distribution in ("Trinomial", "CDUnif"):
        for estimator in sorted({row["estimator"] for row in rows if row["distribution"] == distribution}):
            subset = [
                row
                for row in rows
                if row["distribution"] == distribution and row["estimator"] == estimator
            ]
            estimates = [row["estimate"] for row in subset]
            references = [row["true_mi"] for row in subset]
            summary.append(
                {
                    "distribution": distribution,
                    "estimator": estimator,
                    "datasets": len(subset),
                    "rmse": root_mean_squared_error(estimates, references),
                    "pearson": pearson_correlation(estimates, references),
                    "mean_true_mi": float(np.mean(references)),
                }
            )

    return ExperimentResult(
        name="fulljoin_accuracy",
        paper_reference="Section V-B1 (text: RMSE < 0.07, Pearson > 0.99)",
        rows=rows,
        summary=summary,
        parameters={
            "datasets_per_distribution": datasets_per_distribution,
            "sample_size": sample_size,
            "trinomial_m": trinomial_m,
        },
        notes=(
            "Full-join estimates should track the analytic MI closely for every "
            "estimator; this is the reference point for the sketch experiments."
        ),
    )
