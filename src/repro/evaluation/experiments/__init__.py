"""Per-table / per-figure experiment modules.

Every module regenerates one artifact of the paper's Section V (see the
experiment index in DESIGN.md) and follows the same structure: a
``run_<experiment>()`` function producing an :class:`ExperimentResult`, whose
``report()`` method renders the same rows/series the paper reports.
"""

from repro.evaluation.experiments.result import ExperimentResult
from repro.evaluation.experiments.fulljoin_accuracy import run_fulljoin_accuracy
from repro.evaluation.experiments.figure2 import run_figure2
from repro.evaluation.experiments.figure3 import run_figure3
from repro.evaluation.experiments.figure4 import run_figure4
from repro.evaluation.experiments.table1 import run_table1
from repro.evaluation.experiments.table2 import run_table2
from repro.evaluation.experiments.figure5 import run_figure5
from repro.evaluation.experiments.performance import run_performance
from repro.evaluation.experiments.ablation_coordination import run_ablation_coordination
from repro.evaluation.experiments.ablation_aggregation import run_ablation_aggregation
from repro.evaluation.experiments.ablation_sketch_size import run_ablation_sketch_size

__all__ = [
    "ExperimentResult",
    "run_fulljoin_accuracy",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_table1",
    "run_table2",
    "run_figure5",
    "run_performance",
    "run_ablation_coordination",
    "run_ablation_aggregation",
    "run_ablation_sketch_size",
]
