"""E11 (ablation) — effect of the sketch size on estimation error.

Section IV-B argues (via the subsampling error bounds of Wang & Ding and
Chen & Wang) that the approximation error of sketch-based MI estimates
shrinks at a near square-root rate in the sketch-join size, and the paper
observes this behaviour experimentally.  This ablation sweeps the single
parameter of the proposed sketch — its size ``n`` — on Trinomial data with
known MI and reports the RMSE against the analytic value for each size, so
the error-vs-budget trade-off is visible directly.
"""

from __future__ import annotations

import math

from repro.evaluation.experiments.result import ExperimentResult
from repro.evaluation.metrics import root_mean_squared_error
from repro.evaluation.runner import sketch_estimate_for_dataset, trinomial_estimator_specs
from repro.synthetic.benchmark import generate_trinomial_dataset
from repro.synthetic.decompose import KeyGeneration
from repro.util.rng import RandomState, ensure_rng, spawn_rng

__all__ = ["run_ablation_sketch_size"]


def run_ablation_sketch_size(
    *,
    sketch_sizes: tuple[int, ...] = (64, 128, 256, 512, 1024),
    m: int = 64,
    sample_size: int = 10_000,
    num_datasets: int = 6,
    method: str = "TUPSK",
    key_generation: KeyGeneration = KeyGeneration.KEY_DEP,
    random_state: RandomState = 0,
) -> ExperimentResult:
    """Sweep the sketch size and report RMSE against the analytic MI."""
    rng = ensure_rng(random_state)
    child_rngs = spawn_rng(rng, num_datasets)
    mle_spec = trinomial_estimator_specs()[0]

    datasets = [
        generate_trinomial_dataset(
            m, sample_size, key_generation=key_generation, random_state=child
        )
        for child in child_rngs
    ]

    rows: list[dict[str, object]] = []
    for sketch_size in sketch_sizes:
        for dataset in datasets:
            record = sketch_estimate_for_dataset(
                dataset,
                method,
                capacity=sketch_size,
                estimator_spec=mle_spec,
                random_state=rng,
            )
            row = record.as_row()
            row["sketch_size"] = sketch_size
            rows.append(row)

    summary: list[dict[str, object]] = []
    for sketch_size in sketch_sizes:
        subset = [
            row
            for row in rows
            if row["sketch_size"] == sketch_size and not math.isnan(row["estimate"])
        ]
        rmse = root_mean_squared_error(
            [row["estimate"] for row in subset], [row["true_mi"] for row in subset]
        )
        summary.append(
            {
                "sketch_size": sketch_size,
                "datasets": len(subset),
                "rmse": rmse,
                "rmse_times_sqrt_n": rmse * math.sqrt(sketch_size),
                "avg_join_size": sum(row["join_size"] for row in subset) / len(subset),
            }
        )

    return ExperimentResult(
        name="ablation_sketch_size",
        paper_reference="Section IV-B accuracy discussion (error vs sketch size)",
        rows=rows,
        summary=summary,
        parameters={
            "sketch_sizes": sketch_sizes,
            "m": m,
            "sample_size": sample_size,
            "num_datasets": num_datasets,
            "method": method,
            "key_generation": key_generation.value,
        },
        notes=(
            "Expected shape: RMSE decreases monotonically with the sketch size, at "
            "a roughly square-root rate (rmse * sqrt(n) stays within a small factor)."
        ),
    )
