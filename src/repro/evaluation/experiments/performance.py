"""E8 — Runtime of sketch-based vs full-join MI estimation (Section V-D).

The paper reports exemplar runtimes for sketch size n = 256 as the base
table grows from 5k to 20k rows: the full-join time and full-data MI
estimation time grow with the table size, while the sketch-join time and the
sketch-based MI estimation time stay (nearly) constant and are one to two
orders of magnitude smaller.

Absolute numbers differ from the paper (pure Python vs the authors' runtime)
but the reported quantity — the ratio between the two pipelines and its
trend with the table size — is preserved.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.evaluation.experiments.result import ExperimentResult
from repro.evaluation.runner import trinomial_estimator_specs
from repro.relational.featurize import augment
from repro.sketches.base import get_builder
from repro.sketches.estimate import estimate_mi_from_join
from repro.sketches.join import join_sketches
from repro.synthetic.benchmark import generate_trinomial_dataset
from repro.synthetic.decompose import KeyGeneration
from repro.util.rng import RandomState, ensure_rng

__all__ = ["run_performance"]


def _time_ms(function: Callable[[], object], repetitions: int = 3) -> float:
    """Best-of-``repetitions`` wall-clock time of ``function`` in milliseconds."""
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        function()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return best


def run_performance(
    *,
    table_sizes: tuple[int, ...] = (5_000, 10_000, 20_000),
    sketch_size: int = 256,
    m: int = 64,
    repetitions: int = 3,
    random_state: RandomState = 0,
) -> ExperimentResult:
    """Measure full-join vs sketch-based estimation time as the table grows."""
    rng = ensure_rng(random_state)
    mle_spec = trinomial_estimator_specs()[0]

    summary: list[dict[str, object]] = []
    rows: list[dict[str, object]] = []
    for size in table_sizes:
        dataset = generate_trinomial_dataset(
            m, size, key_generation=KeyGeneration.KEY_DEP, random_state=rng
        )

        def run_full_join():
            return augment(
                dataset.train_table,
                dataset.cand_table,
                base_key="key",
                candidate_key="key",
                candidate_value="feature",
                agg="avg",
            )

        augmented = run_full_join()
        feature_values = augmented.column("avg_feature").values
        target_values = augmented.column("target").values

        def run_full_mi():
            return mle_spec.estimator.estimate(feature_values, target_values)

        builder = get_builder("TUPSK", capacity=sketch_size, seed=0)
        base_sketch = builder.sketch_base(dataset.train_table, "key", "target")
        candidate_sketch = builder.sketch_candidate(
            dataset.cand_table, "key", "feature", agg="avg"
        )

        def run_sketch_join():
            return join_sketches(base_sketch, candidate_sketch)

        join_result = run_sketch_join()

        def run_sketch_mi():
            return estimate_mi_from_join(join_result, estimator=mle_spec.estimator)

        measurement = {
            "table_rows": size,
            "full_join_ms": _time_ms(run_full_join, repetitions),
            "full_mi_ms": _time_ms(run_full_mi, repetitions),
            "sketch_join_ms": _time_ms(run_sketch_join, repetitions),
            "sketch_mi_ms": _time_ms(run_sketch_mi, repetitions),
        }
        measurement["speedup_join"] = (
            measurement["full_join_ms"] / measurement["sketch_join_ms"]
            if measurement["sketch_join_ms"] > 0
            else float("inf")
        )
        measurement["speedup_mi"] = (
            measurement["full_mi_ms"] / measurement["sketch_mi_ms"]
            if measurement["sketch_mi_ms"] > 0
            else float("inf")
        )
        summary.append(measurement)
        rows.append(measurement)

    return ExperimentResult(
        name="performance",
        paper_reference="Section V-D (runtime, n=256, N from 5k to 20k)",
        rows=rows,
        summary=summary,
        parameters={
            "table_sizes": table_sizes,
            "sketch_size": sketch_size,
            "m": m,
            "repetitions": repetitions,
        },
        notes=(
            "Expected shape: full-join and full-MI times grow with the table size "
            "while sketch-join and sketch-MI times stay roughly constant."
        ),
    )
