"""E2 — Sketch MI estimates vs. true MI, Trinomial m=512 (Figure 2).

For Trinomial data with m = 512 and sketches of size n = 256, the paper
plots the sketch MI estimate against the analytic MI for LV2SK and TUPSK,
for three estimators (MLE, Mixed-KSG, DC-KSG) and two key-generation
processes (KeyInd, KeyDep).  The headline observations:

* estimates are biased at this sample size, with the bias depending on the
  estimator;
* LV2SK's bias grows under KeyDep (key/target dependence), while TUPSK is
  essentially unaffected by the key distribution.
"""

from __future__ import annotations

import math

from repro.evaluation.experiments.result import ExperimentResult
from repro.evaluation.metrics import mean_bias, mean_squared_error
from repro.evaluation.runner import sketch_estimate_for_dataset, trinomial_estimator_specs
from repro.synthetic.benchmark import generate_trinomial_dataset, redecompose
from repro.synthetic.decompose import KeyGeneration
from repro.util.rng import RandomState, ensure_rng, spawn_rng

__all__ = ["run_figure2"]


def run_figure2(
    *,
    m: int = 512,
    sketch_size: int = 256,
    sample_size: int = 10_000,
    datasets_per_key_generation: int = 8,
    methods: tuple[str, ...] = ("LV2SK", "TUPSK"),
    random_state: RandomState = 0,
) -> ExperimentResult:
    """Regenerate the series of Figure 2 (one row per method/estimator/keygen)."""
    rng = ensure_rng(random_state)
    key_generations = (KeyGeneration.KEY_IND, KeyGeneration.KEY_DEP)
    child_rngs = spawn_rng(rng, datasets_per_key_generation)
    specs = trinomial_estimator_specs()

    rows: list[dict[str, object]] = []
    for child in child_rngs:
        # Pair the key generations on the same (X, Y) sample so differences
        # between KeyInd and KeyDep are attributable to the key distribution.
        base_dataset = generate_trinomial_dataset(
            m, sample_size, key_generation=KeyGeneration.KEY_IND, random_state=child
        )
        datasets = {
            KeyGeneration.KEY_IND: base_dataset,
            KeyGeneration.KEY_DEP: redecompose(base_dataset, KeyGeneration.KEY_DEP),
        }
        for key_generation in key_generations:
            dataset = datasets[key_generation]
            for method in methods:
                for spec in specs:
                    record = sketch_estimate_for_dataset(
                        dataset,
                        method,
                        capacity=sketch_size,
                        estimator_spec=spec,
                        random_state=child,
                    )
                    rows.append(record.as_row())

    summary: list[dict[str, object]] = []
    for method in methods:
        for spec in specs:
            for key_generation in key_generations:
                subset = [
                    row
                    for row in rows
                    if row["method"] == method
                    and row["estimator"] == spec.label
                    and row["key_generation"] == key_generation.value
                    and not math.isnan(row["estimate"])
                ]
                if not subset:
                    continue
                estimates = [row["estimate"] for row in subset]
                references = [row["true_mi"] for row in subset]
                summary.append(
                    {
                        "method": method,
                        "estimator": spec.label,
                        "key_generation": key_generation.value,
                        "datasets": len(subset),
                        "bias": mean_bias(estimates, references),
                        "mse": mean_squared_error(estimates, references),
                        "avg_join_size": sum(row["join_size"] for row in subset)
                        / len(subset),
                    }
                )

    return ExperimentResult(
        name="figure2",
        paper_reference="Figure 2 (Trinomial m=512, n=256)",
        rows=rows,
        summary=summary,
        parameters={
            "m": m,
            "sketch_size": sketch_size,
            "sample_size": sample_size,
            "datasets_per_key_generation": datasets_per_key_generation,
        },
        notes=(
            "Expected shape: for LV2SK the KeyDep bias/MSE exceeds the KeyInd one "
            "(most visibly for MLE); for TUPSK the two key generations behave alike."
        ),
    )
