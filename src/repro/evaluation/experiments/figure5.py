"""E7 — Effect of the sketch-join size on real data (Figure 5).

Figure 5 plots, for the WBF collection, the sketch MI estimate (TUPSK,
n = 1024) against the full-join estimate, one panel per minimum sketch-join
size (128, 256, 512, 768) and one series per estimator.  The observations
mirror the synthetic results: with small joins the MLE estimator
over-estimates and the KSG-family estimators collapse toward zero; with
larger joins the scatter tightens around the diagonal.

The summary reports, per (threshold, estimator): the number of surviving
pairs, the mean bias and the MSE of the sketch estimates with respect to the
full-join estimates.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiments.realdata import full_join_mi, sketch_mi
from repro.evaluation.experiments.result import ExperimentResult
from repro.evaluation.metrics import mean_bias, mean_squared_error
from repro.opendata.pairs import sample_table_pairs
from repro.opendata.repository import generate_repository
from repro.util.rng import RandomState, ensure_rng

__all__ = ["run_figure5", "DEFAULT_THRESHOLDS"]

DEFAULT_THRESHOLDS = (128, 256, 512, 768)


def run_figure5(
    *,
    profile: str = "wbf",
    method: str = "TUPSK",
    sketch_size: int = 1024,
    num_pairs: int = 50,
    tables_per_repository: int = 40,
    thresholds: tuple[int, ...] = DEFAULT_THRESHOLDS,
    random_state: RandomState = 0,
) -> ExperimentResult:
    """Regenerate the panels of Figure 5 (sketch vs full-join MI by join size)."""
    rng = ensure_rng(random_state)
    repository = generate_repository(
        profile, random_state=rng, num_tables=tables_per_repository
    )
    pairs = sample_table_pairs(
        repository, num_pairs, same_domain_only=True, random_state=rng
    )

    rows: list[dict[str, object]] = []
    for pair_index, pair in enumerate(pairs):
        reference = full_join_mi(pair)
        if reference is None:
            continue
        estimate = sketch_mi(
            pair,
            method,
            capacity=sketch_size,
            min_join_size=2,
        )
        if estimate is None:
            continue
        rows.append(
            {
                "pair": pair_index,
                "estimator": estimate.estimator,
                "full_join_mi": reference.mi,
                "sketch_mi": estimate.mi,
                "sketch_join_size": estimate.join_size,
            }
        )

    summary: list[dict[str, object]] = []
    estimators = sorted({row["estimator"] for row in rows})
    for threshold in thresholds:
        for estimator in estimators:
            subset = [
                row
                for row in rows
                if row["sketch_join_size"] > threshold and row["estimator"] == estimator
            ]
            if not subset:
                continue
            sketch_estimates = [row["sketch_mi"] for row in subset]
            references = [row["full_join_mi"] for row in subset]
            summary.append(
                {
                    "join_size_gt": threshold,
                    "estimator": estimator,
                    "pairs": len(subset),
                    "bias": mean_bias(sketch_estimates, references),
                    "mse": mean_squared_error(sketch_estimates, references),
                    "avg_join_size": float(
                        np.mean([row["sketch_join_size"] for row in subset])
                    ),
                }
            )

    return ExperimentResult(
        name="figure5",
        paper_reference="Figure 5 (WBF collection, TUPSK, n=1024, join-size panels)",
        rows=rows,
        summary=summary,
        parameters={
            "profile": profile,
            "method": method,
            "sketch_size": sketch_size,
            "num_pairs": num_pairs,
            "tables_per_repository": tables_per_repository,
        },
        notes=(
            "Expected shape: accuracy (bias/MSE) improves monotonically as the "
            "minimum sketch-join size grows."
        ),
    )
