"""Common result container for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.evaluation.reporting import format_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Raw rows plus aggregated summary of one experiment.

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``"figure2"``).
    paper_reference:
        The table/figure of the paper this experiment regenerates.
    rows:
        Per-measurement records (one dict per dataset/method/estimator
        combination) — the points of a figure.
    summary:
        Aggregated records (one dict per reported series or table row).
    parameters:
        Parameters the experiment ran with (sketch size, dataset sizes, ...).
    notes:
        Free-text remarks included in the report.
    """

    name: str
    paper_reference: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    summary: list[dict[str, Any]] = field(default_factory=list)
    parameters: dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    def report(self, *, columns: Optional[Sequence[str]] = None, precision: int = 3) -> str:
        """Render the summary as a plain-text table with a header."""
        header = f"== {self.name} ({self.paper_reference}) =="
        params = ", ".join(f"{key}={value}" for key, value in self.parameters.items())
        lines = [header]
        if params:
            lines.append(f"parameters: {params}")
        lines.append(format_table(self.summary, columns, precision=precision))
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)

    def summary_by(self, **filters: Any) -> list[dict[str, Any]]:
        """Summary rows matching all the given key/value filters."""
        return [
            row
            for row in self.summary
            if all(row.get(key) == value for key, value in filters.items())
        ]

    def rows_by(self, **filters: Any) -> list[dict[str, Any]]:
        """Raw rows matching all the given key/value filters."""
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in filters.items())
        ]
