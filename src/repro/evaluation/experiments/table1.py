"""E5 — Comparison to other baselines on synthetic data (Table I).

Table I reports, per distribution family (CDUnif, Trinomial) and sketching
method (CSK, INDSK, LV2SK, PRISK, TUPSK) with n = 256:

* the average sketch-join size and its percentage of n, and
* the mean squared error of the sketch MI estimate w.r.t. the analytic MI,

aggregated over datasets with different key-generation processes and
distribution parameters.
"""

from __future__ import annotations

import math

import numpy as np

from repro.evaluation.experiments.result import ExperimentResult
from repro.evaluation.metrics import mean_squared_error
from repro.evaluation.runner import (
    cdunif_estimator_specs,
    sketch_estimate_for_dataset,
    trinomial_estimator_specs,
)
from repro.synthetic.benchmark import (
    SyntheticDataset,
    generate_cdunif_dataset,
    generate_trinomial_dataset,
)
from repro.synthetic.decompose import KeyGeneration
from repro.util.rng import RandomState, ensure_rng, spawn_rng

__all__ = ["run_table1", "DEFAULT_METHODS"]

DEFAULT_METHODS = ("CSK", "INDSK", "LV2SK", "PRISK", "TUPSK")


def _generate_datasets(
    distribution: str,
    count: int,
    sample_size: int,
    trinomial_m_values: tuple[int, ...],
    cdunif_m_range: tuple[int, int],
    rng,
) -> list[SyntheticDataset]:
    key_generations = (KeyGeneration.KEY_IND, KeyGeneration.KEY_DEP)
    datasets: list[SyntheticDataset] = []
    children = spawn_rng(rng, count)
    for index in range(count):
        child = children[index]
        key_generation = key_generations[index % len(key_generations)]
        if distribution == "trinomial":
            m = trinomial_m_values[index % len(trinomial_m_values)]
            datasets.append(
                generate_trinomial_dataset(
                    m, sample_size, key_generation=key_generation, random_state=child
                )
            )
        else:
            m = int(ensure_rng(child).integers(cdunif_m_range[0], cdunif_m_range[1] + 1))
            datasets.append(
                generate_cdunif_dataset(
                    m, sample_size, key_generation=key_generation, random_state=child
                )
            )
    return datasets


def run_table1(
    *,
    sketch_size: int = 256,
    sample_size: int = 10_000,
    datasets_per_distribution: int = 8,
    trinomial_m_values: tuple[int, ...] = (16, 64, 256, 512),
    cdunif_m_range: tuple[int, int] = (2, 500),
    methods: tuple[str, ...] = DEFAULT_METHODS,
    random_state: RandomState = 0,
) -> ExperimentResult:
    """Regenerate Table I (average sketch-join size, % of n, and MSE per method)."""
    rng = ensure_rng(random_state)
    rows: list[dict[str, object]] = []

    for distribution in ("cdunif", "trinomial"):
        datasets = _generate_datasets(
            distribution,
            datasets_per_distribution,
            sample_size,
            trinomial_m_values,
            cdunif_m_range,
            rng,
        )
        specs = (
            trinomial_estimator_specs()
            if distribution == "trinomial"
            else cdunif_estimator_specs()
        )
        for dataset in datasets:
            for method in methods:
                for spec in specs:
                    record = sketch_estimate_for_dataset(
                        dataset,
                        method,
                        capacity=sketch_size,
                        estimator_spec=spec,
                        random_state=rng,
                        min_join_size=3,
                    )
                    rows.append(record.as_row())

    summary: list[dict[str, object]] = []
    for distribution in ("cdunif", "trinomial"):
        label = "CDUnif" if distribution == "cdunif" else "Trinomial"
        for method in methods:
            subset = [
                row
                for row in rows
                if row["distribution"] == distribution and row["method"] == method
            ]
            if not subset:
                continue
            join_sizes = [row["join_size"] for row in subset]
            valid = [row for row in subset if not math.isnan(row["estimate"])]
            mse = (
                mean_squared_error(
                    [row["estimate"] for row in valid],
                    [row["true_mi"] for row in valid],
                )
                if valid
                else float("nan")
            )
            summary.append(
                {
                    "dataset": label,
                    "sketch": method,
                    "avg_sketch_join_size": float(np.mean(join_sizes)),
                    "join_pct_of_n": 100.0 * float(np.mean(join_sizes)) / sketch_size,
                    "mse": mse,
                }
            )

    return ExperimentResult(
        name="table1",
        paper_reference="Table I (synthetic data, n=256, all sketching methods)",
        rows=rows,
        summary=summary,
        parameters={
            "sketch_size": sketch_size,
            "sample_size": sample_size,
            "datasets_per_distribution": datasets_per_distribution,
        },
        notes=(
            "Expected shape: INDSK recovers the fewest join samples and has the "
            "largest MSE; coordinated methods recover close to n samples; TUPSK "
            "attains the lowest MSE with a join size of exactly n."
        ),
    )
