"""E3 — Effect of distinct values on CDUnif (Figure 3).

For the CDUnif distribution the MI is a deterministic, increasing function of
the number of distinct values ``m``; with a fixed sketch size (n = 256) the
``m/n`` ratio grows and estimation becomes harder.  The paper shows that the
estimators break down as the true MI approaches ``log(256) - ... ≈ 4.85``
(i.e. when m exceeds the sketch size), that LV2SK + DC-KSG collapses even
earlier, and that TUPSK degrades more gracefully.

The summary buckets the scatter by true-MI range so the breakdown region is
visible without a plot.
"""

from __future__ import annotations

import math

import numpy as np

from repro.evaluation.experiments.result import ExperimentResult
from repro.evaluation.metrics import mean_bias, mean_squared_error
from repro.evaluation.runner import cdunif_estimator_specs, sketch_estimate_for_dataset
from repro.synthetic.benchmark import generate_cdunif_dataset, redecompose
from repro.synthetic.decompose import KeyGeneration
from repro.util.rng import RandomState, ensure_rng, spawn_rng

__all__ = ["run_figure3"]

#: True-MI buckets used to summarize the scatter (nats).
_MI_BUCKETS = ((0.0, 3.0), (3.0, 4.25), (4.25, 5.0), (5.0, float("inf")))


def _bucket_label(true_mi: float) -> str:
    for low, high in _MI_BUCKETS:
        if low <= true_mi < high:
            if math.isinf(high):
                return f">={low:.2f}"
            return f"[{low:.2f},{high:.2f})"
    return "unknown"


def run_figure3(
    *,
    sketch_size: int = 256,
    sample_size: int = 10_000,
    num_datasets: int = 16,
    m_range: tuple[int, int] = (2, 1000),
    methods: tuple[str, ...] = ("LV2SK", "TUPSK"),
    key_generations: tuple[KeyGeneration, ...] = (
        KeyGeneration.KEY_IND,
        KeyGeneration.KEY_DEP,
    ),
    random_state: RandomState = 0,
) -> ExperimentResult:
    """Regenerate the series of Figure 3 (CDUnif, n=256, m swept)."""
    rng = ensure_rng(random_state)
    child_rngs = spawn_rng(rng, num_datasets)
    specs = cdunif_estimator_specs()
    # Spread m values geometrically so every MI bucket is populated.
    m_values = np.unique(
        np.geomspace(max(m_range[0], 2), m_range[1], num=num_datasets).astype(int)
    )

    rows: list[dict[str, object]] = []
    for index, m in enumerate(m_values):
        child = child_rngs[index % len(child_rngs)]
        base_dataset = generate_cdunif_dataset(
            int(m), sample_size, key_generation=KeyGeneration.KEY_IND, random_state=child
        )
        for key_generation in key_generations:
            dataset = (
                base_dataset
                if key_generation is KeyGeneration.KEY_IND
                else redecompose(base_dataset, key_generation)
            )
            for method in methods:
                for spec in specs:
                    record = sketch_estimate_for_dataset(
                        dataset,
                        method,
                        capacity=sketch_size,
                        estimator_spec=spec,
                        random_state=child,
                    )
                    row = record.as_row()
                    row["mi_bucket"] = _bucket_label(dataset.true_mi)
                    rows.append(row)

    summary: list[dict[str, object]] = []
    for method in methods:
        for spec in specs:
            for key_generation in key_generations:
                for low, high in _MI_BUCKETS:
                    label = _bucket_label(low)
                    subset = [
                        row
                        for row in rows
                        if row["method"] == method
                        and row["estimator"] == spec.label
                        and row["key_generation"] == key_generation.value
                        and row["mi_bucket"] == label
                        and not math.isnan(row["estimate"])
                    ]
                    if not subset:
                        continue
                    estimates = [row["estimate"] for row in subset]
                    references = [row["true_mi"] for row in subset]
                    summary.append(
                        {
                            "method": method,
                            "estimator": spec.label,
                            "key_generation": key_generation.value,
                            "mi_bucket": label,
                            "datasets": len(subset),
                            "bias": mean_bias(estimates, references),
                            "mse": mean_squared_error(estimates, references),
                        }
                    )

    return ExperimentResult(
        name="figure3",
        paper_reference="Figure 3 (CDUnif, n=256, effect of distinct values)",
        rows=rows,
        summary=summary,
        parameters={
            "sketch_size": sketch_size,
            "sample_size": sample_size,
            "num_datasets": num_datasets,
            "m_range": m_range,
        },
        notes=(
            "Expected shape: estimates track the true MI in the low buckets and "
            "collapse (large negative bias) once the true MI exceeds ~4.25-4.85; "
            "TUPSK degrades more gracefully than LV2SK."
        ),
    )
