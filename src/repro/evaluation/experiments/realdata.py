"""Shared helpers for the real-data-style experiments (Table II, Figure 5).

For every (base, candidate) table pair drawn from a simulated repository we
need two measurements:

* the **full-join estimate** — featurize the candidate, perform the actual
  left-outer join, drop unmatched rows and estimate MI on the materialized
  columns (the reference the paper compares against, since the true MI of
  real data is unknown), and
* the **sketch estimate** — build one sketch per side and estimate MI from
  the sketch join.

Both paths use the same data-type-driven estimator selection so their
estimates are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.discovery.query import default_aggregate_for_dtype
from repro.estimators.selection import select_estimator
from repro.exceptions import EstimationError, InsufficientSamplesError
from repro.opendata.pairs import TablePair
from repro.relational.aggregate import AggregateFunction, output_dtype
from repro.relational.featurize import augment
from repro.sketches.base import get_builder
from repro.sketches.estimate import SketchMIEstimate, estimate_mi_from_sketches

__all__ = ["FullJoinMeasurement", "full_join_mi", "sketch_mi", "aggregate_for_pair"]


@dataclass
class FullJoinMeasurement:
    """Reference measurement computed from the materialized join."""

    mi: float
    estimator: str
    join_rows: int
    aggregate: str


def aggregate_for_pair(pair: TablePair) -> AggregateFunction:
    """Featurization function used for a pair (AVG for numeric, MODE for strings)."""
    candidate_values = pair.candidate.table.column(pair.candidate.value_column)
    return default_aggregate_for_dtype(candidate_values.dtype.is_numeric)


def full_join_mi(
    pair: TablePair,
    *,
    min_join_rows: int = 8,
    k: int = 3,
) -> Optional[FullJoinMeasurement]:
    """Materialize the augmentation join of a pair and estimate MI on it.

    Returns ``None`` when the joined (non-null) sample is smaller than
    ``min_join_rows`` or the estimator cannot produce an estimate.
    """
    agg = aggregate_for_pair(pair)
    feature_name = f"{agg.value}_{pair.candidate.value_column}"
    augmented = augment(
        pair.base.table,
        pair.candidate.table,
        base_key=pair.base.key_column,
        candidate_key=pair.candidate.key_column,
        candidate_value=pair.candidate.value_column,
        agg=agg,
        feature_name=feature_name,
    )
    matched = augmented.drop_nulls([feature_name, pair.base.value_column])
    if matched.num_rows < min_join_rows:
        return None
    feature_dtype = output_dtype(
        agg, pair.candidate.table.column(pair.candidate.value_column).dtype
    )
    target_dtype = pair.base.table.column(pair.base.value_column).dtype
    estimator = select_estimator(feature_dtype, target_dtype, k=k)
    try:
        mi = estimator.estimate(
            matched.column(feature_name).values,
            matched.column(pair.base.value_column).values,
        )
    except (EstimationError, InsufficientSamplesError):
        return None
    return FullJoinMeasurement(
        mi=mi,
        estimator=estimator.name,
        join_rows=matched.num_rows,
        aggregate=agg.value,
    )


def sketch_mi(
    pair: TablePair,
    method: str,
    *,
    capacity: int = 1024,
    seed: int = 0,
    min_join_size: int = 100,
    k: int = 3,
) -> Optional[SketchMIEstimate]:
    """Sketch both sides of a pair and estimate MI from the sketch join.

    Returns ``None`` when the sketch join is smaller than ``min_join_size``
    (the paper's filter for meaningless estimates) or estimation fails.
    """
    agg = aggregate_for_pair(pair)
    builder = get_builder(method, capacity=capacity, seed=seed)
    base_sketch = builder.sketch_base(
        pair.base.table, pair.base.key_column, pair.base.value_column
    )
    candidate_sketch = builder.sketch_candidate(
        pair.candidate.table,
        pair.candidate.key_column,
        pair.candidate.value_column,
        agg=agg,
    )
    try:
        return estimate_mi_from_sketches(
            base_sketch, candidate_sketch, k=k, min_join_size=min_join_size
        )
    except (EstimationError, InsufficientSamplesError):
        return None
