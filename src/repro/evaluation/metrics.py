"""Accuracy metrics used by the experiments.

The paper reports mean squared error (Tables I and II), root mean squared
error and Pearson's correlation (Section V-B1), and Spearman's rank
correlation (Table II) between estimated and reference MI values.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats

from repro.exceptions import EstimationError

__all__ = [
    "mean_squared_error",
    "root_mean_squared_error",
    "mean_absolute_error",
    "mean_bias",
    "pearson_correlation",
    "spearman_correlation",
]


def _as_aligned_arrays(
    estimates: Sequence[float], references: Sequence[float]
) -> tuple[np.ndarray, np.ndarray]:
    estimates_array = np.asarray(estimates, dtype=np.float64)
    references_array = np.asarray(references, dtype=np.float64)
    if estimates_array.shape != references_array.shape:
        raise EstimationError(
            "estimates and references must be aligned, got shapes "
            f"{estimates_array.shape} and {references_array.shape}"
        )
    if estimates_array.size == 0:
        raise EstimationError("cannot compute a metric from empty inputs")
    return estimates_array, references_array


def mean_squared_error(estimates: Sequence[float], references: Sequence[float]) -> float:
    """Mean squared error between estimates and reference values."""
    estimates_array, references_array = _as_aligned_arrays(estimates, references)
    return float(np.mean((estimates_array - references_array) ** 2))


def root_mean_squared_error(
    estimates: Sequence[float], references: Sequence[float]
) -> float:
    """Root mean squared error between estimates and reference values."""
    return float(np.sqrt(mean_squared_error(estimates, references)))


def mean_absolute_error(
    estimates: Sequence[float], references: Sequence[float]
) -> float:
    """Mean absolute error between estimates and reference values."""
    estimates_array, references_array = _as_aligned_arrays(estimates, references)
    return float(np.mean(np.abs(estimates_array - references_array)))


def mean_bias(estimates: Sequence[float], references: Sequence[float]) -> float:
    """Average signed error (positive = over-estimation)."""
    estimates_array, references_array = _as_aligned_arrays(estimates, references)
    return float(np.mean(estimates_array - references_array))


def pearson_correlation(
    estimates: Sequence[float], references: Sequence[float]
) -> float:
    """Pearson's correlation coefficient between estimates and references."""
    estimates_array, references_array = _as_aligned_arrays(estimates, references)
    if estimates_array.size < 2:
        raise EstimationError("Pearson correlation requires at least two points")
    if np.std(estimates_array) == 0.0 or np.std(references_array) == 0.0:
        return 0.0
    return float(stats.pearsonr(estimates_array, references_array).statistic)


def spearman_correlation(
    estimates: Sequence[float], references: Sequence[float]
) -> float:
    """Spearman's rank correlation between estimates and references."""
    estimates_array, references_array = _as_aligned_arrays(estimates, references)
    if estimates_array.size < 2:
        raise EstimationError("Spearman correlation requires at least two points")
    if np.std(estimates_array) == 0.0 or np.std(references_array) == 0.0:
        return 0.0
    return float(stats.spearmanr(estimates_array, references_array).statistic)
