"""Plain-text rendering of experiment results.

The experiments return lists of row dictionaries; these helpers render them
as aligned monospace tables so that the benchmark harness can print the same
rows/series the paper's tables and figures report.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

__all__ = ["format_table", "format_kv", "indent"]


def _format_cell(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    *,
    precision: int = 3,
    title: str = "",
) -> str:
    """Render rows (dicts) as an aligned plain-text table.

    Parameters
    ----------
    rows:
        Sequence of mappings; missing keys render as empty cells.
    columns:
        Column order; defaults to the keys of the first row.
    precision:
        Decimal places for float cells.
    title:
        Optional title line printed above the table.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [
        [_format_cell(row.get(column, ""), precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in rendered
    )
    parts = [title, header, separator, body] if title else [header, separator, body]
    return "\n".join(part for part in parts if part)


def format_kv(values: Mapping[str, Any], *, precision: int = 3, title: str = "") -> str:
    """Render a flat mapping as aligned ``key: value`` lines."""
    if not values:
        return title or ""
    width = max(len(str(key)) for key in values)
    lines = [
        f"{str(key).ljust(width)} : {_format_cell(value, precision)}"
        for key, value in values.items()
    ]
    if title:
        lines.insert(0, title)
    return "\n".join(lines)


def indent(text: str, prefix: str = "  ") -> str:
    """Indent every line of ``text`` with ``prefix``."""
    return "\n".join(prefix + line for line in text.splitlines())
