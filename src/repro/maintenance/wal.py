"""Write-ahead delta log for durable index maintenance.

Every mutation of a maintained index directory — registering, replacing or
removing a table — is appended to the log *before* it is applied anywhere
else.  A delta carries the table's fully-built candidates (profiles, MI
sketches and KMV key sketches serialized through
:mod:`repro.maintenance.deltas`), so replaying the log against the last
published generation reconstructs the exact index state the writer saw:
nothing needs to be re-sketched, and a crash between the append and the
in-memory apply loses no data.

On-disk layout (``<index dir>/wal/``)::

    wal/
      segment-0000000000000001.wal    # sealed by an earlier compaction
      segment-0000000000000042.wal    # active (highest first-sequence)

Each segment starts with a 12-byte header (magic, format version, hash
encoding) and then holds length-prefixed, CRC32-checksummed JSON records::

    <u32 payload length> <u32 crc32(payload)> <payload bytes>

Appends are atomic at the record level: the frame is written in one
``write`` call and fsync'd (``sync=True``, the default) before the append
returns, so a record either replays completely or is a *torn tail* —
recognized on open by a short or checksum-failing final frame and truncated
away, exactly like the tail scan of a database WAL.  Damage anywhere before
the tail (a flipped bit on disk) also truncates from the damaged record on,
dropping any later segments — a delta gap must never be replayed over.

Sequencing and truncation
-------------------------
Records carry a monotonically increasing ``sequence``.  The published
``CURRENT`` pointer of the index directory records the highest sequence
folded into the published generation (``applied_sequence``); everything
after it is *pending*.  After a successful compaction the compactor calls
:meth:`WriteAheadLog.prune`, which deletes segments whose records are all
applied and seals the active segment so the next append starts a fresh one.

The log is **single-writer**: one process (the serving process or the CLI)
appends and prunes; any number of readers may replay.  Serving workers never
touch the WAL — they only read published generations.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.exceptions import WALError
from repro.sketches.serialization import HASH_ENCODING_VERSION

__all__ = ["WriteAheadLog", "DeltaRecord", "WAL_DIR_NAME"]

PathLike = Union[str, os.PathLike]

#: Name of the log directory inside a maintained index directory.
WAL_DIR_NAME = "wal"

#: Segment header: magic, one format-version byte, one hash-encoding byte.
_MAGIC = b"repro-wal\x00"
_FORMAT_VERSION = 1
_HEADER = struct.Struct("<10sBB")
_FRAME = struct.Struct("<II")

#: Rotate the active segment once it grows past this many bytes.
_DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024

#: Operations a delta record may carry.
OP_REGISTER = "register_table"
OP_REMOVE = "remove_table"
_KNOWN_OPS = (OP_REGISTER, OP_REMOVE)


@dataclass(frozen=True)
class DeltaRecord:
    """One replayable mutation of the index: an upsert or removal of a table."""

    sequence: int
    op: str
    name: str
    #: Serialized candidates (see :mod:`repro.maintenance.deltas`) for
    #: ``register_table`` deltas; empty for removals.
    candidates: list = field(default_factory=list)

    def to_document(self) -> dict:
        document = {"sequence": self.sequence, "op": self.op, "name": self.name}
        if self.op == OP_REGISTER:
            document["candidates"] = self.candidates
        return document

    @classmethod
    def from_document(cls, document: dict) -> "DeltaRecord":
        try:
            op = document["op"]
            if op not in _KNOWN_OPS:
                raise WALError(f"unknown delta operation {op!r}")
            return cls(
                sequence=int(document["sequence"]),
                op=op,
                name=str(document["name"]),
                candidates=list(document.get("candidates", [])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WALError(f"malformed delta record: {exc}") from exc


@dataclass
class _Segment:
    """Parsed state of one on-disk segment file."""

    path: Path
    first_sequence: int
    last_sequence: int = 0  # 0 while the segment holds no complete record
    records: int = 0
    size: int = 0


def _fsync_directory(path: Path) -> None:
    """Flush a directory entry table (best-effort on non-POSIX systems)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


class WriteAheadLog:
    """Append-only, checksummed, replayable delta log of one index directory.

    Parameters
    ----------
    directory:
        The log directory itself (usually ``<index dir>/wal``; see
        :meth:`attach` for the index-directory entry point).  Created when
        missing.
    sync:
        fsync every append before returning (the durability contract);
        ``False`` trades crash-durability for speed in tests/benchmarks.
    segment_bytes:
        Size threshold after which the active segment is rotated.
    readonly:
        Open for inspection only: torn tails are skipped instead of
        truncated and no file is modified or created, so a reader (e.g.
        ``repro index info`` against a live service) can never damage the
        appender's in-flight tail.  Appending and pruning raise.
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        sync: bool = True,
        segment_bytes: int = _DEFAULT_SEGMENT_BYTES,
        readonly: bool = False,
    ):
        self.directory = Path(directory)
        self._readonly = bool(readonly)
        if not self._readonly:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._sync = bool(sync)
        self._segment_bytes = int(segment_bytes)
        self._lock = threading.RLock()
        self._handle = None  # lazily-opened append handle for the active segment
        self._segments: list[_Segment] = []
        self._last_sequence = 0
        self._recover()

    # ------------------------------------------------------------------ #
    # Attachment
    # ------------------------------------------------------------------ #
    @classmethod
    def attach(
        cls,
        index_directory: PathLike,
        *,
        create: bool = False,
        sync: bool = True,
        readonly: bool = False,
    ) -> "WriteAheadLog":
        """Open the log of an index directory (``<dir>/wal``).

        With ``create=False`` the directory must already be WAL-backed
        (see :meth:`present`); ``create=True`` initializes the log,
        turning the directory into a maintained one.
        """
        root = Path(index_directory)
        wal_dir = root / WAL_DIR_NAME
        if create and readonly:
            raise WALError("cannot create a write-ahead log in readonly mode")
        if not create and not wal_dir.is_dir():
            raise WALError(
                f"{root} has no write-ahead log; initialize maintenance with "
                f"`repro index log {root} --init` (or WriteAheadLog.attach("
                f"..., create=True))"
            )
        return cls(wal_dir, sync=sync, readonly=readonly)

    @staticmethod
    def present(index_directory: PathLike) -> bool:
        """Whether an index directory is WAL-backed (has a ``wal/`` log)."""
        return (Path(index_directory) / WAL_DIR_NAME).is_dir()

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def _segment_paths(self) -> list[Path]:
        return sorted(self.directory.glob("segment-*.wal"))

    def _recover(self) -> None:
        """Scan the segments, truncating torn/corrupt tails (open-time).

        In readonly mode nothing is modified: damaged data is skipped in
        this instance's view but left on disk for the owning writer.
        """
        segments: list[_Segment] = []
        damaged_at: Optional[Path] = None
        if self._readonly and not self.directory.is_dir():
            return
        for path in self._segment_paths():
            if damaged_at is not None:
                # A gap before this segment: its deltas must not be
                # replayed over missing predecessors.
                if not self._readonly:
                    path.unlink()
                continue
            segment, clean = self._scan_segment(path)
            if segment is None:
                # Unreadable header: drop the file (and everything after).
                damaged_at = path
                if not self._readonly:
                    path.unlink()
                continue
            if segment.records:
                segments.append(segment)
                self._last_sequence = max(self._last_sequence, segment.last_sequence)
            else:
                # Empty segments (freshly rotated, post-prune seal, or a
                # torn tail truncated down to its header) stay: their name
                # encodes the next sequence to hand out, so sequences never
                # regress below already-compacted (pruned) history.
                segments.append(segment)
                self._last_sequence = max(self._last_sequence, segment.first_sequence - 1)
            if not clean:
                damaged_at = path  # truncated in place; later segments must go
        if damaged_at is not None and not self._readonly:
            warnings.warn(
                f"write-ahead log {self.directory} had a torn or corrupt tail "
                f"at {damaged_at.name}; truncated to the last intact record "
                f"(sequence {self._last_sequence})",
                RuntimeWarning,
                stacklevel=3,
            )
            _fsync_directory(self.directory)
        self._segments = segments

    def _scan_segment(self, path: Path) -> tuple[Optional[_Segment], bool]:
        """Validate one segment; returns ``(segment, clean)``.

        A torn or checksum-failing frame truncates the file to the last
        good offset; ``clean`` is ``False`` when truncation happened.
        ``(None, False)`` means even the header was unusable.
        """
        try:
            first_sequence = int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            return None, False
        with open(path, "rb" if self._readonly else "r+b") as handle:
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return None, False
            magic, version, encoding = _HEADER.unpack(header)
            if magic != _MAGIC or version != _FORMAT_VERSION:
                return None, False
            if encoding != HASH_ENCODING_VERSION:
                raise WALError(
                    f"write-ahead log segment {path} was written under "
                    f"hash-encoding version {encoding} (current: "
                    f"{HASH_ENCODING_VERSION}); rebuild the index and its log "
                    f"from the source tables"
                )
            segment = _Segment(path=path, first_sequence=first_sequence)
            good_end = _HEADER.size
            clean = True
            while True:
                frame = handle.read(_FRAME.size)
                if not frame:
                    break  # exactly at end: clean
                if len(frame) < _FRAME.size:
                    clean = False
                    break
                length, checksum = _FRAME.unpack(frame)
                payload = handle.read(length)
                if len(payload) < length or zlib.crc32(payload) != checksum:
                    clean = False
                    break
                try:
                    document = json.loads(payload.decode("utf-8"))
                    sequence = int(document["sequence"])
                except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                    clean = False
                    break
                segment.records += 1
                segment.last_sequence = sequence
                good_end = handle.tell()
            if not clean and not self._readonly:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
            segment.size = good_end
        return segment, clean

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def _active_segment(self) -> _Segment:
        """The segment new records go to, creating/rotating as needed."""
        if self._segments and self._segments[-1].size < self._segment_bytes:
            return self._segments[-1]
        return self._start_segment(self._last_sequence + 1)

    def _start_segment(self, first_sequence: int) -> _Segment:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        path = self.directory / f"segment-{first_sequence:016d}.wal"
        with open(path, "xb") as handle:
            handle.write(_HEADER.pack(_MAGIC, _FORMAT_VERSION, HASH_ENCODING_VERSION))
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_directory(self.directory)
        segment = _Segment(path=path, first_sequence=first_sequence, size=_HEADER.size)
        self._segments.append(segment)
        return segment

    def append(
        self, op: str, name: str, candidates: Optional[list] = None
    ) -> int:
        """Durably append one delta; returns its sequence number.

        The record is on disk (fsync'd, under ``sync=True``) when this
        returns — the write-ahead contract callers rely on before touching
        any in-memory or published state.
        """
        if self._readonly:
            raise WALError("this write-ahead log was opened readonly")
        if op not in _KNOWN_OPS:
            raise WALError(f"unknown delta operation {op!r}")
        if op == OP_REGISTER and not candidates:
            raise WALError("a register_table delta needs at least one candidate")
        with self._lock:
            sequence = self._last_sequence + 1
            record = DeltaRecord(
                sequence=sequence, op=op, name=name, candidates=list(candidates or [])
            )
            payload = json.dumps(record.to_document()).encode("utf-8")
            frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
            segment = self._active_segment()
            if self._handle is None or self._handle.name != str(segment.path):
                if self._handle is not None:
                    self._handle.close()
                self._handle = open(segment.path, "ab")
            self._handle.write(frame)
            self._handle.flush()
            if self._sync:
                os.fsync(self._handle.fileno())
            segment.size += len(frame)
            segment.records += 1
            segment.last_sequence = sequence
            if not segment.records - 1:
                segment.first_sequence = min(segment.first_sequence, sequence)
            self._last_sequence = sequence
            return sequence

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def replay(self, after: int = 0) -> Iterator[DeltaRecord]:
        """Yield every intact delta with ``sequence > after``, in order."""
        with self._lock:
            paths = [segment.path for segment in self._segments]
        for path in paths:
            yield from self._replay_segment(path, after)

    def _replay_segment(self, path: Path, after: int) -> Iterator[DeltaRecord]:
        try:
            handle = open(path, "rb")
        except FileNotFoundError:
            return  # pruned concurrently
        with handle:
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return
            while True:
                frame = handle.read(_FRAME.size)
                if len(frame) < _FRAME.size:
                    return
                length, checksum = _FRAME.unpack(frame)
                payload = handle.read(length)
                if len(payload) < length or zlib.crc32(payload) != checksum:
                    return  # torn/corrupt tail: recovery truncates on next open
                record = DeltaRecord.from_document(json.loads(payload.decode("utf-8")))
                if record.sequence > after:
                    yield record

    def pending(self, applied: int) -> int:
        """Number of intact records with ``sequence > applied``."""
        return sum(1 for _ in self.replay(after=applied))

    # ------------------------------------------------------------------ #
    # Truncation
    # ------------------------------------------------------------------ #
    def prune(self, applied: int) -> int:
        """Drop fully-applied segments; returns how many files were deleted.

        Called by the compactor after a generation carrying every record up
        to ``applied`` was atomically published.  The active segment is
        sealed when fully applied, so the next append starts a fresh
        segment and the log never re-grows over folded history.
        """
        if self._readonly:
            raise WALError("this write-ahead log was opened readonly")
        deleted = 0
        with self._lock:
            survivors: list[_Segment] = []
            for segment in self._segments:
                if segment.records and segment.last_sequence <= applied:
                    if self._handle is not None and self._handle.name == str(segment.path):
                        self._handle.close()
                        self._handle = None
                    segment.path.unlink(missing_ok=True)
                    deleted += 1
                elif not segment.records and segment.first_sequence <= applied:
                    if self._handle is not None and self._handle.name == str(segment.path):
                        self._handle.close()
                        self._handle = None
                    segment.path.unlink(missing_ok=True)
                    deleted += 1
                else:
                    survivors.append(segment)
            self._segments = survivors
            self._last_sequence = max(self._last_sequence, applied)
            if not survivors:
                # Seal the log: a fresh empty segment whose name records the
                # sequence floor, so a later reopen never reuses a pruned
                # (already-compacted) sequence number.
                self._start_segment(self._last_sequence + 1)
            if deleted:
                _fsync_directory(self.directory)
        return deleted

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self, applied: int = 0) -> dict:
        """Segment count/bytes and record counters for ``index info``/metrics."""
        with self._lock:
            segments = list(self._segments)
            last_sequence = self._last_sequence
        return {
            "segments": len(segments),
            "bytes": sum(segment.size for segment in segments),
            "records": sum(segment.records for segment in segments),
            "last_sequence": last_sequence,
            "pending_deltas": sum(
                segment.records for segment in segments
                if segment.last_sequence > applied
            ) if applied else sum(segment.records for segment in segments),
        }

    @property
    def last_sequence(self) -> int:
        """Sequence of the most recently appended delta (0 when empty)."""
        with self._lock:
            return self._last_sequence

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
