"""Serializing index deltas: fully-built candidates as JSON documents.

A ``register_table`` delta in the write-ahead log carries everything needed
to reconstruct the table's :class:`~repro.discovery.index.IndexedCandidate`
entries without the source data: the column-pair profile, the MI sketch
(:func:`~repro.sketches.serialization.sketch_to_dict`, an exact round-trip)
and the KMV key sketch's retained values.  Replaying a delta therefore
yields candidates byte-identical to the ones the original writer held,
which is what makes log replay equivalent to having never crashed.

Application uses replace semantics: a register delta first drops any
previously indexed candidates of the same table, then inserts the logged
ones — so re-registering a table is an atomic upsert and replay is
idempotent per table name.
"""

from __future__ import annotations

from repro.discovery.index import IndexedCandidate, SketchIndex
from repro.discovery.persistence import profile_from_dict, profile_to_dict
from repro.exceptions import WALError
from repro.maintenance.wal import OP_REGISTER, OP_REMOVE, DeltaRecord
from repro.sketches.kmv import KMVSketch
from repro.sketches.serialization import sketch_from_dict, sketch_to_dict

__all__ = ["candidate_to_document", "candidate_from_document", "apply_delta"]


def candidate_to_document(candidate: IndexedCandidate) -> dict:
    """Serialize one indexed candidate into a JSON-compatible document."""
    return {
        "candidate_id": candidate.candidate_id,
        "aggregate": candidate.aggregate,
        "profile": profile_to_dict(candidate.profile),
        "metadata": dict(candidate.metadata),
        "sketch": sketch_to_dict(candidate.sketch),
        "key_kmv": {
            "capacity": candidate.key_kmv.capacity,
            "seed": candidate.key_kmv.seed,
            # Deterministic order so identical states serialize identically.
            "values": sorted(candidate.key_kmv.values, key=lambda value: str(value)),
        },
    }


def candidate_from_document(document: dict) -> IndexedCandidate:
    """Rebuild an indexed candidate from :func:`candidate_to_document` output."""
    try:
        kmv_entry = document["key_kmv"]
        return IndexedCandidate(
            candidate_id=document["candidate_id"],
            profile=profile_from_dict(document["profile"]),
            aggregate=document["aggregate"],
            sketch=sketch_from_dict(document["sketch"]),
            key_kmv=KMVSketch.from_values(
                kmv_entry["values"],
                capacity=int(kmv_entry["capacity"]),
                seed=int(kmv_entry["seed"]),
            ),
            metadata=dict(document.get("metadata", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WALError(f"malformed candidate document in delta: {exc}") from exc


def apply_delta(index: SketchIndex, record: DeltaRecord) -> int:
    """Fold one replayed delta into an in-memory index.

    Returns the number of candidates the index gained (negative for
    removals).  Register deltas replace: any candidates previously indexed
    under the delta's table name are dropped first, so applying the same
    log twice converges to the same state.
    """
    if record.op == OP_REGISTER:
        removed = index.remove_table(record.name, missing_ok=True)
        for document in record.candidates:
            index.add_prebuilt(candidate_from_document(document))
        return len(record.candidates) - len(removed)
    if record.op == OP_REMOVE:
        return -len(index.remove_table(record.name, missing_ok=True))
    raise WALError(f"unknown delta operation {record.op!r}")
