"""Persistent maintenance-job records: queued → running → completed/failed.

Every compaction (and any future maintenance operation) runs as a *job*
whose lifecycle is recorded on disk, one JSON file per job under
``<index dir>/jobs/``.  Records survive crashes and restarts, so operators
can always answer "what did maintenance last do, and did it work?" —
``repro index jobs`` lists them and ``/metrics`` exposes the counters.

Records are updated by atomic temp-write-then-rename, so a reader never
sees a torn document; a job left in ``running`` state after a crash is
evidence of the crash itself (the next maintainer start records a fresh
recovery job rather than resurrecting the orphan).

Failure capture keeps both the exception message and the formatted
traceback: compactions run on a background thread where a swallowed
stack trace would otherwise be gone forever.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.exceptions import MaintenanceError

__all__ = ["JobRecord", "JobTracker", "JOBS_DIR_NAME"]

PathLike = Union[str, os.PathLike]

#: Name of the job-record directory inside a maintained index directory.
JOBS_DIR_NAME = "jobs"

#: Legal lifecycle states, in order.
STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_COMPLETED = "completed"
STATUS_FAILED = "failed"
_STATUSES = (STATUS_QUEUED, STATUS_RUNNING, STATUS_COMPLETED, STATUS_FAILED)


@dataclass
class JobRecord:
    """One maintenance job's durable state."""

    job_id: int
    kind: str
    status: str = STATUS_QUEUED
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Free-form result details (e.g. the published generation and how many
    #: deltas were folded) for completed jobs.
    detail: dict = field(default_factory=dict)
    error: Optional[str] = None
    traceback: Optional[str] = None

    def to_document(self) -> dict:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "detail": self.detail,
            "error": self.error,
            "traceback": self.traceback,
        }

    @classmethod
    def from_document(cls, document: dict) -> "JobRecord":
        try:
            status = document["status"]
            if status not in _STATUSES:
                raise MaintenanceError(f"unknown job status {status!r}")
            return cls(
                job_id=int(document["job_id"]),
                kind=str(document["kind"]),
                status=status,
                created_at=float(document.get("created_at") or 0.0),
                started_at=document.get("started_at"),
                finished_at=document.get("finished_at"),
                detail=dict(document.get("detail") or {}),
                error=document.get("error"),
                traceback=document.get("traceback"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise MaintenanceError(f"malformed job record: {exc}") from exc


class JobTracker:
    """Durable registry of maintenance jobs for one index directory.

    Single-writer like the write-ahead log (the maintainer owns it); any
    number of processes may read the records concurrently.
    """

    def __init__(self, directory: PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    @classmethod
    def attach(cls, index_directory: PathLike) -> "JobTracker":
        """Open (creating if needed) the job registry of an index directory."""
        return cls(Path(index_directory) / JOBS_DIR_NAME)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def _path(self, job_id: int) -> Path:
        return self.directory / f"job-{job_id:08d}.json"

    def _write(self, record: JobRecord) -> None:
        path = self._path(record.job_id)
        temp_path = path.with_suffix(".json.tmp")
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(record.to_document(), handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)

    def create(self, kind: str, detail: Optional[dict] = None) -> JobRecord:
        """Record a new queued job and return it."""
        existing = sorted(self.directory.glob("job-*.json"))
        job_id = 1
        if existing:
            try:
                job_id = int(existing[-1].stem.split("-", 1)[1]) + 1
            except (IndexError, ValueError):
                job_id = len(existing) + 1
        record = JobRecord(
            job_id=job_id, kind=kind, created_at=time.time(), detail=dict(detail or {})
        )
        self._write(record)
        return record

    def start(self, record: JobRecord) -> JobRecord:
        record.status = STATUS_RUNNING
        record.started_at = time.time()
        self._write(record)
        return record

    def complete(self, record: JobRecord, detail: Optional[dict] = None) -> JobRecord:
        record.status = STATUS_COMPLETED
        record.finished_at = time.time()
        if detail:
            record.detail.update(detail)
        self._write(record)
        return record

    def fail(self, record: JobRecord, exc: BaseException) -> JobRecord:
        record.status = STATUS_FAILED
        record.finished_at = time.time()
        record.error = f"{type(exc).__name__}: {exc}"
        record.traceback = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        self._write(record)
        return record

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def list(self) -> list[JobRecord]:
        """All readable job records, oldest first.

        Unreadable files (a crash before the very first atomic rename can
        leave a stray temp file, an operator may truncate one by hand) are
        skipped rather than failing the listing.
        """
        records = []
        for path in sorted(self.directory.glob("job-*.json")):
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
                records.append(JobRecord.from_document(document))
            except (OSError, json.JSONDecodeError, MaintenanceError):
                continue
        return records

    def last(self, kind: Optional[str] = None) -> Optional[JobRecord]:
        """The most recent job (optionally restricted to one kind)."""
        records = self.list()
        if kind is not None:
            records = [record for record in records if record.kind == kind]
        return records[-1] if records else None

    def counts(self) -> dict:
        """Status → count map for ``/metrics`` and ``index info``."""
        counts = {status: 0 for status in _STATUSES}
        for record in self.list():
            counts[record.status] += 1
        counts["total"] = sum(counts[status] for status in _STATUSES)
        return counts
