"""Folding write-ahead-log deltas into atomically-published generations.

A maintained index directory grows by appending deltas to its log; the
*compactor* periodically folds everything pending into a brand-new,
complete index layout and publishes it in one atomic step::

    generations/.incoming-00000004/   # staged: written file by file
    generations/00000004/             # renamed when complete
    CURRENT                           # swapped last (atomic os.replace)

The published generation is immutable once the pointer swaps: readers that
resolved an older generation keep serving it untouched (files of the two
most recent generations are retained), and a crash at *any* point leaves
either the old pointer or the new one — half-written ``.incoming`` trees
are invisible to :func:`~repro.discovery.persistence.load_index` and swept
on the next compaction.

:class:`IndexMaintainer` drives the compactor from a background thread
inside the serving process, recording every run in the
:class:`~repro.maintenance.jobs.JobTracker`.  Its ``start()`` first runs a
*synchronous* recovery compaction when the log holds pending deltas — the
crash-recovery path: whatever a killed predecessor had durably logged but
not yet compacted is folded in before any worker serves a query.
"""

from __future__ import annotations

import os
import shutil
import threading
from pathlib import Path
from typing import Optional, Union

from repro.discovery.persistence import (
    GENERATIONS_DIR,
    load_index,
    read_publication,
    save_index,
    write_publication,
)
from repro.exceptions import MaintenanceError, ReproError
from repro.maintenance.deltas import apply_delta
from repro.maintenance.jobs import JobRecord, JobTracker
from repro.maintenance.wal import WriteAheadLog

__all__ = ["Compactor", "IndexMaintainer", "maintenance_summary"]

PathLike = Union[str, os.PathLike]

#: How many published generations to retain (the current one included), so
#: readers that resolved the previous pointer finish their loads safely.
_RETAIN_GENERATIONS = 2


def _fsync_directory(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


class Compactor:
    """Folds pending WAL deltas into a new published generation.

    Parameters
    ----------
    directory:
        The maintained index directory (holding ``wal/``, ``CURRENT`` and
        ``generations/`` once the first compaction ran).
    wal:
        An open :class:`WriteAheadLog` to share with other writers in the
        process (the serving path); opened on demand when omitted.
    """

    def __init__(self, directory: PathLike, *, wal: Optional[WriteAheadLog] = None):
        self.directory = Path(directory)
        self._wal = wal

    def _log(self) -> WriteAheadLog:
        if self._wal is None:
            self._wal = WriteAheadLog.attach(self.directory)
        return self._wal

    def compact(self, *, force: bool = False) -> dict:
        """Run one compaction pass; returns a result-detail document.

        No-ops (``{"skipped": true}``) when nothing is pending and a
        generation is already published, unless ``force`` re-publishes
        anyway.  The very first compaction of a directory *bootstraps* the
        generation layout from the flat index files even with an empty log,
        so maintained serving always has a publication pointer to watch.
        """
        wal = self._log()
        publication = read_publication(self.directory)
        applied = publication["applied_sequence"] if publication else 0
        records = list(wal.replay(after=applied))
        if not records and publication is not None and not force:
            return {
                "skipped": True,
                "generation": publication["generation"],
                "applied_sequence": applied,
            }

        # Load the published base (never the flat files once a generation
        # exists — the flat layout goes stale after the first publication).
        index = load_index(self.directory)
        gained = 0
        for record in records:
            gained += apply_delta(index, record)
        applied_sequence = records[-1].sequence if records else applied

        generation = (publication["generation"] if publication else 0) + 1
        name = f"{generation:08d}"
        generations_root = self.directory / GENERATIONS_DIR
        generations_root.mkdir(exist_ok=True)
        incoming = generations_root / f".incoming-{name}"
        published = generations_root / name
        # Sweep leftovers of a compaction that crashed before publishing.
        for stale in (incoming, published):
            if stale.exists():
                shutil.rmtree(stale)
        try:
            save_index(index, incoming)
            incoming.rename(published)
            _fsync_directory(generations_root)
            write_publication(
                self.directory,
                generation=generation,
                name=name,
                applied_sequence=applied_sequence,
            )
        except BaseException:
            # The old generation is still published; stage area is garbage.
            shutil.rmtree(incoming, ignore_errors=True)
            if not read_publication(self.directory):
                shutil.rmtree(published, ignore_errors=True)
            raise
        wal.prune(applied_sequence)
        self._retire_old_generations(generation)
        return {
            "skipped": False,
            "generation": generation,
            "applied_sequence": applied_sequence,
            "deltas_folded": len(records),
            "candidates_delta": gained,
            "candidates": len(index),
        }

    def _retire_old_generations(self, current: int) -> None:
        """Delete generations older than the retention window (best-effort)."""
        generations_root = self.directory / GENERATIONS_DIR
        for path in generations_root.iterdir():
            if not path.is_dir():
                continue
            if path.name.startswith(".incoming-"):
                continue  # possibly a concurrent forced compaction's stage
            try:
                generation = int(path.name)
            except ValueError:
                continue
            if generation <= current - _RETAIN_GENERATIONS:
                shutil.rmtree(path, ignore_errors=True)


class IndexMaintainer:
    """Background maintenance driver for one index directory.

    Owns the job tracker and a compaction thread.  ``start()`` runs a
    synchronous *recovery* compaction when deltas are pending (so a process
    restarted after a crash serves the fully-recovered index from its first
    query), then keeps folding new deltas in the background; ``notify()``
    wakes the thread promptly after an append instead of waiting out the
    poll interval.
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        wal: Optional[WriteAheadLog] = None,
        interval: float = 0.5,
    ):
        self.directory = Path(directory)
        self._wal = wal if wal is not None else WriteAheadLog.attach(self.directory)
        self._compactor = Compactor(self.directory, wal=self._wal)
        self._tracker = JobTracker.attach(self.directory)
        self._interval = float(interval)
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._compactions = 0
        self._failures = 0

    @property
    def wal(self) -> WriteAheadLog:
        """The shared write-ahead log (appends go through this instance)."""
        return self._wal

    @property
    def tracker(self) -> JobTracker:
        return self._tracker

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Recover synchronously, then start the background thread."""
        if self._thread is not None:
            return
        publication = read_publication(self.directory)
        applied = publication["applied_sequence"] if publication else 0
        if publication is None or self._wal.last_sequence > applied:
            # Bootstrap or crash recovery: fold before serving anything.
            self._run_job("recovery-compaction", force=True)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-index-maintainer", daemon=True
        )
        self._thread.start()

    def notify(self) -> None:
        """Wake the maintenance thread (called after a WAL append)."""
        self._wake.set()

    def close(self) -> None:
        """Stop the thread; the write-ahead log stays open for its owner."""
        self._stop.set()
        self._wake.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=30.0)

    def __enter__(self) -> "IndexMaintainer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Compaction driving
    # ------------------------------------------------------------------ #
    def _loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self._interval)
            self._wake.clear()
            if self._stop.is_set():
                break
            try:
                pending = self._pending()
            except ReproError:
                pending = 0  # directory damaged: surfaced by the next job
            if pending:
                self._run_job("compaction")

    def _pending(self) -> int:
        publication = read_publication(self.directory)
        applied = publication["applied_sequence"] if publication else 0
        return max(0, self._wal.last_sequence - applied)

    def _run_job(self, kind: str, *, force: bool = False) -> JobRecord:
        """Execute one tracked compaction; failures never escape the thread."""
        record = self._tracker.create(kind)
        self._tracker.start(record)
        try:
            detail = self._compactor.compact(force=force)
        except BaseException as exc:  # noqa: BLE001 - recorded, not rethrown
            with self._lock:
                self._failures += 1
            self._tracker.fail(record, exc)
            if kind == "recovery-compaction":
                # Recovery failures are fatal for start(): serving an index
                # known to be behind its durable log would lose writes.
                raise MaintenanceError(
                    f"recovery compaction of {self.directory} failed: {exc}"
                ) from exc
            return record
        with self._lock:
            self._compactions += 1
        return self._tracker.complete(record, detail)

    def compact_now(self) -> JobRecord:
        """Run one tracked compaction synchronously (the CLI entry point)."""
        return self._run_job("compaction", force=False)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        publication = read_publication(self.directory)
        applied = publication["applied_sequence"] if publication else 0
        with self._lock:
            compactions, failures = self._compactions, self._failures
        return {
            "generation": publication["generation"] if publication else 0,
            "applied_sequence": applied,
            "pending_deltas": max(0, self._wal.last_sequence - applied),
            "compactions": compactions,
            "failed_compactions": failures,
        }


def maintenance_summary(directory: PathLike) -> dict:
    """The ``maintenance`` block of ``repro index info`` and ``/metrics``.

    Gracefully reports ``{"present": false}`` on plain (pre-WAL) index
    directories, mirroring the postings block.
    """
    root = Path(directory)
    if not WriteAheadLog.present(root):
        return {"present": False}
    publication = read_publication(root)
    applied = publication["applied_sequence"] if publication else 0
    with WriteAheadLog.attach(root, readonly=True) as wal:
        wal_stats = wal.stats(applied)
        pending = wal.pending(applied)
    summary = {
        "present": True,
        "generation": publication["generation"] if publication else 0,
        "applied_sequence": applied,
        "pending_deltas": pending,
        "wal": {
            "segments": wal_stats["segments"],
            "bytes": wal_stats["bytes"],
            "records": wal_stats["records"],
            "last_sequence": wal_stats["last_sequence"],
        },
    }
    last_job = JobTracker.attach(root).last()
    summary["last_job"] = (
        {
            "job_id": last_job.job_id,
            "kind": last_job.kind,
            "status": last_job.status,
            "error": last_job.error,
            "detail": last_job.detail,
        }
        if last_job is not None
        else None
    )
    return summary
