"""Durable index maintenance: write-ahead log, compaction, job tracking.

A *maintained* index directory accepts live mutations without ever losing
one or blocking a reader:

* every register/replace/remove delta is durably appended to a
  :class:`~repro.maintenance.wal.WriteAheadLog` before anything else
  happens (``wal/`` — see :mod:`repro.maintenance.wal` for the format);
* a :class:`~repro.maintenance.compact.Compactor` periodically folds the
  pending deltas into a brand-new complete index layout under
  ``generations/<n>/`` and atomically swaps the ``CURRENT`` pointer;
* every run is recorded by the :class:`~repro.maintenance.jobs.JobTracker`
  (``jobs/``), so failures are durable and inspectable;
* serving workers watch the publication token and re-mmap the published
  generation in place, so process-mode serving picks mutations up without
  a restart.

:class:`~repro.maintenance.compact.IndexMaintainer` ties the pieces
together behind one background thread; ``docs/durability.md`` walks
through the lifecycle and the failure matrix.
"""

from repro.maintenance.compact import Compactor, IndexMaintainer, maintenance_summary
from repro.maintenance.deltas import (
    apply_delta,
    candidate_from_document,
    candidate_to_document,
)
from repro.maintenance.jobs import JobRecord, JobTracker
from repro.maintenance.wal import DeltaRecord, WriteAheadLog

__all__ = [
    "WriteAheadLog",
    "DeltaRecord",
    "Compactor",
    "IndexMaintainer",
    "maintenance_summary",
    "JobRecord",
    "JobTracker",
    "apply_delta",
    "candidate_to_document",
    "candidate_from_document",
]
