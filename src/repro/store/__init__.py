"""``repro.store`` — compact columnar persistence for sketches.

Overview
--------
Sketches are built in an offline preprocessing stage and shipped to wherever
discovery queries run, so a data lake's index is dominated by *stored
sketches*: for a million-column lake, one JSON file per sketch (the original
format of :mod:`repro.sketches.serialization`) means a million tiny files,
each parsed value by value.  This package replaces that with a **columnar
sketch store**: the hashed keys and values of *all* sketches in a store are
packed into a handful of typed NumPy arrays and written as one versioned
``.npz`` file.

File format (version 1)
-----------------------
A store is a single uncompressed NumPy ``.npz`` archive whose members are:

``manifest``
    UTF-8 JSON (as a ``uint8`` array) carrying the format magic
    (``"repro-sketch-store"``), the format version, and one metadata entry
    per sketch: method, side, seed, capacity, value dtype, provenance
    columns, aggregate, plus the sketch's slice into the key array and into
    its value pool.
``key_ids``
    One ``int64`` array with every sketch's hashed join keys, concatenated.
``values_float`` / ``values_int``
    ``float64`` / ``int64`` pools for sketches whose values are uniformly
    numeric.
``values_str`` / ``values_str_offsets``
    A UTF-8 byte pool plus ``int64`` offsets for string-valued sketches.
``values_json`` / ``values_json_offsets``
    A JSON-encoded byte pool for mixed-type values (``None``, booleans,
    arbitrary-precision integers, …).

Extra array groups (for example the discovery index's KMV key sketches) can
ride along in the same file under caller-chosen names.

Usage
-----
>>> from repro.store import save_npz, load_npz
>>> save_npz("lake.sketches.npz", sketches)          # doctest: +SKIP
>>> store = load_npz("lake.sketches.npz", mmap=True) # doctest: +SKIP
>>> store[0]                                         # doctest: +SKIP

``mmap=True`` memory-maps the numeric arrays straight out of the archive
(the members are stored uncompressed), so opening a multi-gigabyte store
costs a few page faults instead of a full read; sketches are materialized
lazily, one slice at a time.

Round-trip guarantees
---------------------
``load_npz(save_npz(path, sketch))[0] == sketch`` holds exactly for every
sketching method and both sketch sides: floats (including ``inf``/``NaN``),
integers of any magnitude, strings and ``None`` values survive bit-for-bit
(see the Hypothesis property tests under ``tests/store/``).  Files with a
wrong magic, an unsupported version or truncated arrays raise
:class:`~repro.exceptions.StoreError`.

Migration
---------
:func:`repro.discovery.save_index` writes this format (index format
version 2) since the sharded-builder release; :func:`repro.discovery.
load_index` transparently reads both the new format and legacy
(version-1) index directories with per-sketch JSON files, so old indexes
keep loading and are migrated by a plain save.
"""

from repro.store.columnar import (
    STORE_FORMAT_VERSION,
    SketchStore,
    load_npz,
    pack_value_lists,
    save_npz,
    unpack_value_lists,
)

__all__ = [
    "STORE_FORMAT_VERSION",
    "SketchStore",
    "save_npz",
    "load_npz",
    "pack_value_lists",
    "unpack_value_lists",
]
