"""Columnar packing of sketches into versioned ``.npz`` stores.

See :mod:`repro.store` for the file-format description.  This module holds
the packing/unpacking machinery: a typed *value pool* encoder shared by the
sketch values and by any extra array groups (the discovery index stores its
KMV key-sketch values through the same encoder), the :class:`SketchStore`
lazy reader, and the ``save_npz`` / ``load_npz`` entry points with optional
memory-mapped reads.
"""

from __future__ import annotations

import json
import os
import zipfile
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.exceptions import StoreError
from repro.relational.dtypes import DType
from repro.sketches.base import Sketch

__all__ = [
    "STORE_FORMAT_VERSION",
    "STORE_MAGIC",
    "SketchStore",
    "save_npz",
    "load_npz",
    "pack_value_lists",
    "unpack_value_lists",
]

#: Version tag written into every store file.
STORE_FORMAT_VERSION = 1

#: Format magic distinguishing sketch stores from arbitrary ``.npz`` files.
STORE_MAGIC = "repro-sketch-store"

PathLike = Union[str, os.PathLike]

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _json_default(value: Any) -> Any:
    """Coerce numpy scalars so mixed value lists spill to the JSON pool
    cleanly (homogeneous numpy lists already coerce via the typed pools)."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    raise TypeError(f"value of type {type(value).__name__} is not JSON-storable")


# --------------------------------------------------------------------------- #
# Typed value pools
# --------------------------------------------------------------------------- #
def _value_kind(values: Sequence[Any]) -> str:
    """Pick the narrowest pool that represents ``values`` exactly.

    ``bool`` is excluded from the numeric kinds (it would load back as a
    number) and integers outside the int64 range spill to the JSON pool,
    which preserves arbitrary precision.
    """
    all_float = True
    all_int = True
    all_str = True
    for value in values:
        if not (type(value) is float or isinstance(value, np.floating)):
            all_float = False
        if not (
            (type(value) is int and _INT64_MIN <= value <= _INT64_MAX)
            or isinstance(value, np.integer)
        ):
            all_int = False
        if not isinstance(value, str):
            all_str = False
        if not (all_float or all_int or all_str):
            return "json"
    if all_float:
        return "float"
    if all_int:
        return "int"
    if all_str:
        return "str"
    return "float"  # empty list: any pool works, the slice is empty


class _PoolWriter:
    """Accumulates value lists into the four typed pools."""

    def __init__(self) -> None:
        self._float: list[float] = []
        self._int: list[int] = []
        self._str: list[str] = []
        self._json: list[str] = []

    def add(self, values: Sequence[Any]) -> dict[str, Any]:
        """Append one value list; returns its manifest entry."""
        kind = _value_kind(values)
        if kind == "float":
            pool: list = self._float
            encoded: Sequence[Any] = [float(value) for value in values]
        elif kind == "int":
            pool = self._int
            encoded = [int(value) for value in values]
        elif kind == "str":
            pool = self._str
            encoded = list(values)
        else:
            pool = self._json
            try:
                encoded = [json.dumps(value, default=_json_default) for value in values]
            except (TypeError, ValueError) as exc:
                raise StoreError(
                    f"sketch values are not storable: {exc}"
                ) from exc
        start = len(pool)
        pool.extend(encoded)
        return {"kind": kind, "slice": [start, len(pool)]}

    def arrays(self, prefix: str) -> dict[str, np.ndarray]:
        """The four pools as named arrays (string pools as bytes + offsets)."""
        out = {
            f"{prefix}_float": np.asarray(self._float, dtype=np.float64),
            f"{prefix}_int": np.asarray(self._int, dtype=np.int64),
        }
        for name, strings in ((f"{prefix}_str", self._str), (f"{prefix}_json", self._json)):
            blobs = [string.encode("utf-8") for string in strings]
            offsets = np.zeros(len(blobs) + 1, dtype=np.int64)
            if blobs:
                offsets[1:] = np.cumsum([len(blob) for blob in blobs])
            buffer = b"".join(blobs)
            out[name] = np.frombuffer(buffer, dtype=np.uint8).copy()
            out[f"{name}_offsets"] = offsets
        return out


def _decode_pool_slice(
    arrays: Mapping[str, np.ndarray], prefix: str, entry: Mapping[str, Any]
) -> list[Any]:
    """Materialize one value list from its pool slice."""
    kind = entry["kind"]
    start, stop = entry["slice"]
    try:
        if kind == "float":
            return [float(value) for value in arrays[f"{prefix}_float"][start:stop]]
        if kind == "int":
            return [int(value) for value in arrays[f"{prefix}_int"][start:stop]]
        if kind in ("str", "json"):
            name = f"{prefix}_{kind}"
            offsets = arrays[f"{name}_offsets"]
            buffer = arrays[name]
            decoded = []
            for position in range(start, stop):
                raw = bytes(buffer[offsets[position] : offsets[position + 1]])
                text = raw.decode("utf-8")
                decoded.append(json.loads(text) if kind == "json" else text)
            return decoded
    except (KeyError, IndexError, ValueError, UnicodeDecodeError) as exc:
        raise StoreError(f"corrupted value pool {prefix!r}: {exc}") from exc
    raise StoreError(f"unknown value kind {kind!r}")


def pack_value_lists(
    value_lists: Iterable[Sequence[Any]], prefix: str
) -> tuple[dict[str, np.ndarray], list[dict[str, Any]]]:
    """Pack many value lists into one typed pool group named ``prefix``.

    Returns the pool arrays (to merge into a store's array set) and one
    manifest entry per list.  Used for the sketch values themselves and for
    extra groups such as the index's KMV key-sketch values.
    """
    writer = _PoolWriter()
    entries = [writer.add(values) for values in value_lists]
    return writer.arrays(prefix), entries


def unpack_value_lists(
    arrays: Mapping[str, np.ndarray],
    entries: Sequence[Mapping[str, Any]],
    prefix: str,
) -> list[list[Any]]:
    """Inverse of :func:`pack_value_lists`."""
    return [_decode_pool_slice(arrays, prefix, entry) for entry in entries]


# --------------------------------------------------------------------------- #
# Sketch packing
# --------------------------------------------------------------------------- #
def _sketch_manifest_entry(sketch: Sketch, key_slice: list[int], value_entry: dict) -> dict:
    try:
        metadata = json.loads(json.dumps(sketch.metadata))
    except (TypeError, ValueError) as exc:
        raise StoreError(f"sketch metadata is not storable: {exc}") from exc
    return {
        "method": sketch.method,
        "side": str(sketch.side),
        "seed": sketch.seed,
        "capacity": sketch.capacity,
        "value_dtype": sketch.value_dtype.value,
        "table_rows": sketch.table_rows,
        "distinct_keys": sketch.distinct_keys,
        "key_column": sketch.key_column,
        "value_column": sketch.value_column,
        "table_name": sketch.table_name,
        "aggregate": sketch.aggregate,
        "metadata": metadata,
        "keys": key_slice,
        "values": value_entry,
    }


def _sketch_from_manifest(
    entry: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
) -> Sketch:
    start, stop = entry["keys"]
    try:
        key_ids = [int(key_id) for key_id in arrays["key_ids"][start:stop]]
        return Sketch(
            method=entry["method"],
            side=entry["side"],
            seed=int(entry["seed"]),
            capacity=int(entry["capacity"]),
            key_ids=key_ids,
            values=_decode_pool_slice(arrays, "values", entry["values"]),
            value_dtype=DType(entry["value_dtype"]),
            table_rows=int(entry["table_rows"]),
            distinct_keys=int(entry["distinct_keys"]),
            key_column=entry.get("key_column", ""),
            value_column=entry.get("value_column", ""),
            table_name=entry.get("table_name", ""),
            aggregate=entry.get("aggregate"),
            metadata=dict(entry.get("metadata") or {}),
        )
    except (KeyError, IndexError, ValueError, TypeError) as exc:
        raise StoreError(f"malformed sketch entry in store: {exc}") from exc


class SketchStore:
    """A loaded (possibly memory-mapped) columnar sketch store.

    Sketches are materialized lazily: ``store[i]`` slices the shared arrays
    and builds one :class:`~repro.sketches.base.Sketch`; with ``mmap=True``
    the numeric arrays stay on disk until sliced.
    """

    def __init__(
        self,
        manifest: Mapping[str, Any],
        arrays: Mapping[str, np.ndarray],
    ):
        self._manifest = manifest
        self._arrays = arrays
        self._entries = manifest["sketches"]

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index: int) -> Sketch:
        return _sketch_from_manifest(self._entries[index], self._arrays)

    def __iter__(self):
        for index in range(len(self)):
            yield self[index]

    def sketches(self) -> list[Sketch]:
        """Materialize every sketch in the store, in stored order."""
        return list(self)

    @property
    def extra_manifest(self) -> dict[str, Any]:
        """Caller-provided manifest section (e.g. the index's KMV entries)."""
        return self._manifest.get("extra") or {}

    def array(self, name: str) -> np.ndarray:
        """Access a stored array by name (for extra array groups)."""
        try:
            return self._arrays[name]
        except KeyError:
            raise StoreError(f"store has no array {name!r}") from None


# --------------------------------------------------------------------------- #
# File I/O
# --------------------------------------------------------------------------- #
def save_npz(
    path: PathLike,
    sketches: "Sketch | Sequence[Sketch]",
    *,
    extra_arrays: Optional[Mapping[str, np.ndarray]] = None,
    extra_manifest: Optional[Mapping[str, Any]] = None,
) -> PathLike:
    """Write sketches (and optional extra array groups) as one ``.npz`` store.

    Accepts a single sketch or a sequence; returns ``path`` for chaining.
    The archive is written uncompressed so :func:`load_npz` can memory-map
    the members.
    """
    if isinstance(sketches, Sketch):
        sketches = [sketches]
    else:
        sketches = list(sketches)
        for position, sketch in enumerate(sketches):
            if not isinstance(sketch, Sketch):
                raise StoreError(
                    f"store entry {position} is not a Sketch, "
                    f"got {type(sketch).__name__}"
                )
    key_ids: list[int] = []
    writer = _PoolWriter()
    entries = []
    for sketch in sketches:
        key_start = len(key_ids)
        key_ids.extend(int(key_id) for key_id in sketch.key_ids)
        value_entry = writer.add(sketch.values)
        entries.append(
            _sketch_manifest_entry(sketch, [key_start, len(key_ids)], value_entry)
        )
    manifest = {
        "magic": STORE_MAGIC,
        "version": STORE_FORMAT_VERSION,
        "count": len(entries),
        "sketches": entries,
    }
    if extra_manifest:
        manifest["extra"] = json.loads(json.dumps(dict(extra_manifest)))
    arrays: dict[str, np.ndarray] = {
        "key_ids": np.asarray(key_ids, dtype=np.int64),
        **writer.arrays("values"),
    }
    if extra_arrays:
        for name, array in extra_arrays.items():
            if name in arrays or name == "manifest":
                raise StoreError(f"extra array name {name!r} collides with the store layout")
            arrays[name] = np.asarray(array)
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    ).copy()
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)
    return path


def _mmap_member(path: PathLike, info: zipfile.ZipInfo) -> Optional[np.ndarray]:
    """Memory-map one stored ``.npy`` member of the archive, if possible."""
    if info.compress_type != zipfile.ZIP_STORED:
        return None
    with open(path, "rb") as handle:
        handle.seek(info.header_offset)
        local_header = handle.read(30)
        if len(local_header) < 30 or local_header[:4] != b"PK\x03\x04":
            return None
        name_length = int.from_bytes(local_header[26:28], "little")
        extra_length = int.from_bytes(local_header[28:30], "little")
        data_start = info.header_offset + 30 + name_length + extra_length
        handle.seek(data_start)
        try:
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
            else:
                return None
        except ValueError:
            return None
        if dtype.hasobject:
            return None
        return np.memmap(
            path,
            dtype=dtype,
            mode="r",
            offset=handle.tell(),
            shape=shape,
            order="F" if fortran else "C",
        )


def _read_store_arrays(path: PathLike, mmap: bool) -> dict[str, np.ndarray]:
    if not os.path.exists(path):
        raise StoreError(f"no sketch store at {path}")
    try:
        with zipfile.ZipFile(path) as archive:
            members = archive.infolist()
            arrays: dict[str, np.ndarray] = {}
            for info in members:
                name = info.filename
                if not name.endswith(".npy"):
                    continue
                array_name = name[: -len(".npy")]
                array = _mmap_member(path, info) if mmap else None
                if array is None:
                    with archive.open(info) as member:
                        array = np.lib.format.read_array(member, allow_pickle=False)
                arrays[array_name] = array
            return arrays
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise StoreError(f"not a valid sketch store: {path} ({exc})") from exc


def load_npz(path: PathLike, *, mmap: bool = False) -> SketchStore:
    """Open a store written by :func:`save_npz`.

    ``mmap=True`` memory-maps the numeric members instead of reading them,
    so opening a large store is O(1) in its data size.  Raises
    :class:`~repro.exceptions.StoreError` for missing, corrupted,
    wrong-magic or unsupported-version files.
    """
    arrays = _read_store_arrays(path, mmap)
    if "manifest" not in arrays:
        raise StoreError(f"not a sketch store (no manifest): {path}")
    try:
        manifest = json.loads(bytes(np.asarray(arrays["manifest"])).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise StoreError(f"corrupted store manifest: {path}") from exc
    if not isinstance(manifest, dict) or manifest.get("magic") != STORE_MAGIC:
        raise StoreError(f"not a sketch store (bad magic): {path}")
    version = manifest.get("version")
    if version != STORE_FORMAT_VERSION:
        raise StoreError(
            f"unsupported sketch store version {version!r} "
            f"(expected {STORE_FORMAT_VERSION}): {path}"
        )
    entries = manifest.get("sketches")
    if not isinstance(entries, list) or manifest.get("count") != len(entries):
        raise StoreError(f"corrupted store manifest (sketch count mismatch): {path}")
    return SketchStore(manifest, arrays)
