#!/usr/bin/env python
"""Write a small mixed CSV+Parquet lake fixture (plus a base query table).

The CI ``lake-smoke`` job (and anyone reproducing it locally) needs a
realistic staging/lake directory to drive ``repro index ingest --lake``
end-to-end: several correlated tables split across **both** registered
on-disk formats, a ``_SUCCESS`` marker file that ingestion must skip, and a
separate base-table CSV to query the resulting index with.

Tables are deterministic (seeded stdlib ``random``), and the *same logical
rows* land in whichever format a table is assigned — keys are non-numeric
strings and values are genuine floats/ints with occasional nulls, so CSV
type inference agrees with the Parquet file metadata and sketches built
from either format are byte-identical.

CSV needs only the stdlib; writing Parquet tables needs the optional
``pyarrow`` dependency — when it is missing and ``parquet`` is among the
requested formats, the script exits 2 with one line naming the install
remedy (``--formats csv`` sidesteps the requirement).

Usage::

    python tools/make_lake_fixture.py LAKE_DIR [--base-csv PATH]
        [--tables N] [--rows R] [--keys K] [--seed S] [--formats csv,parquet]

Exit codes: 0 fixture written, 2 bad invocation or missing pyarrow.
"""

from __future__ import annotations

import argparse
import csv
import random
import sys
from pathlib import Path
from typing import Optional, Sequence

PYARROW_HINT = (
    "writing Parquet lake fixtures requires the optional pyarrow "
    "dependency; install it with `pip install pyarrow` or pass "
    "--formats csv"
)

#: Value columns per lake table.
VALUE_COLUMNS = 3


class FixtureError(RuntimeError):
    """The fixture could not be written; the message says why."""


def make_table(
    rng: random.Random, *, rows: int, keys: int, table_index: int
) -> dict[str, list]:
    """One lake table as a column dict: string keys, float/int values, nulls.

    Every value column correlates with the hidden per-key signal so the
    resulting index has genuinely rankable candidates, and each dtype is
    unambiguous in *both* formats: keys contain a letter (STRING either
    way), ``v*`` columns are floats, ``count`` is an int column with a few
    nulls (None in Parquet, empty field in CSV — both coerce to None).
    """
    signal = [rng.gauss(0.0, 1.0) for _ in range(keys)]
    row_keys = [rng.randrange(keys) for _ in range(rows)]
    data: dict[str, list] = {"key": [f"k{key:04d}" for key in row_keys]}
    for column in range(VALUE_COLUMNS):
        mix = rng.uniform(0.2, 0.8)
        data[f"v{table_index:02d}_{column}"] = [
            round((1.0 - mix) * signal[key] + mix * rng.gauss(0.0, 1.0), 6)
            for key in row_keys
        ]
    data["count"] = [
        None if rng.random() < 0.05 else rng.randrange(100) for _ in range(rows)
    ]
    return data


def write_csv_table(path: Path, data: dict[str, list]) -> None:
    """Write a column dict as CSV (missing values become empty fields)."""
    names = list(data)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for row in zip(*(data[name] for name in names)):
            writer.writerow(["" if value is None else value for value in row])


def write_parquet_table(path: Path, data: dict[str, list]) -> None:
    """Write a column dict as Parquet with several row groups.

    A small ``row_group_size`` forces multiple row groups so the reader's
    row-group-aligned chunking actually gets exercised by the fixture.
    """
    try:
        import pyarrow as pa
        import pyarrow.parquet as pq
    except ImportError:
        raise FixtureError(PYARROW_HINT) from None
    rows = len(next(iter(data.values())))
    table = pa.table(
        {
            name: pa.array(
                values,
                type=pa.float64()
                if name.startswith("v")
                else (pa.int64() if name == "count" else pa.string()),
            )
            for name, values in data.items()
        }
    )
    pq.write_table(table, path, row_group_size=max(1, rows // 3))


def write_base_csv(path: Path, *, keys: int, seed: int) -> None:
    """Write the base query table (one row per key, numeric target)."""
    rng = random.Random(seed)
    data = {
        "key": [f"k{key:04d}" for key in range(keys)],
        "target": [round(rng.gauss(0.0, 1.0), 6) for _ in range(keys)],
    }
    write_csv_table(path, data)


def build_lake(
    directory: Path,
    *,
    tables: int = 4,
    rows: int = 300,
    keys: int = 60,
    seed: int = 0,
    formats: Sequence[str] = ("csv", "parquet"),
) -> dict:
    """Write the lake fixture; returns a summary of what was written.

    Tables round-robin over ``formats`` (``lake000.csv``,
    ``lake001.parquet``, ...), and a ``_SUCCESS`` marker lands next to
    them — ingestion must skip it.
    """
    known = {"csv", "parquet"}
    unknown = [name for name in formats if name not in known]
    if unknown:
        raise FixtureError(
            f"unknown format(s) {', '.join(unknown)}; supported: csv, parquet"
        )
    if not formats:
        raise FixtureError("at least one format is required")
    directory.mkdir(parents=True, exist_ok=True)
    rng = random.Random(seed)
    writers = {"csv": write_csv_table, "parquet": write_parquet_table}
    written: list[str] = []
    for table_index in range(tables):
        format_name = formats[table_index % len(formats)]
        path = directory / f"lake{table_index:03d}.{format_name}"
        data = make_table(rng, rows=rows, keys=keys, table_index=table_index)
        writers[format_name](path, data)
        written.append(path.name)
    (directory / "_SUCCESS").write_text("", encoding="utf-8")
    return {
        "directory": str(directory),
        "tables": written,
        "rows_per_table": rows,
        "keys": keys,
        "value_columns_per_table": VALUE_COLUMNS,
        "formats": list(formats),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Write a small mixed CSV+Parquet lake fixture."
    )
    parser.add_argument("lake_dir", type=Path, help="lake directory to create")
    parser.add_argument(
        "--base-csv", type=Path, default=None,
        help="also write a base query table (key + target) to this path",
    )
    parser.add_argument("--tables", type=int, default=4)
    parser.add_argument("--rows", type=int, default=300)
    parser.add_argument("--keys", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--formats", default="csv,parquet",
        help="comma-separated formats to round-robin over (default both)",
    )
    args = parser.parse_args(argv)
    formats = [name.strip() for name in args.formats.split(",") if name.strip()]
    try:
        summary = build_lake(
            args.lake_dir,
            tables=args.tables,
            rows=args.rows,
            keys=args.keys,
            seed=args.seed,
            formats=formats,
        )
    except FixtureError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.base_csv is not None:
        args.base_csv.parent.mkdir(parents=True, exist_ok=True)
        write_base_csv(args.base_csv, keys=args.keys, seed=args.seed + 1)
        summary["base_csv"] = str(args.base_csv)
    print(
        f"wrote {len(summary['tables'])} lake tables "
        f"({', '.join(summary['tables'])}) under {summary['directory']}"
        + (f" and base table {summary['base_csv']}" if args.base_csv else "")
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
