#!/usr/bin/env python
"""CI docs check: verify intra-repo links in the project's markdown files.

Scans ``README.md`` and ``docs/*.md`` for markdown links and images
(``[text](target)`` / ``![alt](target)``) and fails when a *relative*
target does not exist on disk (resolved against the linking file's
directory; ``#fragment`` suffixes are stripped).  External targets
(``http://``, ``https://``, ``mailto:``) and pure in-page anchors
(``#section``) are ignored — this gate is about links the repository
itself can break.

Stdlib-only so CI can run it before any project dependency is installed.

Usage::

    python tools/check_links.py             # check the default file set
    python tools/check_links.py FILE [...]  # check specific markdown files

Exit codes: 0 all links resolve, 1 broken links (listed on stderr) or a
named file is missing, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Iterable, Optional

#: Inline markdown links/images: [text](target) and ![alt](target).
#: Angle-bracket targets (`<path with spaces.md>`) keep their spaces; bare
#: targets stop at whitespace or the closing parenthesis, which also splits
#: off optional link titles (`[t](file.md "title")`).
_LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(\s*(?:<([^>]+)>|([^)\s]+))[^)]*\)")

#: Targets outside this repository's control.
_EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def iter_links(text: str) -> Iterable[str]:
    """Yield every link target appearing in a markdown document."""
    for match in _LINK_PATTERN.finditer(text):
        yield match.group(1) if match.group(1) is not None else match.group(2)


def classify_target(target: str) -> Optional[str]:
    """Return the relative path a target must resolve to, or None to skip.

    External URLs and pure in-page anchors are skipped; for everything else
    the ``#fragment`` suffix is stripped and the remaining path returned.
    """
    if target.lower().startswith(_EXTERNAL_SCHEMES):
        return None
    path = target.split("#", 1)[0]
    if not path:  # pure anchor: "#section"
        return None
    return path


def broken_links(markdown_file: Path) -> list[str]:
    """Relative link targets in ``markdown_file`` that do not exist on disk."""
    text = markdown_file.read_text(encoding="utf-8")
    failures = []
    for target in iter_links(text):
        path = classify_target(target)
        if path is None:
            continue
        resolved = (markdown_file.parent / path).resolve()
        if not resolved.exists():
            failures.append(target)
    return failures


def default_file_set(root: Path) -> list[Path]:
    """README.md plus every markdown file under docs/."""
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").glob("*.md")))
    return files


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="markdown files to check (default: README.md and docs/*.md)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root used to build the default file set",
    )
    args = parser.parse_args(argv)

    files = args.files or default_file_set(args.root)
    if not files:
        print("no markdown files to check", file=sys.stderr)
        return 1

    exit_code = 0
    checked = 0
    for markdown_file in files:
        if not markdown_file.exists():
            print(f"FAIL: no such file: {markdown_file}", file=sys.stderr)
            exit_code = 1
            continue
        checked += 1
        for target in broken_links(markdown_file):
            print(f"FAIL: {markdown_file}: broken link -> {target}", file=sys.stderr)
            exit_code = 1
    if exit_code == 0:
        print(f"docs link check: {checked} file(s), all intra-repo links resolve")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
