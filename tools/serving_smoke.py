#!/usr/bin/env python
"""CI serving smoke test: build a tiny index, serve it, query it end-to-end.

This is the CI ``serving-smoke`` job's inline heredocs extracted into one
unit-testable script.  It exercises the *real* serving stack the way a
client would:

1. write a small CSV fixture lake (deterministic, seeded),
2. ``repro index build`` it into an index directory via the CLI,
3. start ``repro serve`` as a subprocess (ephemeral port, thread or
   process execution),
4. hit ``/healthz``, ``POST /query`` and ``/metrics`` over HTTP and check
   the responses — including, under ``--execution process``, that the
   worker pool is live and reporting per-worker counters.

Stdlib-only so CI can run it before any project dependency is importable
(the *server* subprocess needs the project's requirements; this script
does not).

Usage::

    python tools/serving_smoke.py                       # thread execution
    python tools/serving_smoke.py --execution process --workers 2

Exit codes: 0 smoke passed, 1 a check failed or the server died, 2 bad
invocation.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import random
import re
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path
from typing import Optional

#: "serving <dir> (N candidates, <mode> execution) on http://host:port — ..."
_SERVING_LINE = re.compile(r"on http://([^:\s]+):(\d+)")

NUM_KEYS = 120


class SmokeFailure(AssertionError):
    """A smoke check failed; the message says which one and why."""


# --------------------------------------------------------------------- #
# Fixture lake + query document (pure functions, unit-tested directly)
# --------------------------------------------------------------------- #
def write_fixture(directory: Path, *, num_keys: int = NUM_KEYS, seed: int = 7) -> Path:
    """Write base.csv + two correlated lake tables; returns the directory."""
    rng = random.Random(seed)
    directory.mkdir(parents=True, exist_ok=True)
    keys = [f"k{i:03d}" for i in range(num_keys)]
    target = {key: rng.gauss(0, 1) for key in keys}
    with open(directory / "base.csv", "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["key", "target"])
        for key in keys:
            writer.writerow([key, f"{target[key]:.6f}"])
    for name in ("lake0", "lake1"):
        with open(directory / f"{name}.csv", "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["key", "signal", "noise"])
            for key in keys:
                writer.writerow(
                    [
                        key,
                        f"{target[key] + 0.3 * rng.gauss(0, 1):.6f}",
                        f"{rng.gauss(0, 1):.6f}",
                    ]
                )
    return directory


def build_query_document(base_csv: Path) -> dict:
    """The ``POST /query`` body for the fixture's base table."""
    with open(base_csv, newline="", encoding="utf-8") as handle:
        rows = list(csv.DictReader(handle))
    return {
        "table": {
            "name": "base",
            "columns": {
                "key": [row["key"] for row in rows],
                "target": [float(row["target"]) for row in rows],
            },
        },
        "key_column": "key",
        "target_column": "target",
        "min_join_size": 8,
    }


# --------------------------------------------------------------------- #
# Response checks (pure functions, unit-tested directly)
# --------------------------------------------------------------------- #
def check_healthz(document: dict, execution: str) -> None:
    if document.get("status") != "ok":
        raise SmokeFailure(f"healthz status is not ok: {document}")
    if document.get("execution") != execution:
        raise SmokeFailure(
            f"healthz reports execution={document.get('execution')!r}, "
            f"expected {execution!r}: {document}"
        )


def check_query_response(document: dict) -> dict:
    """Validate the query response; returns the top result."""
    results = document.get("results")
    if not results:
        raise SmokeFailure(f"query returned no results: {document}")
    top = results[0]
    for field in ("candidate_id", "mi_estimate"):
        if field not in top:
            raise SmokeFailure(f"top result is missing {field!r}: {top}")
    return top


def check_metrics(document: dict, execution: str, workers: int) -> None:
    service = document.get("service", {})
    counters = service.get("counters", {})
    if counters.get("queries", 0) < 1:
        raise SmokeFailure(f"metrics recorded no queries: {document}")
    if execution != "process":
        return
    pool = service.get("worker_pool")
    if not pool:
        raise SmokeFailure(f"process execution but no worker_pool stats: {service}")
    if pool.get("alive", 0) != workers:
        raise SmokeFailure(
            f"expected {workers} live workers, got {pool.get('alive')}: {pool}"
        )
    completed = sum(
        entry.get("completed", 0) for entry in pool.get("per_worker", {}).values()
    )
    if completed < 1:
        raise SmokeFailure(f"no worker completed a request: {pool}")
    if pool.get("shared_cache") is not None and "hits" not in pool["shared_cache"]:
        raise SmokeFailure(f"shared cache stats are malformed: {pool}")


# --------------------------------------------------------------------- #
# Orchestration
# --------------------------------------------------------------------- #
def _http_json(url: str, body: Optional[dict] = None, timeout: float = 120.0) -> dict:
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if body is not None else {},
        method="POST" if body is not None else "GET",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def wait_for_server(process: subprocess.Popen, timeout: float = 60.0) -> str:
    """Parse the serve banner for the bound address; returns the base URL."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            if process.poll() is not None:
                raise SmokeFailure(
                    f"server exited with code {process.returncode} before "
                    f"binding a port"
                )
            time.sleep(0.05)
            continue
        print(f"[server] {line.rstrip()}")
        match = _SERVING_LINE.search(line)
        if match:
            return f"http://{match.group(1)}:{match.group(2)}"
    raise SmokeFailure(f"server did not report a bound port within {timeout}s")


def run_smoke(
    execution: str = "thread",
    workers: int = 2,
    *,
    capacity: int = 64,
    python: str = sys.executable,
    repo_root: Optional[Path] = None,
) -> None:
    """Build, serve and query the fixture lake; raises SmokeFailure on error."""
    root = repo_root or Path(__file__).parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(root / "src"), env.get("PYTHONPATH")])
    )
    env["PYTHONUNBUFFERED"] = "1"
    with tempfile.TemporaryDirectory(prefix="serving-smoke-") as scratch:
        fixture = write_fixture(Path(scratch) / "fixture")
        index_dir = Path(scratch) / "fixture.index"
        subprocess.run(
            [
                python, "-m", "repro.cli", "index", "build",
                str(fixture / "lake0.csv"), str(fixture / "lake1.csv"),
                "--key", "key", "--capacity", str(capacity),
                "-o", str(index_dir),
            ],
            check=True,
            env=env,
        )
        server = subprocess.Popen(
            [
                python, "-m", "repro.cli", "serve",
                "--index", str(index_dir),
                "--port", "0",
                "--workers", str(workers),
                "--execution", execution,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            url = wait_for_server(server)
            health = _http_json(url + "/healthz")
            check_healthz(health, execution)
            print(f"healthz: {health}")
            top = check_query_response(
                _http_json(url + "/query", build_query_document(fixture / "base.csv"))
            )
            print(f"top result: {top['candidate_id']} {top['mi_estimate']}")
            check_metrics(_http_json(url + "/metrics"), execution, workers)
            print("metrics ok")
        finally:
            server.terminate()
            try:
                server.wait(timeout=15)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait(timeout=15)
    print(f"serving smoke passed ({execution} execution, {workers} workers)")


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--execution",
        choices=("thread", "process"),
        default="thread",
        help="query execution mode to smoke-test (default thread)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="server worker count (default 2)"
    )
    parser.add_argument(
        "--capacity", type=int, default=64, help="sketch capacity (default 64)"
    )
    args = parser.parse_args(argv)
    try:
        run_smoke(args.execution, args.workers, capacity=args.capacity)
    except SmokeFailure as failure:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    except subprocess.CalledProcessError as failure:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
