"""Tests for the chunked table sources (repro.ingest.reader)."""

import pytest

from repro.exceptions import IngestError, SchemaError
from repro.ingest.reader import CSVReader, InMemoryReader, iter_chunks
from repro.relational.csvio import read_csv, write_csv
from repro.relational.dtypes import DType
from repro.relational.table import Table


def concat_chunks(chunks):
    data: dict = {}
    for chunk in chunks:
        for column in chunk.columns:
            data.setdefault(column.name, []).extend(column.values)
    return data


class TestInMemoryReader:
    def test_chunks_reproduce_the_table(self):
        table = Table.from_dict(
            {"k": list(range(10)), "v": [float(i) for i in range(10)]}, name="t"
        )
        reader = InMemoryReader(table, chunk_size=3)
        chunks = list(reader)
        assert [chunk.num_rows for chunk in chunks] == [3, 3, 3, 1]
        assert concat_chunks(chunks) == table.to_dict()
        assert reader.name == "t"
        assert all(chunk.name == "t" for chunk in chunks)

    def test_chunks_inherit_parent_dtypes(self):
        # A chunk of all-int values must stay FLOAT if the parent column is.
        table = Table.from_dict({"k": ["a", "b", "c"], "v": [1, 2, 2.5]})
        chunks = list(InMemoryReader(table, chunk_size=2))
        assert [chunk.column("v").dtype for chunk in chunks] == [
            DType.FLOAT,
            DType.FLOAT,
        ]
        assert chunks[0].column("v").values == [1.0, 2.0]

    def test_schema_matches_table(self):
        table = Table.from_dict({"k": ["a"], "v": [1]})
        assert InMemoryReader(table).schema() == table.schema()

    def test_chunk_size_validated(self):
        with pytest.raises(IngestError):
            InMemoryReader(Table.from_dict({"k": [1]}), chunk_size=0)


class TestCSVReader:
    def write(self, tmp_path, text, name="table.csv"):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return path

    def test_chunks_match_whole_file_read(self, tmp_path):
        path = self.write(
            tmp_path,
            "key,temp,label\n1,20.5,x\n2,,y\n3,7,z\n4,1.25,x\n5,3,q\n",
        )
        reader = CSVReader(path, chunk_size=2)
        batch = read_csv(path)
        assert reader.schema() == batch.schema()
        assert concat_chunks(reader) == batch.to_dict()
        assert reader.name == "table"

    def test_type_inference_uses_the_whole_file(self, tmp_path):
        # The first 3 rows alone would infer INT for both columns; the last
        # row makes `key` FLOAT and `label` STRING — every chunk must coerce
        # under the whole-file dtype, exactly as read_csv does.
        path = self.write(
            tmp_path, "key,label\n1,10\n2,11\n3,12\n4.5,oops\n"
        )
        reader = CSVReader(path, chunk_size=2)
        assert reader.schema() == {"key": DType.FLOAT, "label": DType.STRING}
        chunks = list(reader)
        assert chunks[0].column("key").values == [1.0, 2.0]
        assert chunks[0].column("label").values == ["10", "11"]
        assert concat_chunks(chunks) == read_csv(path).to_dict()

    def test_round_trips_written_tables(self, tmp_path):
        table = Table.from_dict(
            {"k": ["a", "b", None, "d"], "v": [1.5, None, 3.0, -2.25]}, name="rt"
        )
        path = tmp_path / "rt.csv"
        write_csv(table, path)
        assert concat_chunks(CSVReader(path, chunk_size=3)) == read_csv(path).to_dict()

    def test_projection(self, tmp_path):
        path = self.write(tmp_path, "a,b,c\n1,2,3\n4,5,6\n")
        reader = CSVReader(path, chunk_size=10, columns=["c", "a"])
        assert reader.column_names == ("c", "a")
        (chunk,) = list(reader)
        assert chunk.column_names == ("c", "a")
        assert chunk.column("c").values == [3, 6]

    def test_unknown_projection_column(self, tmp_path):
        path = self.write(tmp_path, "a,b\n1,2\n")
        with pytest.raises(SchemaError):
            CSVReader(path, columns=["nope"]).schema()

    def test_ragged_row_rejected(self, tmp_path):
        path = self.write(tmp_path, "a,b\n1,2\n3\n")
        with pytest.raises(SchemaError):
            list(CSVReader(path, chunk_size=10))

    def test_empty_file_rejected(self, tmp_path):
        path = self.write(tmp_path, "")
        with pytest.raises(SchemaError):
            CSVReader(path).schema()

    def test_header_only_file_yields_no_chunks(self, tmp_path):
        path = self.write(tmp_path, "a,b\n")
        reader = CSVReader(path)
        assert reader.schema() == {"a": DType.MISSING, "b": DType.MISSING}
        assert list(reader) == []


class TestIterChunks:
    def test_accepts_reader_table_and_iterable(self):
        table = Table.from_dict({"k": [1, 2, 3]}, name="t")
        for source in (InMemoryReader(table, 2), table, iter([table])):
            name, chunks = iter_chunks(source)
            assert name == "t"
            assert concat_chunks(chunks) == table.to_dict()

    def test_empty_iterable_rejected(self):
        with pytest.raises(IngestError):
            iter_chunks(iter([]))

    def test_non_table_chunks_rejected(self):
        with pytest.raises(IngestError):
            iter_chunks(iter(["nope"]))
        table = Table.from_dict({"k": [1]})
        _, chunks = iter_chunks(iter([table, "nope"]))
        with pytest.raises(IngestError):
            list(chunks)

    def test_path_routes_through_source_registry(self, tmp_path):
        path = tmp_path / "routed.csv"
        path.write_text("k,v\na,1\nb,2\n", encoding="utf-8")
        for source in (str(path), path):
            name, chunks = iter_chunks(source)
            assert name == "routed"
            assert concat_chunks(chunks) == {"k": ["a", "b"], "v": [1, 2]}

    def test_unknown_extension_path_raises_typed_error(self, tmp_path):
        path = tmp_path / "table.xlsx"
        path.write_text("k\n1\n", encoding="utf-8")
        with pytest.raises(IngestError, match="cannot detect the table format"):
            iter_chunks(str(path))

    def test_non_iterable_input_raises_typed_error_naming_formats(self):
        # Regression: ints/None/objects used to surface as a bare TypeError
        # from iter(); they must raise IngestError naming every supported
        # source kind instead.
        for bad in (42, None, 3.14, object()):
            with pytest.raises(IngestError, match="csv") as excinfo:
                iter_chunks(bad)
            message = str(excinfo.value)
            assert type(bad).__name__ in message
            assert "TableReader" in message
            assert "parquet" in message

    def test_dict_input_rejected_with_supported_kinds(self):
        # A column dict is a plausible mistake (iterable of keys): the first
        # "chunk" is a string, so the typed error must fire, not a crash.
        with pytest.raises(IngestError, match="expected"):
            iter_chunks({"k": [1, 2]})
