"""Tests for the pluggable source registry (repro.ingest.sources)."""

from __future__ import annotations

import pytest

from repro.exceptions import IngestError
from repro.ingest.reader import CSVReader, InMemoryReader, TableReader
from repro.ingest.sources import (
    DirectorySource,
    SourceFormat,
    detect_format,
    get_format,
    open_lake,
    open_source,
    register_source,
    source_formats,
    supported_extensions,
    supported_source_kinds,
)
from repro.relational.table import Table


def write_csv(path, text="key,value\na,1.5\nb,2.5\n"):
    path.write_text(text, encoding="utf-8")
    return path


class TestRegistry:
    def test_builtin_formats(self):
        names = [spec.name for spec in source_formats()]
        assert "csv" in names and "parquet" in names
        assert supported_extensions()[".csv"] == "csv"
        assert supported_extensions()[".parquet"] == "parquet"
        assert supported_extensions()[".pq"] == "parquet"

    def test_parquet_format_declares_its_optional_dependency(self):
        assert get_format("parquet").requires == "pyarrow"
        assert get_format("csv").requires is None

    def test_schema_inference_cost_is_documented(self):
        assert "two-pass" in get_format("csv").schema_inference
        assert "no data pass" in get_format("parquet").schema_inference

    def test_get_format_unknown_name(self):
        with pytest.raises(IngestError, match="registered formats"):
            get_format("orc")

    def test_detect_format_by_extension(self):
        assert detect_format("t.csv").name == "csv"
        assert detect_format("dir/T.PARQUET").name == "parquet"
        assert detect_format("x.pq").name == "parquet"

    def test_detect_format_unknown_extension(self):
        with pytest.raises(IngestError, match=r"\.csv"):
            detect_format("table.xlsx")
        with pytest.raises(IngestError, match="pass the format explicitly"):
            detect_format("no_extension")

    def test_register_rejects_dotless_extension(self):
        spec = SourceFormat(name="bad", extensions=("tsv",), factory=CSVReader)
        with pytest.raises(IngestError, match="must start with a dot"):
            register_source(spec)

    def test_register_rejects_claimed_extension(self):
        spec = SourceFormat(name="csv2", extensions=(".csv",), factory=CSVReader)
        with pytest.raises(IngestError, match="already registered"):
            register_source(spec)

    def test_register_and_resolve_custom_format(self, tmp_path, monkeypatch):
        from repro.ingest import sources

        monkeypatch.setattr(sources, "_REGISTRY", dict(sources._REGISTRY))

        def tsv_factory(path, chunk_size, name=None, columns=None):
            return CSVReader(path, chunk_size, name=name or "", columns=columns)

        register_source(
            SourceFormat(name="tsv", extensions=(".tsv",), factory=tsv_factory)
        )
        path = tmp_path / "t.tsv"
        write_csv(path)
        reader = open_source(path)
        assert isinstance(reader, CSVReader)

    def test_supported_source_kinds_names_everything(self):
        kinds = supported_source_kinds()
        assert "Table" in kinds
        assert "csv" in kinds and "parquet" in kinds


class TestOpenSource:
    def test_reader_passes_through(self, tmp_path):
        reader = CSVReader(write_csv(tmp_path / "t.csv"))
        assert open_source(reader) is reader

    def test_reader_with_explicit_format_rejected(self, tmp_path):
        reader = CSVReader(write_csv(tmp_path / "t.csv"))
        with pytest.raises(IngestError, match="already-open"):
            open_source(reader, format="csv")

    def test_table_wraps_in_memory(self):
        table = Table.from_dict({"k": ["a", "b"], "v": [1, 2]}, name="mem")
        reader = open_source(table, chunk_size=1)
        assert isinstance(reader, InMemoryReader)
        assert reader.name == "mem"
        assert len(list(reader)) == 2

    def test_table_with_projection(self):
        table = Table.from_dict({"k": ["a"], "v": [1], "w": [2.0]})
        reader = open_source(table, columns=["w", "k"])
        assert reader.column_names == ("w", "k")

    def test_table_with_explicit_format_rejected(self):
        with pytest.raises(IngestError, match="in-memory Table"):
            open_source(Table.from_dict({"k": [1]}), format="csv")

    def test_csv_path_auto_detected(self, tmp_path):
        reader = open_source(write_csv(tmp_path / "t.csv"), chunk_size=1)
        assert isinstance(reader, CSVReader)
        assert reader.chunk_size == 1
        assert reader.name == "t"

    def test_explicit_format_overrides_extension(self, tmp_path):
        path = write_csv(tmp_path / "t.dat")
        reader = open_source(path, format="csv")
        assert isinstance(reader, CSVReader)

    def test_unknown_extension_raises(self, tmp_path):
        path = write_csv(tmp_path / "t.xlsx")
        with pytest.raises(IngestError, match="cannot detect the table format"):
            open_source(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(IngestError, match="no such table file"):
            open_source(tmp_path / "absent.csv")

    def test_directory_points_at_lake(self, tmp_path):
        with pytest.raises(IngestError, match="--lake"):
            open_source(tmp_path)

    def test_unsupported_object_raises_with_alternatives(self):
        with pytest.raises(IngestError, match="TableReader"):
            open_source(42)

    def test_parquet_path_routes_to_parquet_factory(self, tmp_path, monkeypatch):
        # Without pyarrow the factory must fail with the install hint —
        # proving the path routed through the parquet format.
        import builtins
        import sys

        real_import = builtins.__import__

        def block(name, *args, **kwargs):
            if name.startswith("pyarrow"):
                raise ImportError(name)
            return real_import(name, *args, **kwargs)

        monkeypatch.delitem(sys.modules, "pyarrow", raising=False)
        monkeypatch.delitem(sys.modules, "pyarrow.parquet", raising=False)
        monkeypatch.setattr(builtins, "__import__", block)
        path = tmp_path / "t.parquet"
        path.write_bytes(b"")
        with pytest.raises(IngestError, match="pip install pyarrow"):
            open_source(path)


class TestDirectorySource:
    def make_lake(self, tmp_path, names):
        lake = tmp_path / "lake"
        lake.mkdir()
        for name in names:
            write_csv(lake / name) if name.endswith(".csv") else (
                lake / name
            ).write_text("", encoding="utf-8")
        return lake

    def test_discovers_sorted_data_files(self, tmp_path):
        lake = self.make_lake(tmp_path, ["b.csv", "a.csv"])
        source = DirectorySource(lake)
        assert [reader.name for reader in source] == ["a", "b"]
        assert len(source) == 2

    def test_skips_markers_and_hidden_files(self, tmp_path):
        lake = self.make_lake(tmp_path, ["a.csv", "_SUCCESS", ".hidden.csv"])
        source = DirectorySource(lake)
        assert len(source) == 1
        assert source.skipped == ()

    def test_unrecognized_extensions_recorded_not_fatal(self, tmp_path):
        lake = self.make_lake(tmp_path, ["a.csv", "notes.txt"])
        source = DirectorySource(lake)
        assert len(source) == 1
        assert [p.endswith("notes.txt") for p in source.skipped] == [True]

    def test_subdirectories_ignored(self, tmp_path):
        lake = self.make_lake(tmp_path, ["a.csv"])
        (lake / "nested").mkdir()
        write_csv(lake / "nested" / "b.csv")
        assert len(DirectorySource(lake)) == 1

    def test_empty_lake_raises(self, tmp_path):
        lake = self.make_lake(tmp_path, ["_SUCCESS"])
        with pytest.raises(IngestError, match="no recognized table files"):
            DirectorySource(lake)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(IngestError, match="lake directory not found"):
            DirectorySource(tmp_path / "nope")

    def test_duplicate_table_stems_raise(self, tmp_path):
        lake = self.make_lake(tmp_path, ["a.csv", "a.parquet"])
        with pytest.raises(IngestError, match="two files for"):
            DirectorySource(lake)

    def test_forced_format_narrows_accepted_extensions(self, tmp_path):
        lake = self.make_lake(tmp_path, ["a.csv", "b.parquet"])
        source = DirectorySource(lake, format="csv")
        assert len(source) == 1
        assert [p.endswith("b.parquet") for p in source.skipped] == [True]

    def test_sources_yield_working_readers(self, tmp_path):
        lake = self.make_lake(tmp_path, ["a.csv", "b.csv"])
        readers = list(open_lake(lake, chunk_size=1).sources())
        assert all(isinstance(reader, TableReader) for reader in readers)
        for reader in readers:
            (first, second) = list(reader)
            assert first.num_rows == second.num_rows == 1

    def test_projection_applies_to_every_table(self, tmp_path):
        lake = self.make_lake(tmp_path, ["a.csv", "b.csv"])
        for reader in open_lake(lake, columns=["value"]):
            assert reader.column_names == ("value",)
