"""Tests for chunked index-candidate construction (repro.ingest.ingestor)."""

import numpy as np
import pytest

from repro.discovery import IndexBuilder
from repro.engine import EngineConfig, SketchEngine
from repro.exceptions import IngestError
from repro.ingest import InMemoryReader, TableIngestor
from repro.relational.table import Table


def make_lake_table(seed=0, rows=400, name="lake"):
    rng = np.random.default_rng(seed)
    keys = [
        None if rng.random() < 0.04 else f"k{int(i):03d}"
        for i in rng.integers(0, 60, size=rows)
    ]
    return Table.from_dict(
        {
            "key": keys,
            "metric": rng.normal(size=rows).tolist(),
            "count": [int(i) for i in rng.integers(0, 9, size=rows)],
            "label": ["rgb"[int(i) % 3] for i in rng.integers(0, 60, size=rows)],
        },
        name=name,
    )


def batch_candidates(table, config, key_columns=("key",)):
    builder = IndexBuilder(SketchEngine(config))
    builder.add_table(table, list(key_columns))
    return builder.build().candidates


class TestTableIngestor:
    def test_candidates_identical_to_batch_build(self):
        config = EngineConfig(capacity=32, seed=3)
        table = make_lake_table(seed=5)
        reference = batch_candidates(table, config)
        ingestor = TableIngestor(config, ["key"], name="lake")
        ingestor.extend(InMemoryReader(table, chunk_size=64))
        candidates = ingestor.finalize()
        assert [c.candidate_id for c in candidates] == [
            c.candidate_id for c in reference
        ]
        for mine, ref in zip(candidates, reference):
            assert mine.sketch == ref.sketch
            assert mine.profile == ref.profile
            assert mine.aggregate == ref.aggregate
            assert mine.key_kmv.hashes == ref.key_kmv.hashes
            assert mine.key_kmv.values == ref.key_kmv.values

    def test_default_aggregates_follow_column_dtype(self):
        table = make_lake_table(seed=7)
        ingestor = TableIngestor(EngineConfig(capacity=16), ["key"], name="lake")
        ingestor.add_chunk(next(iter(InMemoryReader(table, chunk_size=50))))
        by_value = {
            candidate.profile.value_column: candidate.aggregate
            for candidate in ingestor.finalize()
        }
        assert by_value == {"metric": "avg", "count": "avg", "label": "mode"}

    def test_explicit_aggregate_applies_to_every_pair(self):
        table = make_lake_table(seed=9)
        ingestor = TableIngestor(
            EngineConfig(capacity=16), ["key"], ["metric", "count"],
            name="lake", agg="max",
        )
        ingestor.extend(InMemoryReader(table, chunk_size=128))
        candidates = ingestor.finalize()
        assert [c.aggregate for c in candidates] == ["max", "max"]
        assert all("max" in c.candidate_id for c in candidates)

    def test_metadata_copied_per_candidate(self):
        table = make_lake_table(seed=2)
        ingestor = TableIngestor(
            EngineConfig(capacity=8), ["key"], ["metric"],
            name="lake", metadata={"origin": "test"},
        )
        ingestor.extend(InMemoryReader(table, chunk_size=100))
        (candidate,) = ingestor.finalize()
        assert candidate.metadata == {"origin": "test"}
        candidate.metadata["origin"] = "mutated"
        assert ingestor._metadata == {"origin": "test"}

    def test_schema_drift_rejected(self):
        ingestor = TableIngestor(EngineConfig(capacity=8), ["key"], name="t")
        ingestor.add_chunk(Table.from_dict({"key": ["a"], "v": [1.0]}))
        with pytest.raises(IngestError, match="drift"):
            ingestor.add_chunk(Table.from_dict({"key": ["b"], "other": [2.0]}))

    def test_categorical_vs_numeric_dtype_drift_rejected(self):
        # An INT-keyed chunk followed by a STRING-keyed chunk can never
        # match a whole-table load (the ints would have been coerced to
        # strings and hashed differently) — diagnosed, not silently wrong.
        ingestor = TableIngestor(EngineConfig(capacity=8), ["key"], name="t")
        ingestor.add_chunk(Table.from_dict({"key": [1, 2], "v": [1.0, 2.0]}))
        with pytest.raises(IngestError, match="key.*was int.*string"):
            ingestor.add_chunk(Table.from_dict({"key": ["x"], "v": [3.0]}))
        # ... and drifting *value* dtypes are caught the same way.
        ingestor = TableIngestor(EngineConfig(capacity=8), ["key"], name="t")
        ingestor.add_chunk(Table.from_dict({"key": ["a"], "v": [1.0]}))
        with pytest.raises(IngestError, match="'v' was float.*string"):
            ingestor.add_chunk(Table.from_dict({"key": ["b"], "v": ["oops"]}))

    def test_int_float_dtype_drift_heals_at_finalize(self):
        # Equal-valued int and float keys hash identically and values are
        # coerced to the folded dtype, so INT→FLOAT drift stays equivalent
        # to batch-building the concatenated rows.
        config = EngineConfig(capacity=8, seed=1)
        ingestor = TableIngestor(config, ["key"], name="t")
        ingestor.add_chunk(Table.from_dict({"key": [1, 2], "v": [1, 2]}))
        ingestor.add_chunk(Table.from_dict({"key": [2.0, 3.5], "v": [2.5, 4]}))
        (candidate,) = ingestor.finalize()
        whole = Table.from_dict(
            {"key": [1, 2, 2.0, 3.5], "v": [1, 2, 2.5, 4]}, name="t"
        )
        (reference,) = batch_candidates(whole, config)
        assert candidate.sketch == reference.sketch
        assert candidate.key_kmv.hashes == reference.key_kmv.hashes
        assert candidate.profile.value_distinct == reference.profile.value_distinct

    def test_no_chunks_rejected(self):
        ingestor = TableIngestor(EngineConfig(capacity=8), ["key"], name="t")
        with pytest.raises(IngestError):
            ingestor.finalize()

    def test_no_key_columns_rejected(self):
        with pytest.raises(IngestError):
            TableIngestor(EngineConfig(capacity=8), [], name="t")

    def test_no_value_columns_rejected(self):
        ingestor = TableIngestor(EngineConfig(capacity=8), ["key"], name="t")
        with pytest.raises(IngestError):
            ingestor.add_chunk(Table.from_dict({"key": ["a"]}))

    def test_multiple_key_columns_match_batch(self):
        config = EngineConfig(capacity=16, seed=1)
        rng = np.random.default_rng(12)
        table = Table.from_dict(
            {
                "k1": [f"a{int(i)}" for i in rng.integers(0, 20, size=200)],
                "k2": [int(i) for i in rng.integers(0, 15, size=200)],
                "v": rng.normal(size=200).tolist(),
            },
            name="twokeys",
        )
        reference = batch_candidates(table, config, key_columns=("k1", "k2"))
        ingestor = TableIngestor(config, ["k1", "k2"], name="twokeys")
        ingestor.extend(InMemoryReader(table, chunk_size=33))
        candidates = ingestor.finalize()
        assert [c.candidate_id for c in candidates] == [
            c.candidate_id for c in reference
        ]
        for mine, ref in zip(candidates, reference):
            assert mine.sketch == ref.sketch
            assert mine.profile == ref.profile
