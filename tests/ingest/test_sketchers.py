"""Tests for the per-method streaming sketchers (repro.ingest.sketchers)."""

import numpy as np
import pytest

from repro.exceptions import IngestError, SketchError
from repro.ingest.sketchers import (
    StreamingBaseSketcher,
    StreamingCandidateSketcher,
    streaming_base_sketcher,
    streaming_candidate_sketcher,
)
from repro.relational.table import Table
from repro.sketches.base import available_methods, get_builder
from repro.sketches.kmv import KMVSketch

METHODS = ("TUPSK", "CSK", "LV2SK", "PRISK", "INDSK")
AGGREGATES = ("avg", "sum", "count", "min", "max", "first", "mode", "median")


def make_table(num_rows=900, num_keys=40, seed=0, null_rate=0.05):
    rng = np.random.default_rng(seed)
    keys = [
        None if rng.random() < null_rate else f"k{int(i)}"
        for i in rng.integers(0, num_keys, size=num_rows)
    ]
    values = rng.normal(size=num_rows).tolist()
    for position in range(0, num_rows, 13):
        values[position] = None
    return Table.from_dict({"key": keys, "value": values}, name="stream")


def feed(sketcher, table, chunk_size=0):
    keys = table.column("key").values
    values = table.column("value").values
    if chunk_size:
        for start in range(0, len(keys), chunk_size):
            sketcher.add_chunk(
                keys[start : start + chunk_size], values[start : start + chunk_size]
            )
    else:
        sketcher.extend(zip(keys, values))
    return sketcher


class TestBaseEquivalence:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("chunk_size", [0, 1, 64, 5000])
    def test_matches_batch_builder_exactly(self, method, chunk_size):
        table = make_table(seed=3)
        batch = get_builder(method, capacity=48, seed=5).sketch_base(
            table, "key", "value"
        )
        sketcher = streaming_base_sketcher(method, 48, 5)
        feed(sketcher, table, chunk_size)
        sketch = sketcher.finalize(
            key_column="key", value_column="value", table_name="stream"
        )
        assert sketch == batch
        assert [type(v) for v in sketch.values] == [type(v) for v in batch.values]

    @pytest.mark.parametrize("method", METHODS)
    def test_scalar_and_vectorized_chunks_agree(self, method):
        table = make_table(seed=8, num_rows=400)
        fast = feed(streaming_base_sketcher(method, 32, 1, vectorized=True), table, 57)
        slow = feed(streaming_base_sketcher(method, 32, 1, vectorized=False), table, 57)
        assert fast.finalize() == slow.finalize()

    def test_factory_rejects_unknown_method(self):
        with pytest.raises(IngestError):
            streaming_base_sketcher("NOPE")

    def test_factory_covers_every_registered_method(self):
        for method in available_methods():
            assert streaming_base_sketcher(method).method == method

    def test_empty_stream_rejected(self):
        for method in METHODS:
            with pytest.raises(SketchError):
                streaming_base_sketcher(method).finalize()

    def test_misaligned_chunk_rejected(self):
        with pytest.raises(IngestError):
            StreamingBaseSketcher().add_chunk(["a"], [1, 2])

    def test_row_counters(self):
        sketcher = StreamingBaseSketcher(capacity=8)
        sketcher.add(None, 1.0)
        sketcher.add(float("nan"), 2.0)  # NaN keys are missing, like batch
        sketcher.add("a", 3.0)
        assert sketcher.rows_seen == 1
        assert sketcher.rows_total == 3
        sketch = sketcher.finalize()
        assert sketch.table_rows == 3
        assert sketch.distinct_keys == 1


class TestBaseMerge:
    @pytest.mark.parametrize("method", ["CSK", "LV2SK", "PRISK", "INDSK"])
    def test_merge_matches_single_stream(self, method):
        table = make_table(seed=11)
        rows = list(zip(table.column("key").values, table.column("value").values))
        whole = streaming_base_sketcher(method, 24, 7).extend(rows)
        left = streaming_base_sketcher(method, 24, 7).extend(rows[:400])
        right = streaming_base_sketcher(method, 24, 7).extend(rows[400:])
        assert left.merge(right).finalize() == whole.finalize()

    def test_tupsk_merge_is_refused(self):
        left = StreamingBaseSketcher(capacity=8).extend([("a", 1.0)])
        right = StreamingBaseSketcher(capacity=8).extend([("a", 2.0)])
        with pytest.raises(IngestError, match="merg"):
            left.merge(right)

    def test_mismatched_configurations_refused(self):
        left = streaming_base_sketcher("CSK", 8, 0)
        with pytest.raises(IngestError):
            left.merge(streaming_base_sketcher("CSK", 16, 0))
        with pytest.raises(IngestError):
            left.merge(streaming_base_sketcher("LV2SK", 8, 0))


class TestCandidateEquivalence:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("agg", AGGREGATES)
    def test_matches_batch_builder(self, method, agg):
        table = make_table(seed=4)
        batch = get_builder(method, capacity=16, seed=9).sketch_candidate(
            table, "key", "value", agg=agg
        )
        sketcher = streaming_candidate_sketcher(method, 16, 9, agg=agg)
        feed(sketcher, table, 101)
        sketch = sketcher.finalize(
            key_column="key", value_column="value", table_name="stream"
        )
        assert sketch == batch
        assert [type(v) for v in sketch.values] == [type(v) for v in batch.values]

    def test_csk_keeps_first_value_ignoring_aggregate(self):
        table = Table.from_dict(
            {"key": ["a", "a", "b"], "value": [None, 2.0, 3.0]}
        )
        batch = get_builder("CSK", capacity=8, seed=0).sketch_candidate(
            table, "key", "value", agg="avg"
        )
        sketcher = streaming_candidate_sketcher("CSK", 8, 0, agg="avg")
        sketcher.extend([("a", None), ("a", 2.0), ("b", 3.0)])
        assert sketcher.finalize(key_column="key", value_column="value") == batch

    @pytest.mark.parametrize("agg", AGGREGATES)
    def test_merge_matches_single_stream(self, agg):
        table = make_table(seed=21)
        rows = list(zip(table.column("key").values, table.column("value").values))
        whole = streaming_candidate_sketcher("TUPSK", 16, 2, agg=agg).extend(rows)
        left = streaming_candidate_sketcher("TUPSK", 16, 2, agg=agg).extend(rows[:333])
        right = streaming_candidate_sketcher("TUPSK", 16, 2, agg=agg).extend(rows[333:])
        merged = left.merge(right).finalize()
        single = whole.finalize()
        if agg in ("avg", "sum"):
            # Float accumulators add per-partial subtotals; ulp-level drift
            # against the single stream is documented and tolerated.
            assert merged.key_ids == single.key_ids
            assert merged.values == pytest.approx(single.values)
        else:
            assert merged == single

    def test_merge_refuses_mismatched_aggregate(self):
        left = streaming_candidate_sketcher("TUPSK", 8, 0, agg="avg")
        right = streaming_candidate_sketcher("TUPSK", 8, 0, agg="sum")
        with pytest.raises(IngestError):
            left.merge(right)


class TestDtypeBugfixes:
    """The batch-equivalence bugs this PR fixes in the original streamers."""

    def test_mixed_int_float_stream_declares_float(self):
        # The old sketcher inferred the dtype from the first non-None value
        # only, declaring INT for [1, 2.5] where the batch path says FLOAT.
        from repro.relational.dtypes import DType

        table = Table.from_dict({"k": ["a", "a", "b"], "v": [1, 2.5, 7]})
        for agg in ("sum", "min", "max", "first", "avg", "mode"):
            batch = get_builder("TUPSK", capacity=8, seed=0).sketch_candidate(
                table, "k", "v", agg=agg
            )
            sketcher = StreamingCandidateSketcher(capacity=8, seed=0, agg=agg)
            sketcher.extend([("a", 1), ("a", 2.5), ("b", 7)])
            sketch = sketcher.finalize(key_column="k", value_column="v")
            assert sketch.value_dtype is batch.value_dtype
            assert sketch == batch
            assert [type(v) for v in sketch.values] == [
                type(v) for v in batch.values
            ]
            if agg == "sum":
                assert batch.value_dtype is DType.FLOAT

    def test_nan_and_missing_tokens_are_missing_like_batch(self):
        raw = [("a", float("nan")), ("a", 2.0), ("b", "na"), ("c", None)]
        table = Table.from_dict(
            {"k": [k for k, _ in raw], "v": [v for _, v in raw]}
        )
        for agg in ("avg", "count", "first"):
            batch = get_builder("TUPSK", capacity=8, seed=0).sketch_candidate(
                table, "k", "v", agg=agg
            )
            sketcher = StreamingCandidateSketcher(capacity=8, seed=0, agg=agg)
            sketcher.extend(raw)
            assert sketcher.finalize(key_column="k", value_column="v") == batch

    def test_min_over_column_that_turns_categorical(self):
        # Numeric-space MIN would answer 9; the batch path coerces the whole
        # column to strings and answers "10".  The dual-space state gets it
        # right without retaining the stream.
        raw = [("a", 10), ("a", 9), ("a", "zz"), ("b", 3)]
        table = Table.from_dict(
            {"k": [k for k, _ in raw], "v": [v for _, v in raw]}
        )
        for agg in ("min", "max"):
            batch = get_builder("TUPSK", capacity=8, seed=0).sketch_candidate(
                table, "k", "v", agg=agg
            )
            sketcher = StreamingCandidateSketcher(capacity=8, seed=0, agg=agg)
            sketcher.extend(raw)
            sketch = sketcher.finalize(key_column="k", value_column="v")
            assert sketch == batch
            assert sketch.values == batch.values

    def test_numeric_aggregate_over_strings_raises_like_batch(self):
        from repro.exceptions import AggregationError

        sketcher = StreamingCandidateSketcher(capacity=8, seed=0, agg="sum")
        sketcher.extend([("a", "red"), ("b", "blue")])
        with pytest.raises(AggregationError):
            sketcher.finalize()

    def test_exact_bigint_sums(self):
        big = 2**70
        table = Table.from_dict({"k": ["a", "a"], "v": [big, 1]})
        batch = get_builder("TUPSK", capacity=8, seed=0).sketch_candidate(
            table, "k", "v", agg="sum"
        )
        sketcher = StreamingCandidateSketcher(capacity=8, seed=0, agg="sum")
        sketcher.extend([("a", big), ("a", 1)])
        sketch = sketcher.finalize(key_column="k", value_column="v")
        assert sketch == batch
        assert sketch.values == [big + 1]


class TestKMVStreaming:
    def test_update_many_matches_from_values(self):
        rng = np.random.default_rng(3)
        values = [f"v{int(i)}" for i in rng.integers(0, 500, size=2000)]
        batch = KMVSketch.from_values(values, capacity=64, seed=5)
        chunked = KMVSketch(capacity=64, seed=5)
        for start in range(0, len(values), 111):
            chunked.update_many(values[start : start + 111])
        assert chunked._entries == batch._entries
        assert chunked._threshold == batch._threshold

    def test_merge_matches_single_stream(self):
        rng = np.random.default_rng(4)
        values = [int(i) for i in rng.integers(0, 300, size=1000)]
        whole = KMVSketch(capacity=32, seed=1).update(values)
        left = KMVSketch(capacity=32, seed=1).update(values[:500])
        right = KMVSketch(capacity=32, seed=1).update(values[500:])
        assert left.merge(right)._entries == whole._entries

    def test_merge_requires_matching_configuration(self):
        with pytest.raises(SketchError):
            KMVSketch(capacity=8, seed=0).merge(KMVSketch(capacity=8, seed=1))
        with pytest.raises(SketchError):
            KMVSketch(capacity=8, seed=0).merge(KMVSketch(capacity=16, seed=0))


class TestSketchStreamDrift:
    def test_categorical_vs_numeric_chunk_drift_rejected(self):
        from repro.engine import EngineConfig, SketchEngine

        engine = SketchEngine(EngineConfig(capacity=8))
        chunks = [
            Table.from_dict({"k": [1, 2], "v": [1.0, 2.0]}),
            Table.from_dict({"k": ["x"], "v": [3.0]}),
        ]
        with pytest.raises(IngestError, match="'k' was int.*string"):
            engine.sketch_stream(iter(chunks), "k", "v", side="base")

    def test_int_float_chunk_drift_heals(self):
        from repro.engine import EngineConfig, SketchEngine

        engine = SketchEngine(EngineConfig(capacity=8, seed=2))
        chunks = [
            Table.from_dict({"k": [1, 2], "v": [1, 2]}),
            Table.from_dict({"k": [2.0, 3.5], "v": [2.5, 4]}),
        ]
        whole = Table.from_dict({"k": [1, 2, 2.0, 3.5], "v": [1, 2, 2.5, 4]})
        streamed = engine.sketch_stream(iter(chunks), "k", "v", side="base")
        batch = engine.sketch_base(whole, "k", "v", use_cache=False)
        assert streamed == batch
