"""Tests for the Arrow/Parquet table source (repro.ingest.parquet).

pyarrow is optional and absent in the default test environment, so most of
this suite drives :class:`ParquetReader` through a **counting stub** that
implements the narrow pyarrow surface the reader touches (``ParquetFile``,
``schema_arrow``, ``iter_batches``, ``pyarrow.types`` predicates,
``to_pylist``).  The stub counts metadata reads and data reads separately,
which is what lets the suite *prove* the headline property: schema
resolution performs zero data passes.  A final class exercises the same
reader against real pyarrow when it is installed.
"""

from __future__ import annotations

import builtins
import sys
import types as module_types

import pytest

from repro.exceptions import IngestError, SchemaError
from repro.relational.dtypes import DType


# ---------------------------------------------------------------------------
# The counting pyarrow stub.
# ---------------------------------------------------------------------------


class FakeArrowType:
    def __init__(self, kind, value_type=None):
        self.kind = kind
        self.value_type = value_type

    def __str__(self):
        return self.kind


class FakeField:
    def __init__(self, name, arrow_type):
        self.name = name
        self.type = arrow_type


class FakeArray:
    def __init__(self, values, counters):
        self._values = values
        self._counters = counters

    def to_pylist(self):
        self._counters["data_reads"] += 1
        return list(self._values)


class FakeBatch:
    def __init__(self, names, columns_by_name, counters):
        self.schema = module_types.SimpleNamespace(names=list(names))
        self.columns = [FakeArray(columns_by_name[n], counters) for n in names]
        self.num_rows = len(next(iter(columns_by_name.values()), []))


class FakeMetadata:
    def __init__(self, num_rows, counters):
        self._num_rows = num_rows
        self._counters = counters

    @property
    def num_rows(self):
        self._counters["metadata_reads"] += 1
        return self._num_rows


class FakeParquetFileSpec:
    """On-'disk' content of one fake Parquet file."""

    def __init__(self, fields, data, row_group_size=None):
        self.fields = fields
        self.data = data  # column name -> list of values
        self.num_rows = len(next(iter(data.values()), []))
        self.row_group_size = row_group_size or max(self.num_rows, 1)


class StubArrow:
    """A sys.modules-injectable pyarrow with read accounting."""

    def __init__(self):
        self.files: dict[str, FakeParquetFileSpec] = {}
        self.counters = {"metadata_reads": 0, "data_passes": 0, "data_reads": 0}
        stub = self

        class FakeParquetFile:
            def __init__(self, path):
                path = str(path)
                if path not in stub.files:
                    raise FileNotFoundError(path)
                self._spec = stub.files[path]

            @property
            def schema_arrow(self):
                stub.counters["metadata_reads"] += 1
                return list(self._spec.fields)

            @property
            def metadata(self):
                return FakeMetadata(self._spec.num_rows, stub.counters)

            def iter_batches(self, batch_size, columns, use_threads):
                assert use_threads is False
                stub.counters["data_passes"] += 1
                spec = self._spec
                start = 0
                while start < spec.num_rows:
                    group_end = min(start + spec.row_group_size, spec.num_rows)
                    while start < group_end:
                        end = min(start + batch_size, group_end)
                        yield FakeBatch(
                            columns,
                            {n: spec.data[n][start:end] for n in columns},
                            stub.counters,
                        )
                        start = end

        def predicate(kind):
            return lambda arrow_type: arrow_type.kind == kind

        types_module = module_types.ModuleType("pyarrow.types")
        for kind in (
            "dictionary",
            "null",
            "boolean",
            "integer",
            "floating",
            "decimal",
            "string",
            "large_string",
            "temporal",
        ):
            setattr(types_module, f"is_{kind}", predicate(kind))

        parquet_module = module_types.ModuleType("pyarrow.parquet")
        parquet_module.ParquetFile = FakeParquetFile

        pyarrow_module = module_types.ModuleType("pyarrow")
        pyarrow_module.parquet = parquet_module
        pyarrow_module.types = types_module

        self.module = pyarrow_module
        self.parquet_module = parquet_module

    def add_file(self, path, fields, data, row_group_size=None):
        self.files[str(path)] = FakeParquetFileSpec(fields, data, row_group_size)


@pytest.fixture
def stub_arrow(monkeypatch):
    stub = StubArrow()
    monkeypatch.setitem(sys.modules, "pyarrow", stub.module)
    monkeypatch.setitem(sys.modules, "pyarrow.parquet", stub.parquet_module)
    return stub


def typed(kind, value_type=None):
    return FakeArrowType(kind, value_type)


# ---------------------------------------------------------------------------
# Optional-dependency gating.
# ---------------------------------------------------------------------------


class TestMissingPyarrow:
    def test_reader_raises_typed_error_with_install_hint(self, tmp_path, monkeypatch):
        from repro.ingest.parquet import PYARROW_INSTALL_HINT, ParquetReader

        real_import = builtins.__import__

        def block(name, *args, **kwargs):
            if name.startswith("pyarrow"):
                raise ImportError(name)
            return real_import(name, *args, **kwargs)

        monkeypatch.delitem(sys.modules, "pyarrow", raising=False)
        monkeypatch.delitem(sys.modules, "pyarrow.parquet", raising=False)
        monkeypatch.setattr(builtins, "__import__", block)
        with pytest.raises(IngestError, match="pip install pyarrow"):
            ParquetReader(tmp_path / "t.parquet")
        assert "pyarrow" in PYARROW_INSTALL_HINT


# ---------------------------------------------------------------------------
# Schema resolution from metadata.
# ---------------------------------------------------------------------------


class TestSchemaFromMetadata:
    def make_reader(self, stub_arrow, tmp_path, fields, data, **kwargs):
        from repro.ingest.parquet import ParquetReader

        path = tmp_path / "t.parquet"
        stub_arrow.add_file(path, fields, data)
        return ParquetReader(path, **kwargs)

    def test_arrow_type_mapping(self, stub_arrow, tmp_path):
        fields = [
            FakeField("i", typed("integer")),
            FakeField("f", typed("floating")),
            FakeField("d", typed("decimal")),
            FakeField("s", typed("string")),
            FakeField("ls", typed("large_string")),
            FakeField("b", typed("boolean")),
            FakeField("t", typed("temporal")),
            FakeField("n", typed("null")),
            FakeField("dc", typed("dictionary", value_type=typed("string"))),
        ]
        data = {field.name: [] for field in fields}
        reader = self.make_reader(stub_arrow, tmp_path, fields, data)
        assert reader.schema() == {
            "i": DType.INT,
            "f": DType.FLOAT,
            "d": DType.FLOAT,
            "s": DType.STRING,
            "ls": DType.STRING,
            "b": DType.STRING,
            "t": DType.STRING,
            "n": DType.MISSING,
            "dc": DType.STRING,
        }

    def test_unsupported_arrow_type_raises(self, stub_arrow, tmp_path):
        reader = self.make_reader(
            stub_arrow, tmp_path, [FakeField("x", typed("binary"))], {"x": []}
        )
        with pytest.raises(IngestError, match="unsupported Arrow type"):
            reader.schema()

    def test_schema_performs_zero_data_passes(self, stub_arrow, tmp_path):
        # The headline Parquet property: dtypes come from the footer alone.
        reader = self.make_reader(
            stub_arrow,
            tmp_path,
            [FakeField("k", typed("string")), FakeField("v", typed("floating"))],
            {"k": ["a"] * 1000, "v": [1.0] * 1000},
        )
        schema = reader.schema()
        rows = reader.num_rows
        assert schema == {"k": DType.STRING, "v": DType.FLOAT}
        assert rows == 1000
        assert stub_arrow.counters["metadata_reads"] > 0
        assert stub_arrow.counters["data_passes"] == 0
        assert stub_arrow.counters["data_reads"] == 0

    def test_projection_filters_and_orders(self, stub_arrow, tmp_path):
        reader = self.make_reader(
            stub_arrow,
            tmp_path,
            [
                FakeField("a", typed("integer")),
                FakeField("b", typed("string")),
                FakeField("c", typed("floating")),
            ],
            {"a": [1], "b": ["x"], "c": [0.5]},
            columns=["c", "a"],
        )
        assert list(reader.schema()) == ["c", "a"]
        assert reader.column_names == ("c", "a")

    def test_missing_projection_column_raises(self, stub_arrow, tmp_path):
        reader = self.make_reader(
            stub_arrow,
            tmp_path,
            [FakeField("a", typed("integer"))],
            {"a": [1]},
            columns=["nope"],
        )
        with pytest.raises(SchemaError, match="nope"):
            reader.schema()

    def test_missing_file_raises_file_not_found(self, stub_arrow, tmp_path):
        from repro.ingest.parquet import ParquetReader

        reader = ParquetReader(tmp_path / "absent.parquet")
        with pytest.raises(FileNotFoundError):
            reader.schema()


# ---------------------------------------------------------------------------
# Chunked conversion.
# ---------------------------------------------------------------------------


class TestChunks:
    FIELDS = [
        FakeField("key", FakeArrowType("string")),
        FakeField("value", FakeArrowType("floating")),
        FakeField("count", FakeArrowType("integer")),
    ]

    def make_reader(self, stub_arrow, tmp_path, data, **kwargs):
        from repro.ingest.parquet import ParquetReader

        path = tmp_path / "chunks.parquet"
        fields = [f for f in self.FIELDS if f.name in data]
        stub_arrow.add_file(
            path, fields, data, row_group_size=kwargs.pop("row_group_size", None)
        )
        return ParquetReader(path, **kwargs)

    def test_values_coerce_like_csv(self, stub_arrow, tmp_path):
        # Arrow nulls and NaN -> None; ints stay exact Python ints.
        reader = self.make_reader(
            stub_arrow,
            tmp_path,
            {
                "key": ["a", None, "c"],
                "value": [1.5, float("nan"), 3.0],
                "count": [10**15, None, 3],
            },
        )
        (chunk,) = list(reader.chunks())
        assert chunk.column("key").values == ["a", None, "c"]
        assert chunk.column("value").values == [1.5, None, 3.0]
        assert chunk.column("count").values == [10**15, None, 3]
        assert chunk.column("count").dtype == DType.INT
        assert chunk.name == "chunks"

    def test_chunks_respect_chunk_size_and_row_groups(self, stub_arrow, tmp_path):
        reader = self.make_reader(
            stub_arrow,
            tmp_path,
            {
                "key": [f"k{i}" for i in range(10)],
                "value": [float(i) for i in range(10)],
                "count": list(range(10)),
            },
            chunk_size=4,
            row_group_size=5,
        )
        sizes = [chunk.num_rows for chunk in reader.chunks()]
        # Row groups of 5 split by batch_size 4: [4, 1] per group.
        assert sizes == [4, 1, 4, 1]
        assert sum(sizes) == 10

    def test_exactly_one_data_pass(self, stub_arrow, tmp_path):
        reader = self.make_reader(
            stub_arrow,
            tmp_path,
            {"key": ["a", "b"], "value": [1.0, 2.0], "count": [1, 2]},
        )
        list(reader.chunks())
        assert stub_arrow.counters["data_passes"] == 1

    def test_projection_pushed_down(self, stub_arrow, tmp_path):
        reader = self.make_reader(
            stub_arrow,
            tmp_path,
            {"key": ["a", "b"], "value": [1.0, 2.0], "count": [1, 2]},
            columns=["value"],
        )
        (chunk,) = list(reader.chunks())
        assert chunk.column_names == ("value",)
        # Only the projected column was ever materialized from Arrow.
        assert stub_arrow.counters["data_reads"] == 1


# ---------------------------------------------------------------------------
# Real pyarrow (skipped when the optional dependency is absent).
# ---------------------------------------------------------------------------


class TestRealPyarrow:
    def write(self, tmp_path):
        pa = pytest.importorskip("pyarrow")
        pq = pytest.importorskip("pyarrow.parquet")
        table = pa.table(
            {
                "key": pa.array(["a", None, "c", "d"], type=pa.string()),
                "value": pa.array([1.5, float("nan"), None, -2.0], type=pa.float64()),
                "count": pa.array([10**15, 2, None, 4], type=pa.int64()),
            }
        )
        path = tmp_path / "real.parquet"
        pq.write_table(table, path, row_group_size=2)
        return path

    def test_schema_and_chunks(self, tmp_path):
        from repro.ingest.parquet import ParquetReader

        path = self.write(tmp_path)
        reader = ParquetReader(path, chunk_size=3)
        assert reader.schema() == {
            "key": DType.STRING,
            "value": DType.FLOAT,
            "count": DType.INT,
        }
        assert reader.num_rows == 4
        data: dict = {}
        for chunk in reader.chunks():
            for column in chunk.columns:
                data.setdefault(column.name, []).extend(column.values)
        assert data == {
            "key": ["a", None, "c", "d"],
            "value": [1.5, None, None, -2.0],
            "count": [10**15, 2, None, 4],
        }

    def test_matches_csv_reader_output(self, tmp_path):
        from repro.ingest.parquet import ParquetReader
        from repro.ingest.reader import CSVReader

        path = self.write(tmp_path)
        csv_path = tmp_path / "real.csv"
        csv_path.write_text(
            "key,value,count\na,1.5,1000000000000000\n,,2\nc,,\nd,-2.0,4\n",
            encoding="utf-8",
        )
        parquet_data: dict = {}
        for chunk in ParquetReader(path, chunk_size=2).chunks():
            for column in chunk.columns:
                parquet_data.setdefault(column.name, []).extend(column.values)
        csv_data: dict = {}
        for chunk in CSVReader(csv_path, chunk_size=2):
            for column in chunk.columns:
                csv_data.setdefault(column.name, []).extend(column.values)
        assert parquet_data == csv_data
