"""Smoke + shape tests for the per-figure/table experiments.

These run every experiment at reduced scale and assert the qualitative
properties the paper reports (who wins, where estimators break down), not
absolute numbers.
"""


import pytest

from repro.evaluation.experiments import (
    run_ablation_aggregation,
    run_ablation_coordination,
    run_ablation_sketch_size,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_fulljoin_accuracy,
    run_performance,
    run_table1,
    run_table2,
)


pytestmark = pytest.mark.slow


class TestFulljoinAccuracy:
    def test_estimates_track_truth(self):
        result = run_fulljoin_accuracy(
            datasets_per_distribution=3, sample_size=4000, random_state=0
        )
        assert result.summary
        for row in result.summary:
            assert row["pearson"] > 0.9
            assert row["rmse"] < 0.6
        assert "fulljoin" in result.report()


class TestFigure2:
    def test_tupsk_less_sensitive_to_key_distribution_than_lv2sk(self):
        result = run_figure2(
            datasets_per_key_generation=3, sample_size=6000, random_state=1
        )

        def mse(method, keygen):
            rows = result.summary_by(
                method=method, estimator="MLE", key_generation=keygen
            )
            return rows[0]["mse"] if rows else float("nan")

        lv2_gap = abs(mse("LV2SK", "KeyDep") - mse("LV2SK", "KeyInd"))
        tup_gap = abs(mse("TUPSK", "KeyDep") - mse("TUPSK", "KeyInd"))
        assert tup_gap <= lv2_gap + 0.15

    def test_summary_covers_all_series(self):
        result = run_figure2(
            datasets_per_key_generation=2, sample_size=4000, random_state=2
        )
        methods = {row["method"] for row in result.summary}
        estimators = {row["estimator"] for row in result.summary}
        assert methods == {"LV2SK", "TUPSK"}
        assert estimators == {"MLE", "Mixed-KSG", "DC-KSG"}


class TestFigure3:
    def test_breakdown_at_high_mi(self):
        result = run_figure3(num_datasets=8, sample_size=4000, random_state=3)
        high = [row for row in result.summary if row["mi_bucket"] == ">=5.00"]
        low = [row for row in result.summary if row["mi_bucket"] == "[0.00,3.00)"]
        assert high and low
        assert min(row["bias"] for row in high) < -1.0  # collapse at high MI
        assert all(abs(row["bias"]) < 1.0 for row in low)


class TestFigure4:
    def test_mle_bias_grows_with_m(self):
        result = run_figure4(
            m_values=(16, 512), datasets_per_m=3, sample_size=5000, random_state=4
        )
        small_bias = result.summary_by(m=16, estimator="MLE")[0]["bias"]
        large_bias = result.summary_by(m=512, estimator="MLE")[0]["bias"]
        small_mse = result.summary_by(m=16, estimator="MLE")[0]["mse"]
        large_mse = result.summary_by(m=512, estimator="MLE")[0]["mse"]
        assert large_bias > small_bias
        assert large_bias > 0.0  # over-estimation at large m
        assert large_mse > small_mse


class TestTable1:
    def test_shape_of_table1(self):
        result = run_table1(
            datasets_per_distribution=3, sample_size=4000, random_state=5
        )
        by_key = {(row["dataset"], row["sketch"]): row for row in result.summary}
        for dataset in ("CDUnif", "Trinomial"):
            tupsk = by_key[(dataset, "TUPSK")]
            indsk = by_key[(dataset, "INDSK")]
            assert tupsk["avg_sketch_join_size"] >= indsk["avg_sketch_join_size"]
            assert tupsk["mse"] <= indsk["mse"] + 1e-9
            assert tupsk["join_pct_of_n"] > 85.0


class TestTable2AndFigure5:
    def test_table2_summary_structure(self):
        result = run_table2(
            num_pairs=8,
            tables_per_repository=18,
            sketch_size=256,
            min_join_size=30,
            random_state=6,
        )
        assert result.summary, "expected at least one summary row"
        for row in result.summary:
            assert -1.0 <= row["spearman"] <= 1.0
            assert row["mse"] >= 0.0
            assert row["sketch"] in {"LV2SK", "PRISK", "TUPSK"}

    def test_figure5_accuracy_improves_with_join_size(self):
        result = run_figure5(
            num_pairs=12,
            tables_per_repository=18,
            sketch_size=256,
            thresholds=(32, 128),
            random_state=7,
        )
        assert result.rows
        if len(result.summary) >= 2:
            by_threshold = {}
            for row in result.summary:
                by_threshold.setdefault(row["join_size_gt"], []).append(row["mse"])
            thresholds = sorted(by_threshold)
            if len(thresholds) == 2:
                assert (
                    min(by_threshold[thresholds[1]])
                    <= max(by_threshold[thresholds[0]]) + 1e-6
                )


class TestPerformance:
    def test_sketch_faster_than_full_join(self):
        result = run_performance(
            table_sizes=(4000, 8000), repetitions=2, random_state=8
        )
        for row in result.summary:
            assert row["sketch_join_ms"] < row["full_join_ms"]
        small, large = result.summary[0], result.summary[1]
        assert large["full_join_ms"] > small["full_join_ms"]


class TestAblations:
    def test_coordination_ablation(self):
        result = run_ablation_coordination(
            datasets_per_key_generation=2, sample_size=4000, random_state=9
        )
        keyind = {row["method"]: row for row in result.summary_by(key_generation="KeyInd")}
        assert keyind["INDSK"]["avg_join_size"] < keyind["TUPSK"]["avg_join_size"]

    def test_aggregation_ablation(self):
        result = run_ablation_aggregation(num_keys=300, random_state=10)
        by_agg = {row["aggregate"]: row for row in result.summary}
        assert by_agg["AVG"]["full_join_mi"] > by_agg["COUNT"]["full_join_mi"]
        assert by_agg["AVG"]["sketch_mi"] > by_agg["COUNT"]["sketch_mi"]
        assert by_agg["COUNT"]["full_join_mi"] < 0.2

    def test_sketch_size_ablation(self):
        result = run_ablation_sketch_size(
            sketch_sizes=(64, 512), num_datasets=3, sample_size=6000, random_state=11
        )
        rmse = {row["sketch_size"]: row["rmse"] for row in result.summary}
        assert rmse[512] < rmse[64]
