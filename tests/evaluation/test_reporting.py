"""Tests for the plain-text report rendering."""

from repro.evaluation.reporting import format_kv, format_table, indent


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [{"method": "TUPSK", "mse": 0.123456}, {"method": "LV2SK", "mse": 1.5}]
        text = format_table(rows, precision=3)
        lines = text.splitlines()
        assert lines[0].startswith("method")
        assert "0.123" in text
        assert "1.500" in text
        assert len(set(len(line) for line in lines[:3])) == 1  # aligned widths

    def test_column_order_respected(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_missing_cells_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert text  # does not raise

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_title_included(self):
        assert format_table([{"a": 1}], title="My Table").startswith("My Table")


class TestFormatKv:
    def test_alignment(self):
        text = format_kv({"short": 1, "a_longer_key": 2.5})
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert format_kv({}) == ""


class TestIndent:
    def test_prefixes_every_line(self):
        assert indent("a\nb", "> ") == "> a\n> b"
