"""Tests for the evaluation metrics."""

import pytest

from repro.evaluation.metrics import (
    mean_absolute_error,
    mean_bias,
    mean_squared_error,
    pearson_correlation,
    root_mean_squared_error,
    spearman_correlation,
)
from repro.exceptions import EstimationError


class TestErrorMetrics:
    def test_mse(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 4.0]) == pytest.approx(2.0)

    def test_rmse(self):
        assert root_mean_squared_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(
            (12.5) ** 0.5
        )

    def test_mae(self):
        assert mean_absolute_error([1.0, -1.0], [0.0, 0.0]) == pytest.approx(1.0)

    def test_bias_sign(self):
        assert mean_bias([2.0, 2.0], [1.0, 1.0]) == pytest.approx(1.0)
        assert mean_bias([0.0, 0.0], [1.0, 1.0]) == pytest.approx(-1.0)

    def test_perfect_estimates(self):
        values = [0.5, 1.5, 2.5]
        assert mean_squared_error(values, values) == 0.0
        assert mean_bias(values, values) == 0.0

    def test_misaligned_inputs(self):
        with pytest.raises(EstimationError):
            mean_squared_error([1.0], [1.0, 2.0])

    def test_empty_inputs(self):
        with pytest.raises(EstimationError):
            mean_squared_error([], [])


class TestCorrelationMetrics:
    def test_pearson_perfect_linear(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_pearson_anti_correlation(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_spearman_monotone_nonlinear(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [1.0, 8.0, 27.0, 64.0]
        assert spearman_correlation(x, y) == pytest.approx(1.0)
        assert pearson_correlation(x, y) < 1.0

    def test_constant_input_returns_zero(self):
        assert pearson_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0
        assert spearman_correlation([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_too_few_points(self):
        with pytest.raises(EstimationError):
            pearson_correlation([1.0], [1.0])
