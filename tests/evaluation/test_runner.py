"""Tests for the shared experiment runner machinery."""

import math

import pytest

from repro.evaluation.runner import (
    EstimatorSpec,
    cdunif_estimator_specs,
    full_join_estimate_for_dataset,
    sketch_estimate_for_dataset,
    trinomial_estimator_specs,
)
from repro.estimators.mle import MLEEstimator
from repro.synthetic.benchmark import generate_cdunif_dataset, generate_trinomial_dataset


class TestEstimatorSpecs:
    def test_trinomial_specs_cover_three_data_type_treatments(self):
        labels = [spec.label for spec in trinomial_estimator_specs()]
        assert labels == ["MLE", "Mixed-KSG", "DC-KSG"]
        dc_spec = trinomial_estimator_specs()[2]
        assert dc_spec.perturb_y and not dc_spec.perturb_x

    def test_cdunif_specs(self):
        labels = [spec.label for spec in cdunif_estimator_specs()]
        assert labels == ["Mixed-KSG", "DC-KSG"]

    def test_spec_estimate_applies_perturbation(self, rng):
        spec = EstimatorSpec("MLE", MLEEstimator())
        x = rng.integers(0, 4, size=500).tolist()
        assert spec.estimate(x, x, random_state=rng) == pytest.approx(
            math.log(4), abs=0.1
        )


class TestSketchEstimateForDataset:
    def test_record_fields(self):
        dataset = generate_trinomial_dataset(16, 2000, target_mi=1.0, random_state=0)
        record = sketch_estimate_for_dataset(dataset, "TUPSK", capacity=128)
        assert record.method == "TUPSK"
        assert record.m == 16
        assert record.join_size == 128
        assert record.true_mi == dataset.true_mi
        assert record.estimate >= 0.0
        row = record.as_row()
        assert row["distribution"] == "trinomial"
        assert row["key_generation"] == "KeyInd"

    def test_explicit_estimator_spec(self):
        dataset = generate_trinomial_dataset(16, 2000, target_mi=1.0, random_state=1)
        spec = trinomial_estimator_specs()[0]
        record = sketch_estimate_for_dataset(
            dataset, "LV2SK", capacity=128, estimator_spec=spec, random_state=2
        )
        assert record.estimator == "MLE"

    def test_nan_when_join_too_small(self):
        dataset = generate_cdunif_dataset(990, 1000, random_state=3)
        spec = cdunif_estimator_specs()[0]
        record = sketch_estimate_for_dataset(
            dataset, "INDSK", capacity=16, estimator_spec=spec, min_join_size=64
        )
        assert math.isnan(record.estimate)


class TestFullJoinEstimate:
    def test_close_to_truth(self):
        dataset = generate_trinomial_dataset(16, 10_000, target_mi=1.2, random_state=4)
        spec = trinomial_estimator_specs()[0]
        estimate = full_join_estimate_for_dataset(dataset, spec, random_state=5)
        assert estimate == pytest.approx(dataset.true_mi, abs=0.1)
