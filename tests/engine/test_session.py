"""Tests for the SketchEngine session: sketching, batching, estimation."""

import numpy as np
import pytest

from repro.engine import EngineConfig, SketchEngine, SketchRequest
from repro.exceptions import (
    EngineError,
    IncompatibleSketchError,
    InsufficientSamplesError,
)
from repro.relational.table import Table
from repro.sketches.base import SketchSide
from repro.sketches.estimate import estimate_mi_from_join
from repro.sketches.join import join_sketches


def make_corpus(num_keys=400, num_candidates=6, seed=11):
    """One base table plus candidates of varying dependence on the target."""
    rng = np.random.default_rng(seed)
    keys = [f"k{i:05d}" for i in range(num_keys)]
    target = rng.normal(size=num_keys)
    base = Table.from_dict({"key": keys, "target": target.tolist()}, name="base")
    candidates = []
    for index in range(num_candidates):
        mix = index / max(num_candidates - 1, 1)
        feature = (1.0 - mix) * target + mix * rng.normal(size=num_keys)
        candidates.append(
            Table.from_dict(
                {"key": keys, "feature": feature.tolist()}, name=f"cand{index}"
            )
        )
    return base, candidates


@pytest.fixture(scope="module")
def corpus():
    return make_corpus()


@pytest.fixture()
def engine():
    return SketchEngine(EngineConfig(method="TUPSK", capacity=256, seed=0))


class TestConstruction:
    def test_overrides_without_config(self):
        engine = SketchEngine(capacity=32, seed=9)
        assert engine.config == EngineConfig(capacity=32, seed=9)

    def test_overrides_on_top_of_config(self):
        engine = SketchEngine(EngineConfig(capacity=32), seed=9)
        assert engine.config == EngineConfig(capacity=32, seed=9)

    def test_rejects_non_config(self):
        with pytest.raises(EngineError):
            SketchEngine({"capacity": 32})

    def test_rejects_negative_cache_size(self):
        with pytest.raises(EngineError):
            SketchEngine(cache_size=-1)


class TestSketching:
    def test_sketch_base_matches_config(self, engine, corpus):
        base, _ = corpus
        sketch = engine.sketch_base(base, "key", "target")
        assert sketch.side == SketchSide.BASE
        assert (sketch.method, sketch.capacity, sketch.seed) == engine.config.sketch_key

    def test_sketch_candidate_default_aggregates(self, engine, weather_table):
        numeric = engine.sketch_candidate(weather_table, "date", "temp")
        categorical = engine.sketch_candidate(weather_table, "date", "conditions")
        assert numeric.aggregate == "avg"
        assert categorical.aggregate == "mode"

    def test_sketch_candidate_explicit_aggregate(self, engine, weather_table):
        sketch = engine.sketch_candidate(weather_table, "date", "temp", agg="max")
        assert sketch.aggregate == "max"

    def test_base_sketch_memoized_per_table_identity(self, engine, corpus):
        base, _ = corpus
        first = engine.sketch_base(base, "key", "target")
        second = engine.sketch_base(base, "key", "target")
        assert first is second
        info = engine.cache_info()
        assert info["hits"] == 1 and info["size"] == 1

    def test_equal_but_distinct_tables_not_conflated(self, engine):
        table_a = Table.from_dict({"k": list("abcdef"), "v": range(6)}, name="t")
        table_b = Table.from_dict({"k": list("abcdef"), "v": range(6)}, name="t")
        sketch_a = engine.sketch_base(table_a, "k", "v")
        sketch_b = engine.sketch_base(table_b, "k", "v")
        assert sketch_a is not sketch_b
        assert sketch_a.key_ids == sketch_b.key_ids  # deterministic content

    def test_cache_bypass(self, corpus):
        engine = SketchEngine(EngineConfig(capacity=64), cache_size=0)
        base, _ = corpus
        first = engine.sketch_base(base, "key", "target")
        second = engine.sketch_base(base, "key", "target")
        assert first is not second

    def test_clear_cache(self, engine, corpus):
        base, _ = corpus
        engine.sketch_base(base, "key", "target")
        engine.clear_cache()
        assert engine.cache_info()["size"] == 0

    def test_lru_eviction(self):
        engine = SketchEngine(EngineConfig(capacity=8), cache_size=2)
        tables = [
            Table.from_dict({"k": list("abcdef"), "v": range(6)}, name=f"t{i}")
            for i in range(3)
        ]
        for table in tables:
            engine.sketch_base(table, "k", "v")
        assert engine.cache_info()["size"] == 2

    def test_key_sketch_memoized_per_table_identity(self, engine, corpus):
        """The online half rebuilds the base key sketch every query, so it
        is memoized exactly like sketch_base."""
        base, _ = corpus
        first = engine.key_sketch(base, "key")
        second = engine.key_sketch(base, "key")
        assert first is second
        info = engine.cache_info()
        assert info["key_hits"] == 1 and info["key_size"] == 1
        private = engine.key_sketch(base, "key", use_cache=False)
        assert private is not first
        assert private.hashes == first.hashes  # deterministic content
        engine.clear_cache()
        assert engine.cache_info()["key_size"] == 0


class TestSketchPairs:
    def test_requests_and_tuples(self, engine, corpus):
        base, candidates = corpus
        sketches = engine.sketch_pairs(
            [
                SketchRequest(base, "key", "target"),
                (candidates[0], "key", "feature", SketchSide.CANDIDATE),
                (candidates[1], "key", "feature", "candidate", "max"),
            ]
        )
        assert [str(sketch.side) for sketch in sketches] == [
            "base", "candidate", "candidate",
        ]
        assert sketches[2].aggregate == "max"

    def test_concurrent_equals_sequential(self, engine, corpus):
        base, candidates = corpus
        requests = [(candidate, "key", "feature", "candidate") for candidate in candidates]
        sequential = engine.sketch_pairs(requests)
        concurrent = engine.sketch_pairs(requests, max_workers=4)
        for left, right in zip(sequential, concurrent):
            assert left.key_ids == right.key_ids
            assert left.values == right.values

    def test_bad_request_rejected(self, engine):
        with pytest.raises(EngineError):
            engine.sketch_pairs([("too", "short")])

    def test_string_spec_rejected_not_splatted(self, engine):
        """A stray string (e.g. a file path) must not be unpacked char-wise."""
        with pytest.raises(EngineError):
            engine.sketch_pairs(["abc"])

    def test_shared_table_key_requests_match_standalone_sketches(self, engine, corpus):
        """Requests sharing a (table, key) delegate to the grouped fast
        path; the sketches must equal per-call sketch_candidate output."""
        _, candidates = corpus
        table = candidates[0]
        wide = Table.from_dict(
            {
                "key": table.column("key").values,
                "f1": table.column("feature").values,
                "f2": [value * 2 for value in table.column("feature").values],
            },
            name="wide",
        )
        requests = [
            (wide, "key", "f1", "candidate"),
            (wide, "key", "f2", "candidate", "max"),
            (wide, "key", "f1", "candidate", "first"),
        ]
        batched = engine.sketch_pairs(requests)
        standalone = [
            engine.sketch_candidate(wide, "key", "f1"),
            engine.sketch_candidate(wide, "key", "f2", agg="max"),
            engine.sketch_candidate(wide, "key", "f1", agg="first"),
        ]
        assert batched == standalone


class TestSketchTableCandidates:
    def test_matches_per_column_sketches(self, engine, corpus):
        _, candidates = corpus
        table = candidates[0]
        wide = Table.from_dict(
            {
                "key": table.column("key").values,
                "f1": table.column("feature").values,
                "f2": [value + 1.0 for value in table.column("feature").values],
            },
            name="wide",
        )
        grouped = engine.sketch_table_candidates(wide, "key", ["f1", "f2"])
        assert grouped == [
            engine.sketch_candidate(wide, "key", "f1"),
            engine.sketch_candidate(wide, "key", "f2"),
        ]

    def test_aggs_must_align(self, engine, corpus):
        _, candidates = corpus
        with pytest.raises(EngineError):
            engine.sketch_table_candidates(
                candidates[0], "key", ["feature"], aggs=["avg", "max"]
            )


class TestEstimate:
    def test_estimate_uses_config_policy(self, corpus):
        base, candidates = corpus
        engine = SketchEngine(EngineConfig(capacity=256, min_join_size=2, estimator_k=3))
        base_sketch = engine.sketch_base(base, "key", "target")
        candidate_sketch = engine.sketch_candidate(candidates[0], "key", "feature")
        estimate = engine.estimate(base_sketch, candidate_sketch)
        join_result = join_sketches(base_sketch, candidate_sketch)
        reference = estimate_mi_from_join(join_result, k=3, min_join_size=2)
        assert estimate.mi == reference.mi
        assert estimate.estimator == reference.estimator

    def test_seed_mismatch_raises(self, corpus):
        base, candidates = corpus
        engine_a = SketchEngine(EngineConfig(capacity=128, seed=1))
        engine_b = SketchEngine(EngineConfig(capacity=128, seed=2))
        base_sketch = engine_a.sketch_base(base, "key", "target")
        candidate_sketch = engine_b.sketch_candidate(candidates[0], "key", "feature")
        with pytest.raises(IncompatibleSketchError):
            engine_a.estimate(base_sketch, candidate_sketch)

    def test_method_mismatch_raises(self, corpus):
        base, candidates = corpus
        engine_a = SketchEngine(EngineConfig(method="TUPSK", capacity=128))
        engine_b = SketchEngine(EngineConfig(method="CSK", capacity=128))
        base_sketch = engine_a.sketch_base(base, "key", "target")
        candidate_sketch = engine_b.sketch_candidate(candidates[0], "key", "feature")
        with pytest.raises(IncompatibleSketchError):
            engine_a.estimate(base_sketch, candidate_sketch)

    def test_estimate_pair_from_tuples(self, engine, corpus):
        base, candidates = corpus
        estimate = engine.estimate_pair(
            (base, "key", "target"), (candidates[0], "key", "feature")
        )
        assert estimate.mi > 0.0

    def test_min_join_size_enforced(self, engine, corpus):
        base, candidates = corpus
        base_sketch = engine.sketch_base(base, "key", "target")
        candidate_sketch = engine.sketch_candidate(candidates[0], "key", "feature")
        with pytest.raises(InsufficientSamplesError):
            engine.estimate(base_sketch, candidate_sketch, min_join_size=10_000)


class TestEstimateMany:
    def test_matches_per_call_estimates(self, engine, corpus):
        """Acceptance: batch results identical to per-call estimation."""
        from repro.sketches.estimate import estimate_mi_from_sketches

        base, candidates = corpus
        base_sketch = engine.sketch_base(base, "key", "target")
        candidate_sketches = [
            engine.sketch_candidate(candidate, "key", "feature")
            for candidate in candidates
        ]
        batch = engine.estimate_many(base_sketch, candidate_sketches, min_join_size=2)
        per_call = [
            estimate_mi_from_sketches(base_sketch, sketch, min_join_size=2)
            for sketch in candidate_sketches
        ]
        assert [outcome.position for outcome in batch] == list(range(len(candidates)))
        assert [outcome.estimate.mi for outcome in batch] == [
            estimate.mi for estimate in per_call
        ]
        assert [outcome.estimate.estimator for outcome in batch] == [
            estimate.estimator for estimate in per_call
        ]

    def test_concurrent_matches_sequential(self, engine, corpus):
        base, candidates = corpus
        base_sketch = engine.sketch_base(base, "key", "target")
        candidate_sketches = [
            engine.sketch_candidate(candidate, "key", "feature")
            for candidate in candidates
        ]
        sequential = engine.estimate_many(base_sketch, candidate_sketches)
        concurrent = engine.estimate_many(
            base_sketch, candidate_sketches, max_workers=4
        )
        assert [outcome.estimate.mi for outcome in sequential] == [
            outcome.estimate.mi for outcome in concurrent
        ]
        # Ranking (argsort by MI) is identical too.
        ranking = sorted(
            range(len(sequential)), key=lambda i: -sequential[i].estimate.mi
        )
        ranking_concurrent = sorted(
            range(len(concurrent)), key=lambda i: -concurrent[i].estimate.mi
        )
        assert ranking == ranking_concurrent

    def test_base_given_as_request_goes_through_memo(self, engine, corpus):
        base, candidates = corpus
        candidate_sketch = engine.sketch_candidate(candidates[0], "key", "feature")
        engine.estimate_many((base, "key", "target"), [candidate_sketch])
        engine.estimate_many((base, "key", "target"), [candidate_sketch])
        assert engine.cache_info()["hits"] >= 1

    def test_candidate_requests_sketched_on_the_fly(self, engine, corpus):
        base, candidates = corpus
        outcomes = engine.estimate_many(
            (base, "key", "target"),
            [(candidate, "key", "feature", "candidate") for candidate in candidates[:2]],
        )
        assert all(outcome.ok for outcome in outcomes)

    def test_rejects_candidate_side_base(self, engine, corpus):
        base, candidates = corpus
        candidate_sketch = engine.sketch_candidate(candidates[0], "key", "feature")
        with pytest.raises(EngineError):
            engine.estimate_many(candidate_sketch, [candidate_sketch])

    def test_error_capture(self, engine, corpus):
        base, candidates = corpus
        base_sketch = engine.sketch_base(base, "key", "target")
        candidate_sketch = engine.sketch_candidate(candidates[0], "key", "feature")
        outcomes = engine.estimate_many(
            base_sketch,
            [candidate_sketch],
            min_join_size=10_000,
            return_exceptions=True,
        )
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].error, InsufficientSamplesError)
        with pytest.raises(InsufficientSamplesError):
            outcomes[0].unwrap()

    def test_errors_raise_without_capture(self, engine, corpus):
        base, candidates = corpus
        base_sketch = engine.sketch_base(base, "key", "target")
        candidate_sketch = engine.sketch_candidate(candidates[0], "key", "feature")
        with pytest.raises(InsufficientSamplesError):
            engine.estimate_many(base_sketch, [candidate_sketch], min_join_size=10_000)
