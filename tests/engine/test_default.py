"""Tests for the module-level default engine and the legacy wrappers."""

import numpy as np
import pytest

from repro.engine import EngineConfig, SketchEngine
from repro.engine.default import (
    configure_default_engine,
    engine_for,
    get_default_engine,
    set_default_engine,
)
from repro.exceptions import EngineError, IncompatibleSketchError
from repro.relational.table import Table
from repro.sketches.base import SketchSide, build_sketch
from repro.sketches.estimate import estimate_mi_from_sketches


@pytest.fixture(autouse=True)
def reset_default_engine():
    yield
    set_default_engine(None)


@pytest.fixture()
def pair():
    rng = np.random.default_rng(5)
    keys = [f"k{i:04d}" for i in range(300)]
    x = rng.normal(size=300)
    y = x + 0.3 * rng.normal(size=300)
    base = Table.from_dict({"key": keys, "target": y.tolist()}, name="base")
    cand = Table.from_dict({"key": keys, "feature": x.tolist()}, name="cand")
    return base, cand


class TestDefaultEngine:
    def test_created_on_first_use(self):
        engine = get_default_engine()
        assert isinstance(engine, SketchEngine)
        assert engine is get_default_engine()

    def test_set_from_config(self):
        engine = set_default_engine(EngineConfig(capacity=32))
        assert engine.config.capacity == 32
        assert get_default_engine() is engine

    def test_set_rejects_junk(self):
        with pytest.raises(EngineError):
            set_default_engine("TUPSK")

    def test_configure_overrides_fields(self):
        engine = configure_default_engine(capacity=48, seed=5)
        assert engine.config.capacity == 48
        assert engine.config.seed == 5
        assert get_default_engine() is engine

    def test_engine_for_builds_throwaway_engines(self):
        first = engine_for(capacity=64, seed=1)
        second = engine_for(capacity=64, seed=1)
        assert first is not second  # no process-global state pinned
        assert first.config == second.config == EngineConfig(capacity=64, seed=1)

    def test_engine_for_overrides_on_config(self):
        engine = engine_for(EngineConfig(capacity=64), seed=5)
        assert engine.config == EngineConfig(capacity=64, seed=5)


class TestLegacyWrappers:
    def test_build_sketch_delegates_to_shared_engine(self, pair):
        base, _ = pair
        sketch = build_sketch(base, "key", "target", capacity=128, seed=7)
        assert sketch.side == SketchSide.BASE
        assert (sketch.method, sketch.capacity, sketch.seed) == ("TUPSK", 128, 7)
        # The wrapper stays stateless like the original function: a fresh
        # (but deterministic) sketch per call, nothing pinned in any cache.
        again = build_sketch(base, "key", "target", capacity=128, seed=7)
        assert again is not sketch
        assert again.key_ids == sketch.key_ids
        assert again.values == sketch.values

    def test_build_sketch_candidate_side_strings(self, pair):
        _, cand = pair
        sketch = build_sketch(
            cand, "key", "feature", side="candidate", capacity=128, agg="max"
        )
        assert sketch.side == SketchSide.CANDIDATE
        assert sketch.aggregate == "max"

    def test_build_sketch_rejects_unknown_side(self, pair):
        base, _ = pair
        from repro.exceptions import SketchError

        with pytest.raises(SketchError):
            build_sketch(base, "key", "target", side="sideways")

    def test_estimate_wrapper_matches_engine(self, pair):
        base, cand = pair
        engine = SketchEngine(EngineConfig(capacity=256, seed=0))
        base_sketch = engine.sketch_base(base, "key", "target")
        cand_sketch = engine.sketch_candidate(cand, "key", "feature")
        assert (
            estimate_mi_from_sketches(base_sketch, cand_sketch).mi
            == engine.estimate(base_sketch, cand_sketch, k=3, min_join_size=2).mi
        )

    def test_estimate_wrapper_honours_configured_default_policy(self, pair):
        """configure_default_engine's estimator policy reaches the wrapper."""
        from repro.exceptions import InsufficientSamplesError

        base, cand = pair
        base_sketch = build_sketch(base, "key", "target", capacity=128)
        cand_sketch = build_sketch(cand, "key", "feature", side="candidate", capacity=128)
        configure_default_engine(min_join_size=100_000)
        with pytest.raises(InsufficientSamplesError):
            estimate_mi_from_sketches(base_sketch, cand_sketch)
        # An explicit argument still overrides the configured policy.
        assert estimate_mi_from_sketches(
            base_sketch, cand_sketch, min_join_size=2
        ).mi > 0.0

    def test_estimate_wrapper_rejects_mixed_configs(self, pair):
        base, cand = pair
        base_sketch = build_sketch(base, "key", "target", capacity=128, seed=1)
        cand_seed = build_sketch(
            cand, "key", "feature", side="candidate", capacity=128, seed=2
        )
        with pytest.raises(IncompatibleSketchError):
            estimate_mi_from_sketches(base_sketch, cand_seed)
        cand_method = build_sketch(
            cand, "key", "feature", side="candidate", method="CSK", capacity=128, seed=1
        )
        with pytest.raises(IncompatibleSketchError):
            estimate_mi_from_sketches(base_sketch, cand_method)
