"""Tests for the immutable engine configuration."""

import dataclasses

import pytest

from repro.engine.config import EngineConfig
from repro.exceptions import EngineConfigError
from repro.relational.aggregate import AggregateFunction
from repro.relational.dtypes import DType


class TestValidation:
    def test_defaults_are_valid(self):
        config = EngineConfig()
        assert config.method == "TUPSK"
        assert config.capacity == 1024
        assert config.seed == 0

    def test_method_is_normalized_upper_case(self):
        assert EngineConfig(method="tupsk").method == "TUPSK"

    def test_unknown_method_rejected(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(method="NOPESK")

    @pytest.mark.parametrize("field,value", [
        ("capacity", 0),
        ("estimator_k", 0),
        ("min_join_size", 1),
    ])
    def test_out_of_range_values_rejected(self, field, value):
        with pytest.raises(EngineConfigError):
            EngineConfig(**{field: value})

    def test_aggregates_coerced_from_strings(self):
        config = EngineConfig(numeric_aggregate="sum", categorical_aggregate="first")
        assert config.numeric_aggregate is AggregateFunction.SUM
        assert config.categorical_aggregate is AggregateFunction.FIRST

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(numeric_aggregate="concat")

    def test_build_parallelism_validated(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(build_workers=-1)
        with pytest.raises(EngineConfigError):
            EngineConfig(build_shards=0)
        config = EngineConfig(build_workers=4, build_shards=16)
        assert (config.build_workers, config.build_shards) == (4, 16)

    def test_build_parallelism_excluded_from_sketch_key(self):
        assert (
            EngineConfig(build_workers=4, build_shards=16).sketch_key
            == EngineConfig().sketch_key
        )

    def test_build_parallelism_round_trips(self):
        config = EngineConfig(build_workers=2, build_shards=3)
        assert EngineConfig.from_dict(config.to_dict()) == config
        # Documents written before the fields existed still load.
        document = EngineConfig().to_dict()
        del document["build_workers"]
        del document["build_shards"]
        assert EngineConfig.from_dict(document) == EngineConfig()

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            EngineConfig().capacity = 5


class TestDerivedViews:
    def test_sketch_key(self):
        config = EngineConfig(method="csk", capacity=64, seed=7)
        assert config.sketch_key == ("CSK", 64, 7)

    def test_default_aggregate_for_dtype(self):
        config = EngineConfig()
        assert config.default_aggregate_for(DType.FLOAT) is AggregateFunction.AVG
        assert config.default_aggregate_for(DType.STRING) is AggregateFunction.MODE
        assert config.default_aggregate_for(True) is AggregateFunction.AVG
        assert config.default_aggregate_for(False) is AggregateFunction.MODE

    def test_replace_revalidates(self):
        config = EngineConfig()
        assert config.replace(capacity=32).capacity == 32
        with pytest.raises(EngineConfigError):
            config.replace(capacity=-1)

    def test_hashable_and_equatable(self):
        assert EngineConfig(seed=1) == EngineConfig(seed=1)
        assert len({EngineConfig(seed=1), EngineConfig(seed=1), EngineConfig(seed=2)}) == 2


class TestPersistence:
    def test_round_trip_is_exact(self):
        config = EngineConfig(
            method="lv2sk",
            capacity=333,
            seed=42,
            estimator_k=5,
            min_join_size=8,
            numeric_aggregate="median",
            categorical_aggregate="first",
        )
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_default_round_trip(self):
        assert EngineConfig.from_dict(EngineConfig().to_dict()) == EngineConfig()

    def test_to_dict_is_json_plain(self):
        import json

        json.dumps(EngineConfig().to_dict())  # must not raise

    def test_from_dict_rejects_unknown_keys(self):
        document = EngineConfig().to_dict()
        document["sketch_method"] = "TUPSK"
        with pytest.raises(EngineConfigError):
            EngineConfig.from_dict(document)

    def test_unknown_key_error_names_key_and_accepted_set(self):
        """A misspelled key must be diagnosable from the message alone: it
        names the offending key and lists every accepted key."""
        document = EngineConfig().to_dict()
        document["capactiy"] = 64  # classic typo
        with pytest.raises(EngineConfigError) as excinfo:
            EngineConfig.from_dict(document)
        message = str(excinfo.value)
        assert "capactiy" in message
        assert "accepted keys" in message
        from dataclasses import fields

        for config_field in fields(EngineConfig):
            assert config_field.name in message
        assert "format_version" in message  # the optional envelope key too

    def test_unknown_key_error_lists_multiple_offenders_sorted(self):
        document = EngineConfig().to_dict()
        document["zzz"] = 1
        document["aaa"] = 2
        with pytest.raises(EngineConfigError, match=r"aaa.*zzz"):
            EngineConfig.from_dict(document)

    def test_from_dict_rejects_wrong_version(self):
        document = EngineConfig().to_dict()
        document["format_version"] = 99
        with pytest.raises(EngineConfigError):
            EngineConfig.from_dict(document)

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(EngineConfigError):
            EngineConfig.from_dict(["not", "a", "mapping"])

    def test_format_version_optional(self):
        document = EngineConfig(capacity=77).to_dict()
        del document["format_version"]
        assert EngineConfig.from_dict(document).capacity == 77
