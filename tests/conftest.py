"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.relational.dtypes import DType
from repro.relational.table import Table


@pytest.fixture
def rng():
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def taxi_table() -> Table:
    """Small base table mirroring the paper's running example (daily taxi trips)."""
    return Table.from_dict(
        {
            "date": [
                "2017-01-01",
                "2017-01-01",
                "2017-01-02",
                "2017-01-02",
                "2017-01-03",
                "2017-01-04",
            ],
            "zipcode": ["11201", "10011", "11201", "10011", "11201", "10011"],
            "num_trips": [136, 112, 142, 108, 155, 99],
        },
        name="taxi",
        dtypes={"zipcode": DType.STRING},
    )


@pytest.fixture
def weather_table() -> Table:
    """Candidate table with several readings per date (hourly weather)."""
    return Table.from_dict(
        {
            "date": [
                "2017-01-01",
                "2017-01-01",
                "2017-01-02",
                "2017-01-02",
                "2017-01-03",
                "2017-01-03",
                "2017-01-05",
            ],
            "temp": [44.1, 42.0, 38.5, 40.1, 36.0, 35.2, 50.3],
            "conditions": ["rain", "rain", "snow", "snow", "clear", "clear", "clear"],
        },
        name="weather",
    )


@pytest.fixture
def demographics_table() -> Table:
    """Candidate table with unique keys (demographics by ZIP code)."""
    return Table.from_dict(
        {
            "zipcode": ["11201", "10011", "10002"],
            "borough": ["Brooklyn", "Manhattan", "Manhattan"],
            "population": [53041, 50594, 76807],
        },
        name="demographics",
        dtypes={"zipcode": DType.STRING},
    )


@pytest.fixture
def skewed_train_table() -> Table:
    """Base table with a heavily skewed join key (the paper's LV2SK failure example)."""
    keys = ["a", "b", "c", "d", "e"] + ["f"] * 95
    targets = [0, 0, 0, 0, 0] + list(range(1, 96))
    return Table.from_dict({"key": keys, "target": targets}, name="skewed")


def make_pair_tables(num_rows: int = 500, seed: int = 7) -> tuple[Table, Table]:
    """Helper producing a correlated (base, candidate) pair with unique keys."""
    generator = np.random.default_rng(seed)
    keys = [f"k{i:05d}" for i in range(num_rows)]
    x = generator.normal(size=num_rows)
    y = x + 0.3 * generator.normal(size=num_rows)
    base = Table.from_dict({"key": keys, "target": y.tolist()}, name="base")
    cand = Table.from_dict({"key": keys, "feature": x.tolist()}, name="cand")
    return base, cand


@pytest.fixture
def correlated_pair() -> tuple[Table, Table]:
    """A correlated base/candidate table pair with unique string keys."""
    return make_pair_tables()
