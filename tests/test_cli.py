"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.relational.csvio import write_csv
from repro.relational.table import Table


@pytest.fixture()
def csv_pair(tmp_path, rng):
    """A correlated base/candidate CSV pair on disk."""
    keys = [f"k{i:04d}" for i in range(800)]
    x = rng.normal(size=800)
    y = x + 0.3 * rng.normal(size=800)
    base = Table.from_dict({"key": keys, "target": y.tolist()}, name="base")
    cand = Table.from_dict({"key": keys, "feature": x.tolist()}, name="cand")
    base_path = tmp_path / "base.csv"
    cand_path = tmp_path / "cand.csv"
    write_csv(base, base_path)
    write_csv(cand, cand_path)
    return base_path, cand_path


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(
            ["sketch", "in.csv", "--key", "k", "--value", "v", "-o", "out.json"]
        )
        assert args.command == "sketch"
        assert args.method == "TUPSK"

    def test_missing_subcommand_fails(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSketchCommand:
    def test_builds_and_saves_sketch(self, csv_pair, tmp_path, capsys):
        base_path, _ = csv_pair
        output = tmp_path / "base.sketch.json"
        code = main(
            [
                "sketch", str(base_path),
                "--key", "key", "--value", "target",
                "--side", "base", "--capacity", "128",
                "-o", str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        assert "128 tuples" in capsys.readouterr().out


class TestEstimateCommand:
    def test_estimate_from_sketch_files(self, csv_pair, tmp_path, capsys):
        base_path, cand_path = csv_pair
        base_sketch_path = tmp_path / "base.sketch.json"
        cand_sketch_path = tmp_path / "cand.sketch.json"
        assert main(
            ["sketch", str(base_path), "--key", "key", "--value", "target",
             "--side", "base", "--capacity", "256", "-o", str(base_sketch_path)]
        ) == 0
        assert main(
            ["sketch", str(cand_path), "--key", "key", "--value", "feature",
             "--side", "candidate", "--capacity", "256", "-o", str(cand_sketch_path)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["estimate", "--base-sketch", str(base_sketch_path),
             "--candidate-sketch", str(cand_sketch_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "MI estimate:" in out
        mi_value = float(out.split("MI estimate:")[1].split("nats")[0])
        assert mi_value > 0.3  # strongly dependent pair

    def test_estimate_directly_from_csvs(self, csv_pair, capsys):
        base_path, cand_path = csv_pair
        code = main(
            [
                "estimate",
                "--base-csv", str(base_path), "--base-key", "key", "--base-value", "target",
                "--candidate-csv", str(cand_path), "--candidate-key", "key",
                "--candidate-value", "feature", "--capacity", "256",
            ]
        )
        assert code == 0
        assert "MI estimate:" in capsys.readouterr().out

    def test_missing_options_reported_as_error(self, capsys):
        code = main(["estimate", "--base-csv", "only-this.csv"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestExperimentCommand:
    def test_runs_small_experiment(self, capsys):
        code = main(["experiment", "ablation_aggregation", "--scale", "small"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ablation_aggregation" in out
        assert "AVG" in out

    def test_unknown_experiment_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])
